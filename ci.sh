#!/usr/bin/env bash
# Local CI gate for the FALL attacks reproduction.
#
# Usage: ./ci.sh [--quick|--bench-smoke]
#   --quick        skip the release build (format/lint/test only)
#   --bench-smoke  run ONLY the benchmark smoke suite: build the bench
#                  harness in release mode, run the trimmed parallel-engine
#                  workloads plus a pipes-mode fall-dist farm smoke (clean
#                  2-worker run and a crash-requeue run, gating the
#                  dist_* counters and the dist_worker_stats_reports
#                  telemetry count) and a flight-recorder-armed SAT attack
#                  (gating the trace_* span counts and exporting the Chrome
#                  trace to BENCH_trace.json), write BENCH_parallel.json,
#                  and fail if any tracked metric regresses >20% against the
#                  checked-in baseline
#                  (crates/bench/baseline/BENCH_parallel.json — the one
#                  canonical copy; the root BENCH_parallel.json is this
#                  run's gitignored output artifact).
#                  Regenerate the baseline with:
#                    cargo run --release -p fall-bench --bin bench_smoke -- --write-baseline
#
# Everything runs offline: external dependencies are vendored as local
# API-compatible stand-ins under crates/compat/ (see crates/compat/README.md).

set -euo pipefail
cd "$(dirname "$0")"

quick=0
bench_smoke=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        --bench-smoke) bench_smoke=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

if [ "$bench_smoke" -eq 1 ]; then
    echo "==> cargo run --release -p fall-bench --bin bench_smoke"
    cargo run --release -p fall-bench --bin bench_smoke -- \
        --baseline crates/bench/baseline/BENCH_parallel.json \
        --out BENCH_parallel.json \
        --trace-out BENCH_trace.json
    echo "BENCH SMOKE OK"
    exit 0
fi

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Documentation gate: rustdoc must build warning-free (broken intra-doc
# links, bad code fences, missing docs on public items all fail the build).
echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps --workspace"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# The runnable walkthroughs under examples/ must keep compiling; they are
# documentation too (quickstart, serve_client, ...).
echo "==> cargo build --examples"
cargo build --examples

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The frame-scoped-predicate correctness story: the differential + property
# suites proving a recycled per-worker session is observationally equivalent
# to a fresh session per region.  Part of the workspace run above; re-run
# explicitly so a failure is attributed to the session-reuse machinery.
echo "==> cargo test -q --test session_reuse --test parallel_engine"
cargo test -q --test session_reuse --test parallel_engine

# The clause-arena and inprocessing correctness story: GC forced at every
# conflict must be status-identical to GC disabled, bounded variable
# elimination forced at every simplify checkpoint must be status-identical to
# elimination disabled (with reconstructed models satisfying the original
# clauses), and 100 retired predicate generations must hold variable count
# and arena bytes flat.  Also part of the workspace run; re-run explicitly so
# a failure is attributed to the arena/GC/eliminator machinery.
echo "==> cargo test -q --test gc_differential"
cargo test -q --test gc_differential

# The modern-CDCL-core unit story: LBD tier accounting, EMA restart
# forcing/blocking, adaptive strategy classification and the eliminator's
# freeze/resurrect/model-reconstruction invariants live in the sat crate's
# unit tests; re-run them explicitly so a failure is attributed to the
# solver core rather than an attack-level suite.
echo "==> cargo test -q -p sat --lib"
cargo test -q -p sat --lib

# The wide-simulation correctness story: the W-word blocked engine must match
# the scalar reference bit for bit for W in {1,2,4,8}, and the batched oracle
# transport / parallel analyses must leave the attack trajectory untouched.
# Also part of the workspace run; re-run explicitly so a failure is
# attributed to the wide-sim machinery.
echo "==> cargo test -q --test wide_sim"
cargo test -q --test wide_sim

# The distributed-farm correctness story: pipes and TCP farms recover the
# serial key with bounded cross-process oracle traffic, a SIGKILLed or hung
# worker's lease requeues and a survivor finishes, and drain-all counters
# reproduce exactly. Also part of the workspace run; re-run explicitly so a
# failure is attributed to the fall-dist supervisor/worker machinery.
echo "==> cargo test -q -p fall-dist --test farm"
cargo test -q -p fall-dist --test farm

# The observability story: a flight-recorder-armed SAT attack must export a
# structurally valid Chrome trace document (parsed back through netshim:
# complete events only, non-negative timestamps, per-thread spans properly
# nested) whose span counts match the attack's own iteration/query counters,
# and a disabled recorder must record nothing. Also part of the workspace
# run; re-run explicitly so a failure is attributed to the tracing layer.
echo "==> cargo test -q -p fall-bench --test trace_validate"
cargo test -q -p fall-bench --test trace_validate

echo "CI OK"
