#!/usr/bin/env bash
# Local CI gate for the FALL attacks reproduction.
#
# Usage: ./ci.sh [--quick]
#   --quick   skip the release build (format/lint/test only)
#
# Everything runs offline: external dependencies are vendored as local
# API-compatible stand-ins under crates/compat/ (see crates/compat/README.md).

set -euo pipefail
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "CI OK"
