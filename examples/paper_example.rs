//! The paper's worked example (Figures 2 and 3): the circuit
//! `y = ab + bc + ca + d` locked with TTLock and SFLL-HD1 using the protected
//! cube `a !b !c d` (key 1001), then attacked step by step.
//!
//! Run with: `cargo run --example paper_example`

use fall::equivalence::candidate_equals_strip;
use fall::functional::{analyze_unateness, sliding_window};
use fall::structural::{find_candidates, find_comparators};
use netlist::hamming::{
    equality_comparator, hamming_distance_equals, hamming_distance_equals_const,
};
use netlist::strash::strash;
use netlist::{GateKind, Netlist, NodeId};

/// Figure 2a: the original circuit y = ab + bc + ca + d.
fn original_circuit() -> (Netlist, [NodeId; 4], NodeId) {
    let mut nl = Netlist::new("fig2a");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let d = nl.add_input("d");
    let ab = nl.add_gate("ab", GateKind::And, &[a, b]);
    let bc = nl.add_gate("bc", GateKind::And, &[b, c]);
    let ca = nl.add_gate("ca", GateKind::And, &[c, a]);
    let y = nl.add_gate("y", GateKind::Or, &[ab, bc, ca, d]);
    nl.add_output("y", y);
    (nl, [a, b, c, d], y)
}

/// The protected cube of the running example: a=1, b=0, c=0, d=1.
const CUBE: [bool; 4] = [true, false, false, true];

/// Figure 2b: the circuit locked with TTLock.
fn lock_with_ttlock() -> Netlist {
    let (mut nl, [a, b, c, d], y) = original_circuit();
    // Cube stripper F = a !b !c d.
    let nb = nl.add_gate("nb", GateKind::Not, &[b]);
    let nc = nl.add_gate("nc", GateKind::Not, &[c]);
    let f = nl.add_gate("F", GateKind::And, &[a, nb, nc, d]);
    let y_fs = nl.add_gate("y_fs", GateKind::Xor, &[y, f]);
    // Restoration unit G: AND of XNOR comparators with the key inputs.
    let keys: Vec<NodeId> = (0..4)
        .map(|i| nl.add_key_input(format!("keyinput{i}")))
        .collect();
    let g = equality_comparator(&mut nl, &[a, b, c, d], &keys);
    let y_locked = nl.add_gate("y_locked", GateKind::Xor, &[y_fs, g]);
    nl.replace_output(0, y_locked);
    nl
}

/// Figure 2c: the circuit locked with SFLL-HD1.
fn lock_with_sfll_hd1() -> Netlist {
    let (mut nl, inputs, y) = original_circuit();
    let f = hamming_distance_equals_const(&mut nl, &inputs, &CUBE, 1);
    let y_fs = nl.add_gate("y_fs", GateKind::Xor, &[y, f]);
    let keys: Vec<NodeId> = (0..4)
        .map(|i| nl.add_key_input(format!("keyinput{i}")))
        .collect();
    let g = hamming_distance_equals(&mut nl, &inputs, &keys, 1);
    let y_locked = nl.add_gate("y_locked", GateKind::Xor, &[y_fs, g]);
    nl.replace_output(0, y_locked);
    nl
}

fn attack(name: &str, locked: &Netlist, h: usize) {
    println!("== {name} ==");
    // Figure 3: the optimised (structurally hashed) netlist the foundry sees.
    let optimized = strash(locked);
    println!(
        "optimised netlist: {} AND/NOT nodes (was {} gates before strash)",
        optimized.num_gates(),
        locked.num_gates()
    );

    // Stage 1: comparator identification (§ III-A).
    let comparators = find_comparators(&optimized);
    println!("comparators found: {}", comparators.len());
    for cmp in &comparators {
        println!(
            "  node {:?} pairs input {} with key {} ({})",
            cmp.node,
            optimized.node(cmp.input).name(),
            optimized.node(cmp.key).name(),
            if cmp.xnor { "XNOR" } else { "XOR" }
        );
    }

    // Stage 2: support-set matching (§ III-B).
    let candidates = find_candidates(&optimized, &comparators);
    println!("candidate cube-stripper nodes: {:?}", candidates.candidates);

    // Stage 3: functional analysis (§ IV).
    for &candidate in &candidates.candidates {
        let cube = if h == 0 {
            analyze_unateness(&optimized, candidate)
        } else {
            sliding_window(&optimized, candidate, h)
        };
        let Some(cube) = cube else {
            println!("  node {candidate:?}: ⊥ (not a cube stripper)");
            continue;
        };
        // Stage 4: equivalence check (§ IV-C).
        let verified = candidate_equals_strip(&optimized, candidate, &cube, h);
        let rendered: String = cube
            .iter()
            .map(|&(id, v)| format!("{}={}", optimized.node(id).name(), u8::from(v)))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  node {candidate:?}: suspected cube [{rendered}] (equivalence check: {})",
            if verified { "PASS" } else { "fail" }
        );
        if verified {
            let key: Vec<u8> = cube.iter().map(|&(_, v)| u8::from(v)).collect();
            println!("  => recovered key (k1..k4) = {key:?}  [paper: 1 0 0 1]");
            assert_eq!(
                key,
                CUBE.iter().map(|&b| u8::from(b)).collect::<Vec<u8>>(),
                "the recovered cube must match the protected cube"
            );
        }
    }
    println!();
}

fn main() {
    let (original, _, _) = original_circuit();
    println!("original: {}", original.summary());

    let ttlock = lock_with_ttlock();
    let sfll = lock_with_sfll_hd1();

    // Sanity: the correct key restores functionality for both locked versions.
    for pattern in 0..16u64 {
        let bits = netlist::sim::pattern_to_bits(pattern, 4);
        let want = original.evaluate(&bits, &[]);
        assert_eq!(ttlock.evaluate(&bits, &CUBE), want);
        assert_eq!(sfll.evaluate(&bits, &CUBE), want);
    }

    attack("TTLock (Figure 2b)", &ttlock, 0);
    attack("SFLL-HD1 (Figure 2c)", &sfll, 1);
    println!("Both locked versions leak the protected cube 1001, as in the paper.");
}
