//! A miniature version of the paper's § VI-B campaign: lock a set of circuits
//! with SFLL-HDh for several `h`, attack every instance without an oracle and
//! report how many were defeated and how many yielded a unique key.
//!
//! Run with: `cargo run --release --example oracle_less_campaign`

use fall::attack::{fall_attack, FallAttackConfig, FallStatus};
use locking::{LockingScheme, SfllHd, TtLock};
use netlist::random::{generate, RandomCircuitSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuits = [
        ("alpha", 16usize, 4usize, 150usize, 12usize),
        ("bravo", 20, 5, 220, 12),
        ("charlie", 24, 6, 300, 14),
        ("delta", 18, 4, 180, 10),
    ];
    let mut total = 0usize;
    let mut defeated = 0usize;
    let mut unique = 0usize;

    println!("circuit   keys  h   status            shortlisted  time(s)");
    println!("-------------------------------------------------------------");
    for (name, inputs, outputs, gates, keys) in circuits {
        let original = generate(&RandomCircuitSpec::new(name, inputs, outputs, gates));
        for h in [0usize, keys / 8, keys / 4] {
            let locked = if h == 0 {
                TtLock::new(keys).with_seed(42).lock(&original)?.optimized()
            } else {
                SfllHd::new(keys, h)
                    .with_seed(42)
                    .lock(&original)?
                    .optimized()
            };
            let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(h));
            total += 1;
            let correct = result.shortlisted_keys.contains(&locked.key);
            if correct && result.status.is_success() {
                defeated += 1;
                if result.status == FallStatus::UniqueKey {
                    unique += 1;
                }
            }
            println!(
                "{name:<9} {keys:<5} {h:<3} {:<17} {:<11} {:.3}",
                format!("{:?}", result.status),
                result.shortlisted_keys.len(),
                result.timings.total().as_secs_f64()
            );
        }
    }
    println!("-------------------------------------------------------------");
    println!(
        "defeated {defeated}/{total} locked instances; unique key (oracle-less) for {unique}/{defeated}"
    );
    println!("(paper, full-size suite: 65/80 defeated, unique key for 58/65)");
    Ok(())
}
