//! Working with industry-standard `.bench` netlists: parse the ISCAS'85 c17
//! circuit, lock it, write the locked `.bench` back out, re-parse it and
//! break it.
//!
//! Run with: `cargo run --example bench_format_io`

use fall::attack::{fall_attack, FallAttackConfig};
use locking::{LockingScheme, TtLock};
use netlist::bench_format;

/// The genuine ISCAS'85 c17 benchmark (6 NAND gates).
const C17: &str = "\
# c17 — smallest ISCAS'85 benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the original benchmark.
    let original = bench_format::parse(C17)?;
    println!("parsed: {}", original.summary());

    // 2. Lock it with TTLock over all 5 inputs and resynthesise.
    let locked = TtLock::new(5).with_seed(17).lock(&original)?.optimized();
    println!("locked: {}", locked.locked.summary());
    println!("secret key: {}", locked.key);

    // 3. Export the locked design as .bench — exactly what would be handed to
    //    the foundry — and read it back (key inputs are recognised by their
    //    `keyinput` prefix).
    let exported = bench_format::write(&locked.locked);
    println!("--- locked c17 in .bench format ---\n{exported}");
    let reparsed = bench_format::parse(&exported)?;
    assert_eq!(reparsed.num_key_inputs(), 5);

    // 4. The foundry runs the FALL attack on the re-parsed netlist.
    let result = fall_attack(&reparsed, None, &FallAttackConfig::for_h(0));
    println!("attack status: {:?}", result.status);
    for key in &result.shortlisted_keys {
        println!("shortlisted key: {key}");
    }
    assert!(
        result.shortlisted_keys.contains(&locked.key),
        "the secret key must be among the shortlisted keys"
    );
    println!("SUCCESS: the key leaked through the exported .bench netlist.");
    Ok(())
}
