//! Talk to a `fall-serve` attack server over its wire protocol.
//!
//! This example exercises the whole service loop end to end, in process:
//!
//! 1. start a [`fall_serve::Server`] on an ephemeral port (`127.0.0.1:0`),
//!    exactly as `cargo run -p fall-serve -- --addr 127.0.0.1:0` would;
//! 2. connect a TCP client and `register` a TTLock-locked netlist together
//!    with its oracle (both shipped as ISCAS-89 `.bench` text);
//! 3. submit two jobs — an oracle-less `fall` attack and a `confirm` run
//!    over a key shortlist — and wait for their asynchronous job events;
//! 4. scrape `/metrics` (the `metrics` op) and print the counters the
//!    server accumulated while serving us.
//!
//! The wire protocol is line-delimited JSON; the full specification lives in
//! `docs/PROTOCOL.md`.  Everything below is plain `std::net` plus the
//! vendored `netshim` JSON shim — a client needs no other dependencies.
//!
//! Run with: `cargo run --example serve_client`

use std::net::TcpStream;
use std::time::Duration;

use fall_serve::{Server, ServerConfig};
use locking::{LockingScheme, TtLock};
use netlist::random::{generate, RandomCircuitSpec};
use netshim::{LineReader, Value};

/// A minimal blocking client: one TCP connection, line-delimited JSON frames.
struct Client {
    writer: TcpStream,
    reader: LineReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let writer = stream.try_clone()?;
        // 1 MiB inbound frame cap: plenty for job events and metrics.
        Ok(Client {
            writer,
            reader: LineReader::new(stream, 1 << 20),
        })
    }

    /// Sends one request frame (a JSON object on a single line).
    fn send(&mut self, request: &Value) -> std::io::Result<()> {
        netshim::write_line(&mut self.writer, &request.to_string())
    }

    /// Receives the next frame from the server.
    fn recv(&mut self) -> Value {
        let line = self
            .reader
            .read_line()
            .expect("read frame")
            .expect("server closed the connection");
        Value::parse(&line).expect("server frames are valid JSON")
    }

    /// Reads frames until the completion event for `job_id` arrives.  Job
    /// events are pushed asynchronously, so other responses may interleave.
    fn wait_for_job(&mut self, job_id: u64) -> Value {
        loop {
            let frame = self.recv();
            if frame.get("event").and_then(Value::as_str) == Some("job")
                && frame.get("job").and_then(Value::as_u64) == Some(job_id)
            {
                return frame;
            }
        }
    }
}

/// Renders a [`locking::Key`] in the wire encoding: a bitstring like "0101".
fn wire_key(key: &locking::Key) -> String {
    key.bits()
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Start a server on an ephemeral port. -------------------------
    // ServerConfig::default() binds 127.0.0.1:0; the OS picks a free port.
    let server = Server::start(ServerConfig::default())?;
    println!("server listening on {}", server.local_addr());

    // --- 2. Register a locked target. ------------------------------------
    // The "design house" side: a 16-input circuit locked with a 10-bit
    // TTLock key.  The adversary-facing server receives the locked netlist
    // and an I/O oracle, both as .bench text.
    let original = generate(&RandomCircuitSpec::new("serve_demo", 16, 4, 150));
    let locked = TtLock::new(10).with_seed(7).lock(&original)?.optimized();
    println!("locked circuit: {}", locked.locked.summary());

    let mut client = Client::connect(server.local_addr())?;
    client.send(&Value::object([
        ("op", Value::from("register")),
        ("id", Value::from(1u64)),
        ("name", Value::from("demo")),
        ("scheme", Value::from("ttlock")),
        ("h", Value::from(0u64)),
        (
            "locked",
            Value::from(netlist::bench_format::write(&locked.locked)),
        ),
        (
            "oracle",
            Value::from(netlist::bench_format::write(&original)),
        ),
    ]))?;
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    println!("registered target 'demo': {response}");

    // --- 3a. Job one: the oracle-less FALL attack. -----------------------
    // The server replies immediately with {"ok":true,"job":N}; the result
    // arrives later as an {"event":"job",...} frame once a pool session
    // finishes the attack.
    client.send(&Value::object([
        ("op", Value::from("attack")),
        ("id", Value::from(2u64)),
        ("target", Value::from("demo")),
        ("kind", Value::from("fall")),
    ]))?;
    let accepted = client.recv();
    assert_eq!(accepted.get("ok").and_then(Value::as_bool), Some(true));
    let fall_job = accepted.get("job").and_then(Value::as_u64).expect("job id");
    println!("fall job accepted: {accepted}");

    let event = client.wait_for_job(fall_job);
    println!("fall job finished: {event}");
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("key_found")
    );
    assert_eq!(
        event.get("key").and_then(Value::as_str),
        Some(wire_key(&locked.key).as_str()),
        "FALL must recover the exact TTLock key"
    );

    // --- 3b. Job two: confirm a key shortlist against the oracle. --------
    // Keys travel as bitstrings; the server checks each candidate with the
    // key-confirmation predicate and reports the first confirmed key.
    client.send(&Value::object([
        ("op", Value::from("attack")),
        ("id", Value::from(3u64)),
        ("target", Value::from("demo")),
        ("kind", Value::from("confirm")),
        (
            "shortlist",
            Value::Array(vec![
                Value::from(wire_key(&locked.key.complement())),
                Value::from(wire_key(&locked.key)),
            ]),
        ),
    ]))?;
    let accepted = client.recv();
    let confirm_job = accepted.get("job").and_then(Value::as_u64).expect("job id");

    let event = client.wait_for_job(confirm_job);
    println!("confirm job finished: {event}");
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("key_found")
    );

    // --- 4. Scrape /metrics. ---------------------------------------------
    // The metrics frame uses the same JSON dialect as the bench harness's
    // MetricReport: name -> {"value": f64, "higher_is_better": bool}.
    client.send(&Value::object([
        ("op", Value::from("metrics")),
        ("id", Value::from(4u64)),
    ]))?;
    let scraped = client.recv();
    let metrics = scraped
        .get("metrics")
        .and_then(Value::as_object)
        .expect("metrics object");
    println!("metrics ({} series):", metrics.len());
    for (name, sample) in metrics {
        let value = sample.get("value").and_then(Value::as_f64).unwrap_or(0.0);
        println!("  {name:<32} {value}");
    }
    assert!(metrics.contains_key("serve_jobs_completed"));
    assert!(metrics.contains_key("sat_conflicts"));

    println!("SUCCESS: two jobs served by one primed session pool.");
    Ok(())
}
