//! The parallel attack engine in action: partitioned key search on a worker
//! pool, and a solver portfolio racing one SAT-attack instance.
//!
//! ```text
//! cargo run --release --example parallel_attack
//! ```

use std::time::Instant;

use fall::key_confirmation::{partitioned_key_search, KeyConfirmationConfig};
use fall::oracle::SimOracle;
use fall::parallel::{parallel_partitioned_key_search, portfolio_sat_attack};
use fall::sat_attack::SatAttackConfig;
use locking::{LockingScheme, TtLock};
use netlist::random::{generate, RandomCircuitSpec};
use sat::SolverConfig;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== fall::parallel demo ({cores} core(s) available) ==\n");

    // A TTLock-protected circuit: the SAT-attack-resilient case where the
    // paper's § VI-D key-space partitioning pays off.
    let original = generate(&RandomCircuitSpec::new("par_demo", 12, 3, 120));
    let locked = TtLock::new(9)
        .with_seed(17)
        .lock(&original)
        .expect("lock")
        .optimized();
    let oracle = SimOracle::new(original);
    let config = KeyConfirmationConfig::default();
    let partition_bits = 3;

    let t = Instant::now();
    let serial = partitioned_key_search(&locked.locked, &oracle, partition_bits, &config);
    let serial_elapsed = t.elapsed();
    println!(
        "serial partitioned search : key {:?} after {} oracle queries in {serial_elapsed:.2?}",
        serial.key.as_ref().map(|k| k.to_string()),
        serial.oracle_queries,
    );

    for workers in [1usize, 2, 4] {
        let t = Instant::now();
        let parallel = parallel_partitioned_key_search(
            &locked.locked,
            &oracle,
            partition_bits,
            workers,
            &config,
        );
        let elapsed = t.elapsed();
        println!(
            "parallel search, {workers} worker(s): key {:?}, {} unique / {} cached queries, \
             {} regions on {} session(s) ({} full encodings), {elapsed:.2?} ({:.2}x vs serial)",
            parallel.key.as_ref().map(|k| k.to_string()),
            parallel.oracle_queries,
            parallel.cache_hits,
            parallel.regions_searched,
            parallel.sessions_created,
            parallel.cone_encodings_built,
            serial_elapsed.as_secs_f64() / elapsed.as_secs_f64(),
        );
    }

    // Portfolio mode: diverse solver configurations race the same instance.
    println!("\n== solver portfolio on one SAT-attack instance ==\n");
    let pf_original = generate(&RandomCircuitSpec::new("pf_demo", 12, 3, 120));
    let pf_locked = locking::XorLock::new(10)
        .with_seed(3)
        .lock(&pf_original)
        .expect("lock");
    let pf_oracle = SimOracle::new(pf_original);
    let t = Instant::now();
    let outcome = portfolio_sat_attack(
        &pf_locked.locked,
        &pf_oracle,
        &SolverConfig::portfolio(4),
        &SatAttackConfig::default(),
    );
    println!(
        "portfolio of 4 configs    : winner {:?}, key {:?}, {} unique queries, {:.2?}",
        outcome.winner,
        outcome.result.key.as_ref().map(|k| k.to_string()),
        outcome.oracle_queries,
        t.elapsed(),
    );
}
