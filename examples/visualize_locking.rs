//! Visualising what a locking scheme does to a netlist: export the original
//! and the SFLL-locked ISCAS c17 circuit as Graphviz DOT files.
//!
//! Run with: `cargo run --example visualize_locking`
//! Then render with: `dot -Tpng c17_locked.dot -o c17_locked.png`

use std::fs;

use locking::{LockingScheme, SfllHd};
use netlist::{bench_format, dot};

const C17: &str = "\
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = bench_format::parse(C17)?;
    let locked = SfllHd::new(5, 1).with_seed(3).lock(&original)?;
    let optimized = locked.optimized();

    let artifacts = [
        ("c17_original.dot", dot::to_dot(&original)),
        ("c17_locked.dot", dot::to_dot(&locked.locked)),
        ("c17_locked_strashed.dot", dot::to_dot(&optimized.locked)),
    ];
    for (path, contents) in &artifacts {
        fs::write(path, contents)?;
        println!("wrote {path} ({} bytes)", contents.len());
    }
    println!(
        "original: {} gates; locked: {} gates; after strash: {} gates",
        original.num_gates(),
        locked.locked.num_gates(),
        optimized.locked.num_gates()
    );
    println!("secret key: {} (key inputs are drawn in red)", locked.key);
    Ok(())
}
