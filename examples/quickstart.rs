//! Quickstart: lock a circuit with SFLL-HD and break it with the FALL attack
//! — no oracle required.
//!
//! Run with: `cargo run --example quickstart`

use fall::attack::{fall_attack, FallAttackConfig, FallStatus};
use locking::{LockingScheme, SfllHd};
use netlist::random::{generate, RandomCircuitSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The design house has some combinational design...
    let original = generate(&RandomCircuitSpec::new("quickstart", 20, 4, 200));
    println!("original circuit : {}", original.summary());

    // 2. ...and locks it with SFLL-HD2 using a 14-bit key before sending it
    //    to the (untrusted) foundry.  The netlist is then resynthesised so the
    //    locking structure is not obvious.
    let scheme = SfllHd::new(14, 2).with_seed(2024);
    let locked = scheme.lock(&original)?.optimized();
    println!("locked circuit   : {}", locked.locked.summary());
    println!("secret key       : {}", locked.key);

    // 3. The foundry (the adversary) only has the locked netlist and knows
    //    the locking algorithm and h.  The FALL attack recovers the key from
    //    the netlist alone.
    let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(2));
    println!("attack status    : {:?}", result.status);
    println!("comparators      : {}", result.num_comparators);
    println!("candidate nodes  : {}", result.num_candidates);
    println!(
        "analysis time    : {:.3}s",
        result.timings.total().as_secs_f64()
    );
    for key in &result.shortlisted_keys {
        println!("shortlisted key  : {key}");
    }

    assert_eq!(result.status, FallStatus::UniqueKey);
    let recovered = result.best_key().expect("unique key");
    assert_eq!(
        recovered, &locked.key,
        "the recovered key must be the secret key"
    );
    println!("SUCCESS: recovered the secret key without any oracle access.");
    Ok(())
}
