//! The SAT-attack baseline story of the paper: the classic SAT attack makes
//! short work of random XOR locking, stalls on SFLL, and key confirmation
//! closes the gap once the FALL analyses provide a shortlist.
//!
//! Run with: `cargo run --example sat_attack_baseline`

use std::time::Duration;

use fall::attack::{fall_attack, FallAttackConfig};
use fall::key_confirmation::{key_confirmation, KeyConfirmationConfig};
use fall::oracle::SimOracle;
use fall::sat_attack::{sat_attack, SatAttackConfig, SatAttackStatus};
use locking::{LockingScheme, SfllHd, XorLock};
use netlist::random::{generate, RandomCircuitSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = generate(&RandomCircuitSpec::new("baseline", 16, 4, 150));
    let oracle = SimOracle::new(original.clone());

    // --- 1. Random XOR locking: the SAT attack wins quickly. -------------
    let xor_locked = XorLock::new(16).with_seed(7).lock(&original)?;
    let result = sat_attack(&xor_locked.locked, &oracle, &SatAttackConfig::default());
    println!(
        "XOR locking (16 keys): SAT attack {:?} after {} distinguishing inputs in {:.2}s",
        result.status,
        result.iterations,
        result.elapsed.as_secs_f64()
    );
    assert_eq!(result.status, SatAttackStatus::Success);

    // --- 2. SFLL-HD: the SAT attack starves for distinguishing power. ----
    // Each wrong key corrupts only a handful of inputs, so the attack has to
    // rule out key classes almost one distinguishing input at a time.  At this
    // scaled-down key width it still finishes, but the iteration count tracks
    // the number of key equivalence classes and becomes infeasible at the
    // paper's 64-bit keys.
    let sfll = SfllHd::new(12, 1).with_seed(7).lock(&original)?.optimized();
    let limited = SatAttackConfig {
        time_limit: Some(Duration::from_secs(2)),
        ..SatAttackConfig::default()
    };
    let result = sat_attack(&sfll.locked, &oracle, &limited);
    println!(
        "SFLL-HD1 (12 keys): SAT attack {:?} after {} iterations in {:.2}s (2s budget)",
        result.status,
        result.iterations,
        result.elapsed.as_secs_f64()
    );
    println!(
        "  (XOR locking above needed only a handful of iterations; SFLL forces \
         iteration counts that scale with the key space)"
    );

    // --- 3. FALL shortlist + key confirmation: the gap is closed. --------
    let mut config = FallAttackConfig::for_h(1);
    config.equivalence_check = false; // keep several suspects so confirmation has work to do
    let fall_result = fall_attack(&sfll.locked, None, &config);
    let mut shortlist = fall_result.shortlisted_keys.clone();
    if !shortlist.contains(&sfll.key.complement()) {
        shortlist.push(sfll.key.complement()); // a plausible decoy
    }
    println!(
        "FALL analyses shortlisted {} key(s); running key confirmation...",
        shortlist.len()
    );
    let confirmation = key_confirmation(
        &sfll.locked,
        &oracle,
        &shortlist,
        &KeyConfirmationConfig::default(),
    );
    let confirmed = confirmation.key.expect("one shortlisted key is correct");
    println!(
        "key confirmation picked {} after {} oracle queries in {:.2}s",
        confirmed,
        confirmation.oracle_queries,
        confirmation.elapsed.as_secs_f64()
    );
    assert_eq!(confirmed, sfll.key);
    println!(
        "SUCCESS: the confirmed key equals the secret key ({}).",
        sfll.key
    );
    Ok(())
}
