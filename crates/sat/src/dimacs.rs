//! DIMACS CNF reading and writing.

use std::error::Error;
use std::fmt;

use crate::{CnfFormula, Lit, Var};

/// An error produced while parsing a DIMACS CNF document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl ParseDimacsError {
    fn new(line: usize, message: impl Into<String>) -> ParseDimacsError {
        ParseDimacsError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number where the error occurred.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

/// Parses a DIMACS CNF document into a [`CnfFormula`].
///
/// The `p cnf <vars> <clauses>` header is optional; comment lines starting
/// with `c` are ignored.  Clauses may span multiple lines and are terminated
/// by `0`.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] if a token is not an integer or a clause is
/// left unterminated.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cnf = sat::parse_dimacs("p cnf 2 2\n1 -2 0\n2 0\n")?;
/// assert_eq!(cnf.num_clauses(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs(text: &str) -> Result<CnfFormula, ParseDimacsError> {
    let mut cnf = CnfFormula::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut declared_vars = 0usize;

    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if trimmed.starts_with('p') {
            let mut parts = trimmed.split_whitespace();
            let _p = parts.next();
            let format = parts.next().unwrap_or("");
            if format != "cnf" {
                return Err(ParseDimacsError::new(line_no, "expected `p cnf` header"));
            }
            declared_vars = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError::new(line_no, "bad variable count"))?;
            continue;
        }
        for token in trimmed.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| ParseDimacsError::new(line_no, format!("bad literal `{token}`")))?;
            if value == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                let var = Var::from_index(value.unsigned_abs() as usize - 1);
                current.push(Lit::new(var, value < 0));
            }
        }
    }

    if !current.is_empty() {
        return Err(ParseDimacsError::new(
            text.lines().count(),
            "unterminated clause at end of input",
        ));
    }
    while cnf.num_vars() < declared_vars {
        cnf.new_var();
    }
    Ok(cnf)
}

/// Serialises a [`CnfFormula`] in DIMACS CNF format.
///
/// # Example
///
/// ```
/// use sat::{CnfFormula, Lit};
///
/// let mut cnf = CnfFormula::new();
/// let a = cnf.new_var();
/// cnf.add_clause([Lit::negative(a)]);
/// let text = sat::write_dimacs(&cnf);
/// assert!(text.starts_with("p cnf 1 1"));
/// ```
pub fn write_dimacs(cnf: &CnfFormula) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses()));
    for clause in cnf.iter() {
        for lit in clause {
            out.push_str(&lit.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n3 0\n";
        let cnf = parse_dimacs(text).expect("parse");
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        let rewritten = write_dimacs(&cnf);
        let reparsed = parse_dimacs(&rewritten).expect("reparse");
        assert_eq!(cnf, reparsed);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_dimacs("1 x 0").is_err());
    }

    #[test]
    fn rejects_unterminated_clause() {
        assert!(parse_dimacs("1 2 3").is_err());
    }

    #[test]
    fn multi_line_clause() {
        let cnf = parse_dimacs("1 2\n-3 0\n").expect("parse");
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.num_vars(), 3);
    }
}
