//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a zero-based index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its zero-based index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// Returns the zero-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
///
/// Internally encoded as `2 * var + sign` where `sign == 1` means the literal
/// is negated.  This is the classic MiniSat encoding and allows literals to be
/// used directly as indices into watch lists.  The representation is
/// `#[repr(transparent)]` over `u32` so the clause arena can expose its
/// literal words as a `&[Lit]` without copying.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(u32);

impl Lit {
    /// Creates the positive literal of `var`.
    #[inline]
    pub fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// Creates the negative literal of `var`.
    #[inline]
    pub fn negative(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Creates a literal from a variable and a sign.
    ///
    /// `negated == false` yields the positive literal.
    #[inline]
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit((var.0 << 1) | u32::from(negated))
    }

    /// Creates a literal from its internal code (`2 * var + sign`).
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Returns the internal code of this literal, usable as an array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Returns the variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this literal is negated.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this literal is not negated.
    #[inline]
    pub fn is_positive(self) -> bool {
        !self.is_negative()
    }

    /// Returns the value this literal requires its variable to take to be true.
    #[inline]
    pub fn polarity(self) -> bool {
        self.is_positive()
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!v{}", self.var().0)
        } else {
            write!(f, "v{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.var().0 + 1)
        } else {
            write!(f, "{}", self.var().0 + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::from_index(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn new_with_sign() {
        let v = Var::from_index(3);
        assert_eq!(Lit::new(v, false), Lit::positive(v));
        assert_eq!(Lit::new(v, true), Lit::negative(v));
    }

    #[test]
    fn display_uses_dimacs_convention() {
        let v = Var::from_index(0);
        assert_eq!(Lit::positive(v).to_string(), "1");
        assert_eq!(Lit::negative(v).to_string(), "-1");
    }
}
