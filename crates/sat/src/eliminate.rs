//! Bounded variable elimination (SatELite/NiVER lineage) over the flat arena.
//!
//! Runs as an inprocessing pass at [`Solver::simplify`] checkpoints: a
//! variable whose positive/negative occurrence counts fit
//! [`SolverConfig::elim_occ_limit`](crate::SolverConfig::elim_occ_limit) is
//! *resolved out* — every positive/negative clause pair is replaced by its
//! resolvent — when the surviving resolvents do not grow the database beyond
//! [`SolverConfig::elim_grow`](crate::SolverConfig::elim_grow) and none
//! exceeds
//! [`SolverConfig::elim_clause_limit`](crate::SolverConfig::elim_clause_limit).
//! The variable's original clauses move onto a reconstruction stack:
//!
//! * On SAT, [`Solver::extend_model`] walks the stack in reverse and assigns
//!   each eliminated variable a polarity satisfying its stored clauses, so
//!   callers see a complete model of the *original* formula.
//! * A later clause, assumption, or freeze that references an eliminated
//!   variable *resurrects* it ([`Solver::resurrect_var`]): the stored
//!   clauses are re-added (they imply every resolvent that replaced them, so
//!   equivalence is exact) and the variable is barred from re-elimination —
//!   incremental sessions stay sound without the caller tracking anything.
//!
//! Strictly excluded from elimination: frozen (interface) variables,
//! frame-tagged variables (activation variables and frame-scoped Tseitin
//! variables — frame retirement owns their lifecycle), released variables
//! (the recycler owns them), assigned variables, and any variable sharing a
//! clause with an excluded one (the resolvent set would be incomplete).

use super::{LBool, Lit, Solver, Var};
use crate::clause::ClauseRef;

/// One entry of the elimination reconstruction stack: the variable and the
/// original problem clauses it was resolved out of.
#[derive(Clone, Debug)]
pub(crate) struct ElimRecord {
    pub(crate) var: Var,
    pub(crate) clauses: Vec<Vec<Lit>>,
}

impl Solver {
    /// The bounded variable elimination pass; called from
    /// [`Solver::simplify`] after satisfied clauses and released variables
    /// have been processed.
    pub(crate) fn eliminate_vars(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.config.elim_vars || !self.ok || self.num_vars == 0 {
            return;
        }
        let n = self.num_vars;

        // Pass 1 — occurrence counts and exclusion marks over the live
        // problem clauses.  A clause containing any frame-tagged or released
        // variable blocks *all* its variables: eliminating one would need
        // that clause in the resolvent set, and the excluded variable's
        // lifecycle (frame retirement, recycling) may delete it later.
        let mut pos = vec![0u32; n];
        let mut neg = vec![0u32; n];
        let mut blocked = vec![false; n];
        for cref in self.db.live_refs() {
            if self.db.is_learnt(cref) {
                continue;
            }
            let lits = self.db.lits(cref);
            let ineligible = lits.iter().any(|l| {
                let i = l.var().index();
                self.frame_tagged[i] || self.released[i]
            });
            for l in lits {
                let i = l.var().index();
                if ineligible {
                    blocked[i] = true;
                } else if l.polarity() {
                    pos[i] += 1;
                } else {
                    neg[i] += 1;
                }
            }
        }

        let limit = self.config.elim_occ_limit as u32;
        let mut candidates: Vec<Var> = Vec::new();
        let mut slot = vec![usize::MAX; n];
        for i in 0..n {
            if pos[i] + neg[i] == 0 || pos[i] > limit || neg[i] > limit {
                continue;
            }
            if blocked[i]
                || self.frozen[i]
                || self.eliminated[i]
                || self.elim_skip[i]
                || self.released[i]
                || self.frame_tagged[i]
                || self.assigns[i] != LBool::Undef
            {
                continue;
            }
            slot[i] = candidates.len();
            candidates.push(Var::from_index(i));
        }
        if candidates.is_empty() {
            return;
        }

        // Pass 2 — dense candidate-indexed occurrence lists.  Refs go stale
        // when an earlier candidate's commit deletes a shared clause; the
        // per-candidate scan filters tombstones, and resolvents are
        // registered into the lists of still-pending candidates below, so
        // every candidate always sees its complete live occurrence set —
        // completeness is what makes the substitution sound.
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); candidates.len()];
        let problem_refs: Vec<ClauseRef> = self
            .db
            .live_refs()
            .filter(|&c| !self.db.is_learnt(c))
            .collect();
        for cref in problem_refs {
            for k in 0..self.db.len(cref) {
                let s = slot[self.db.lit(cref, k).var().index()];
                if s != usize::MAX {
                    occ[s].push(cref);
                }
            }
        }

        let mut newly: Vec<Var> = Vec::new();
        'candidates: for s in 0..candidates.len() {
            if !self.ok {
                break;
            }
            let var = candidates[s];
            let vi = var.index();
            // A unit resolvent of an earlier elimination may have assigned
            // this candidate meanwhile.
            if self.assigns[vi] != LBool::Undef {
                continue;
            }

            // Live occurrences, split by the candidate's polarity, literals
            // copied out (the commit below tombstones the refs).
            let mut pos_clauses: Vec<(ClauseRef, Vec<Lit>)> = Vec::new();
            let mut neg_clauses: Vec<(ClauseRef, Vec<Lit>)> = Vec::new();
            for &cref in &occ[s] {
                if self.db.is_deleted(cref) {
                    continue;
                }
                let lits = self.db.lits(cref).to_vec();
                let Some(my) = lits.iter().find(|l| l.var() == var).copied() else {
                    continue;
                };
                if my.polarity() {
                    pos_clauses.push((cref, lits));
                } else {
                    neg_clauses.push((cref, lits));
                }
            }
            let occurrences = pos_clauses.len() + neg_clauses.len();
            if occurrences == 0
                || pos_clauses.len() > limit as usize
                || neg_clauses.len() > limit as usize
            {
                continue;
            }

            // Trial resolution of every positive/negative pair.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            for (_, cp) in &pos_clauses {
                for (_, cn) in &neg_clauses {
                    if let Some(r) = self.resolve_on(var, cp, cn) {
                        if r.is_empty() {
                            // The empty resolvent: the formula is
                            // unsatisfiable at the root.
                            self.ok = false;
                            return;
                        }
                        if r.len() > self.config.elim_clause_limit {
                            continue 'candidates;
                        }
                        resolvents.push(r);
                    }
                }
            }
            // Growth bound: units strengthen rather than grow, so only
            // multi-literal resolvents count against the budget.
            let grown = resolvents.iter().filter(|r| r.len() >= 2).count();
            if grown > occurrences + self.config.elim_grow {
                continue;
            }

            // Commit: tombstone the originals, store them for
            // reconstruction/resurrection, add the resolvents.
            let mut originals: Vec<Vec<Lit>> = Vec::with_capacity(occurrences);
            for (cref, lits) in pos_clauses.into_iter().chain(neg_clauses) {
                self.delete_clause(cref);
                originals.push(lits);
            }
            self.elim_stack.push(ElimRecord {
                var,
                clauses: originals,
            });
            self.eliminated[vi] = true;
            self.stats.vars_eliminated += 1;
            newly.push(var);
            for r in resolvents {
                if let Some(cref) = self.add_clause_root_vec(r) {
                    for k in 0..self.db.len(cref) {
                        let s2 = slot[self.db.lit(cref, k).var().index()];
                        if s2 != usize::MAX && s2 > s {
                            occ[s2].push(cref);
                        }
                    }
                }
                if !self.ok {
                    return;
                }
            }
        }

        if newly.is_empty() {
            return;
        }
        // Learnt clauses over eliminated variables are implied by the
        // original formula and only waste propagation effort on variables
        // the search no longer branches on; drop them.
        let mut gone = vec![false; n];
        for v in &newly {
            gone[v.index()] = true;
        }
        let db = &self.db;
        let victims: Vec<ClauseRef> = db
            .learnt_refs()
            .filter(|&c| db.lits(c).iter().any(|l| gone[l.var().index()]))
            .collect();
        for cref in victims {
            self.delete_clause(cref);
        }
        self.prune_watchers();
    }

    /// Resolves `cp` (contains `pivot`) with `cn` (contains `¬pivot`) on
    /// `pivot`, simplifying against the root assignment.  Returns `None` for
    /// tautological or root-satisfied resolvents; an empty clause signals a
    /// root-level contradiction.
    fn resolve_on(&self, pivot: Var, cp: &[Lit], cn: &[Lit]) -> Option<Vec<Lit>> {
        let mut resolvent: Vec<Lit> = Vec::with_capacity(cp.len() + cn.len() - 2);
        for &l in cp.iter().chain(cn) {
            if l.var() == pivot {
                continue;
            }
            match self.lit_value(l) {
                LBool::True if self.level[l.var().index()] == 0 => return None,
                LBool::False if self.level[l.var().index()] == 0 => continue,
                _ => resolvent.push(l),
            }
        }
        resolvent.sort_unstable();
        resolvent.dedup();
        // Complementary literals of one variable sort adjacently.
        if resolvent.windows(2).any(|w| w[1] == !w[0]) {
            return None;
        }
        Some(resolvent)
    }

    /// Re-introduces an eliminated variable by re-adding its stored original
    /// clauses.  Sound and exact: the originals imply every resolvent that
    /// replaced them, so the clause set is equivalent to never having
    /// eliminated the variable (modulo redundant resolvents).
    ///
    /// Re-adding may cascade: a stored clause can reference a variable
    /// eliminated *later*, whose resurrection is triggered recursively by the
    /// clause-add path.  The `eliminated` flag is cleared first, so cycles
    /// terminate.  The variable is barred from future elimination
    /// (`elim_skip`) — a caller that referenced it once will plausibly do so
    /// again, and eliminate/resurrect thrash costs more than keeping it.
    pub(crate) fn resurrect_var(&mut self, var: Var) {
        if !self.eliminated[var.index()] {
            return;
        }
        self.eliminated[var.index()] = false;
        self.elim_skip[var.index()] = true;
        self.stats.vars_resurrected += 1;
        let position = self
            .elim_stack
            .iter()
            .position(|r| r.var == var)
            .expect("eliminated variable has a reconstruction record");
        let record = self.elim_stack.remove(position);
        for clause in record.clauses {
            let _ = self.add_clause_root_vec(clause);
            if !self.ok {
                return;
            }
        }
        if self.assigns[var.index()] == LBool::Undef && !self.order.contains(var) {
            self.order.insert(var, &self.activity);
        }
    }

    /// Completes a model over the eliminated variables (reverse elimination
    /// order), choosing each variable's polarity to satisfy its stored
    /// original clauses.  Called from the SAT exit of the search loop.
    ///
    /// Walking in reverse keeps every lookup defined: a record's clauses
    /// were live when the record was pushed, so they mention no
    /// earlier-eliminated variable, and every later-eliminated one has been
    /// reconstructed by the time the walk reaches the record.
    pub(crate) fn extend_model(&mut self) {
        let stack = &self.elim_stack;
        let model = &mut self.model;
        for record in stack.iter().rev() {
            let mut forced = None;
            'clauses: for clause in &record.clauses {
                let mut my_lit = None;
                for &l in clause {
                    if l.var() == record.var {
                        my_lit = Some(l);
                        continue;
                    }
                    if model[l.var().index()].to_bool() == Some(l.polarity()) {
                        continue 'clauses; // satisfied without the variable
                    }
                }
                // Only this record's variable can satisfy the clause; the
                // resolvent closure guarantees no other stored clause forces
                // the opposite polarity.
                forced = my_lit.map(|l| l.polarity());
                break;
            }
            model[record.var.index()] = LBool::from_bool(forced.unwrap_or(false));
        }
    }
}
