//! Clause storage for the CDCL solver: a flat `u32` arena.
//!
//! Clauses live back to back in one contiguous `Vec<u32>`: a three-word
//! header (flags + length, LBD, activity) followed by the literals.  A
//! [`ClauseRef`] is the word offset of the header, so dereferencing a clause
//! is one bounds-checked slice index instead of a pointer chase into a
//! per-clause heap allocation — the layout MiniSat-lineage solvers use to
//! keep `propagate`/`analyze` cache-friendly.
//!
//! Deletion tombstones the header and counts the clause's words as *wasted*;
//! [`ClauseDb::collect_garbage`] compacts all live clauses into a fresh arena
//! and leaves forwarding pointers behind (in the old arena, returned as a
//! [`GcMap`]) so the solver can remap watch lists and reason references.

use crate::Lit;

/// Word offset of a clause header inside the [`ClauseDb`] arena.
///
/// Stable until the next [`ClauseDb::collect_garbage`] call, which hands the
/// holder a [`GcMap`] to translate old offsets into new ones.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Words of metadata preceding the literals of every clause.
const HEADER_WORDS: usize = 3;
/// Header word 0 flag: the clause is learnt.
const FLAG_LEARNT: u32 = 1 << 31;
/// Header word 0 flag: the clause is deleted (tombstone).
const FLAG_DELETED: u32 = 1 << 30;
/// Header word 0 flag: the clause was moved by GC; word 1 of the *old* arena
/// holds the new offset.
const FLAG_RELOCATED: u32 = 1 << 29;
/// Header word 0 flag: the clause participated in a conflict since the last
/// database reduction (drives TIER2 demotion).
const FLAG_USED: u32 = 1 << 28;
/// Header word 0, bits 27..=26: the clause's [`Tier`].
const TIER_SHIFT: u32 = 26;
const TIER_MASK: u32 = 0b11 << TIER_SHIFT;
/// Low bits of header word 0: the number of literals.
const LEN_MASK: u32 = (1 << TIER_SHIFT) - 1;

/// Retention tier of a learnt clause (Chan-Seok / Glucose lineage).
///
/// CORE clauses (LBD at or below `co_lbd_bound` when learnt, or improved to
/// that later) are treated as part of the problem and never deleted by
/// database reduction.  TIER2 clauses survive reduction while they keep
/// participating in conflicts and are demoted to LOCAL after an idle round.
/// LOCAL clauses compete on activity and the lowest-activity half is evicted
/// at every reduction.  Only learnt clauses carry a meaningful tier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) enum Tier {
    /// Evictable: competes on activity at every reduction.
    Local = 0,
    /// Mid-tier: kept while used, demoted to LOCAL after an idle round.
    Tier2 = 1,
    /// Glue: never deleted by reduction.
    Core = 2,
}

impl Tier {
    fn from_bits(bits: u32) -> Tier {
        match bits {
            0 => Tier::Local,
            1 => Tier::Tier2,
            _ => Tier::Core,
        }
    }
}

/// Arena of clauses.  Deleted clauses are tombstoned (their words counted as
/// wasted) so that outstanding [`ClauseRef`]s stay valid until the next
/// [`ClauseDb::collect_garbage`]; the watch lists drop stale references
/// lazily.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    arena: Vec<u32>,
    /// Offsets of clauses that have not been garbage-collected away.  May
    /// contain tombstoned entries between [`ClauseDb::compact_live`] calls;
    /// iteration filters them.
    live: Vec<ClauseRef>,
    num_learnt: usize,
    /// Live learnt clauses per tier: `[LOCAL, TIER2, CORE]`, kept in step by
    /// `alloc`/`delete`/`set_tier`.
    tier_counts: [usize; 3],
    /// Words occupied by tombstoned clauses, reclaimed by the next GC.
    wasted: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Appends a clause to the arena and returns its offset.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() as u32 <= LEN_MASK, "clause too long for arena");
        let cref = ClauseRef(self.arena.len() as u32);
        let flags = if learnt { FLAG_LEARNT } else { 0 };
        self.arena.reserve(HEADER_WORDS + lits.len());
        self.arena.push(flags | lits.len() as u32);
        self.arena.push(0); // LBD
        self.arena.push(0.0f32.to_bits()); // activity
        self.arena.extend(lits.iter().map(|l| l.code() as u32));
        self.live.push(cref);
        if learnt {
            self.num_learnt += 1;
            self.tier_counts[Tier::Local as usize] += 1;
        }
        cref
    }

    pub(crate) fn len(&self, cref: ClauseRef) -> usize {
        (self.arena[cref.index()] & LEN_MASK) as usize
    }

    pub(crate) fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.arena[cref.index()] & FLAG_LEARNT != 0
    }

    pub(crate) fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.arena[cref.index()] & FLAG_DELETED != 0
    }

    pub(crate) fn lit(&self, cref: ClauseRef, position: usize) -> Lit {
        debug_assert!(position < self.len(cref));
        Lit::from_code(self.arena[cref.index() + HEADER_WORDS + position] as usize)
    }

    /// The literals of a clause, as a slice straight into the arena.
    pub(crate) fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let start = cref.index() + HEADER_WORDS;
        let words = &self.arena[start..start + self.len(cref)];
        // SAFETY: `Lit` is `#[repr(transparent)]` over `u32`, and every
        // literal word was stored through `Lit::code` in `alloc`, so the
        // layouts are identical.
        unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<Lit>(), words.len()) }
    }

    pub(crate) fn swap_lits(&mut self, cref: ClauseRef, a: usize, b: usize) {
        debug_assert!(a < self.len(cref) && b < self.len(cref));
        let base = cref.index() + HEADER_WORDS;
        self.arena.swap(base + a, base + b);
    }

    pub(crate) fn lbd(&self, cref: ClauseRef) -> u32 {
        self.arena[cref.index() + 1]
    }

    pub(crate) fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        self.arena[cref.index() + 1] = lbd;
    }

    pub(crate) fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.arena[cref.index() + 2])
    }

    pub(crate) fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        self.arena[cref.index() + 2] = activity.to_bits();
    }

    /// The retention tier of a learnt clause (LOCAL for problem clauses,
    /// which never pass through reduction anyway).
    pub(crate) fn tier(&self, cref: ClauseRef) -> Tier {
        Tier::from_bits((self.arena[cref.index()] & TIER_MASK) >> TIER_SHIFT)
    }

    /// Moves a live learnt clause to `tier`, keeping the per-tier counts in
    /// step.
    pub(crate) fn set_tier(&mut self, cref: ClauseRef, tier: Tier) {
        let header = self.arena[cref.index()];
        debug_assert!(header & FLAG_LEARNT != 0, "only learnt clauses have tiers");
        debug_assert!(header & FLAG_DELETED == 0, "tier change on a tombstone");
        let old = Tier::from_bits((header & TIER_MASK) >> TIER_SHIFT);
        if old == tier {
            return;
        }
        self.tier_counts[old as usize] -= 1;
        self.tier_counts[tier as usize] += 1;
        self.arena[cref.index()] = (header & !TIER_MASK) | ((tier as u32) << TIER_SHIFT);
    }

    /// Whether the clause participated in a conflict since the last
    /// reduction round ([`ClauseDb::set_used`]).
    pub(crate) fn is_used(&self, cref: ClauseRef) -> bool {
        self.arena[cref.index()] & FLAG_USED != 0
    }

    pub(crate) fn set_used(&mut self, cref: ClauseRef, used: bool) {
        let header = &mut self.arena[cref.index()];
        if used {
            *header |= FLAG_USED;
        } else {
            *header &= !FLAG_USED;
        }
    }

    /// Tombstones a clause: its words become wasted arena space, reclaimed by
    /// the next [`ClauseDb::collect_garbage`].  Idempotent.
    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        let header = self.arena[cref.index()];
        if header & FLAG_DELETED == 0 {
            if header & FLAG_LEARNT != 0 {
                self.num_learnt -= 1;
                let tier = Tier::from_bits((header & TIER_MASK) >> TIER_SHIFT);
                self.tier_counts[tier as usize] -= 1;
            }
            self.arena[cref.index()] = header | FLAG_DELETED;
            self.wasted += HEADER_WORDS + (header & LEN_MASK) as usize;
        }
    }

    pub(crate) fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    /// Live learnt clauses in `tier`.
    pub(crate) fn tier_count(&self, tier: Tier) -> usize {
        self.tier_counts[tier as usize]
    }

    /// Live learnt clauses that database reduction may evict or demote
    /// (TIER2 + LOCAL) — the count paced against `max_learnts`; CORE clauses
    /// are permanent knowledge and do not count.
    pub(crate) fn num_removable(&self) -> usize {
        self.tier_counts[Tier::Local as usize] + self.tier_counts[Tier::Tier2 as usize]
    }

    /// Total arena size in words (live + wasted).
    pub(crate) fn arena_words(&self) -> usize {
        self.arena.len()
    }

    /// Words occupied by tombstoned clauses.
    pub(crate) fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// All live (non-deleted) clauses, problem and learnt alike.
    ///
    /// Iterates the explicit live-clause list — cost proportional to the
    /// clauses that exist *now*, not to every clause ever allocated.
    pub(crate) fn live_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.live.iter().copied().filter(|&c| !self.is_deleted(c))
    }

    pub(crate) fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.live_refs().filter(|&c| self.is_learnt(c))
    }

    /// Drops tombstoned entries from the live-clause list (the arena words
    /// stay wasted until [`ClauseDb::collect_garbage`]).
    pub(crate) fn compact_live(&mut self) {
        let arena = &self.arena;
        self.live.retain(|&c| arena[c.index()] & FLAG_DELETED == 0);
    }

    /// Compacts all live clauses into a fresh arena, preserving their order,
    /// and returns a [`GcMap`] over the abandoned arena so the caller can
    /// remap every outstanding [`ClauseRef`] (watch lists, reasons).
    pub(crate) fn collect_garbage(&mut self) -> GcMap {
        let mut arena = Vec::with_capacity(self.arena.len() - self.wasted);
        let mut live = Vec::with_capacity(self.live.len());
        for &cref in &self.live {
            let index = cref.index();
            let header = self.arena[index];
            if header & FLAG_DELETED != 0 {
                continue;
            }
            let words = HEADER_WORDS + (header & LEN_MASK) as usize;
            let moved = ClauseRef(arena.len() as u32);
            arena.extend_from_slice(&self.arena[index..index + words]);
            // Forwarding pointer for the GcMap: flag + new offset in word 1.
            self.arena[index] |= FLAG_RELOCATED;
            self.arena[index + 1] = moved.0;
            live.push(moved);
        }
        let old = std::mem::replace(&mut self.arena, arena);
        self.live = live;
        self.wasted = 0;
        GcMap { old }
    }
}

/// Translation table from pre-GC clause offsets to post-GC ones (the old
/// arena, annotated with forwarding pointers by [`ClauseDb::collect_garbage`]).
pub(crate) struct GcMap {
    old: Vec<u32>,
}

impl GcMap {
    /// The post-GC offset of a pre-GC clause, or `None` if the clause was
    /// tombstoned and reclaimed.
    pub(crate) fn remap(&self, cref: ClauseRef) -> Option<ClauseRef> {
        let header = self.old[cref.index()];
        (header & FLAG_RELOCATED != 0).then(|| ClauseRef(self.old[cref.index() + 1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }

    #[test]
    fn alloc_and_get() {
        let mut db = ClauseDb::new();
        let r = db.alloc(&[lit(0), lit(1)], false);
        assert_eq!(db.len(r), 2);
        assert!(!db.is_learnt(r));
        assert_eq!(db.lits(r), &[lit(0), lit(1)]);
        assert_eq!(db.lit(r, 1), lit(1));
        db.swap_lits(r, 0, 1);
        assert_eq!(db.lits(r), &[lit(1), lit(0)]);
    }

    #[test]
    fn header_fields_round_trip() {
        let mut db = ClauseDb::new();
        let r = db.alloc(&[lit(0), lit(1), lit(2)], true);
        assert!(db.is_learnt(r));
        db.set_lbd(r, 7);
        db.set_activity(r, 1.5);
        assert_eq!(db.lbd(r), 7);
        assert_eq!(db.activity(r), 1.5);
        assert_eq!(db.len(r), 3, "flags must not leak into the length");
    }

    #[test]
    fn learnt_counting_and_delete() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&[lit(0)], true);
        let _b = db.alloc(&[lit(1)], true);
        assert_eq!(db.num_learnt(), 2);
        assert_eq!(db.wasted_words(), 0);
        db.delete(a);
        assert_eq!(db.num_learnt(), 1);
        assert_eq!(db.wasted_words(), HEADER_WORDS + 1);
        // Double delete is a no-op.
        db.delete(a);
        assert_eq!(db.num_learnt(), 1);
        assert_eq!(db.wasted_words(), HEADER_WORDS + 1);
        assert_eq!(db.learnt_refs().count(), 1);
        assert_eq!(db.live_refs().count(), 1);
        db.compact_live();
        assert_eq!(db.live_refs().count(), 1);
    }

    #[test]
    fn collect_garbage_compacts_and_remaps() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&[lit(0), lit(1)], false);
        let b = db.alloc(&[lit(2), lit(3), lit(4)], true);
        let c = db.alloc(&[lit(5), lit(6)], false);
        db.set_activity(b, 2.5);
        db.delete(a);
        let words_before = db.arena_words();
        let map = db.collect_garbage();
        assert_eq!(map.remap(a), None, "deleted clauses are not forwarded");
        let b2 = map.remap(b).expect("live clause relocated");
        let c2 = map.remap(c).expect("live clause relocated");
        assert_eq!(db.lits(b2), &[lit(2), lit(3), lit(4)]);
        assert_eq!(db.activity(b2), 2.5);
        assert!(db.is_learnt(b2));
        assert_eq!(db.lits(c2), &[lit(5), lit(6)]);
        assert_eq!(db.wasted_words(), 0);
        assert!(db.arena_words() < words_before);
        assert_eq!(db.live_refs().count(), 2);
        assert_eq!(db.num_learnt(), 1);
    }

    #[test]
    fn tiers_round_trip_and_keep_counts() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&[lit(0), lit(1), lit(2)], true);
        let b = db.alloc(&[lit(3), lit(4)], true);
        assert_eq!(db.tier(a), Tier::Local);
        assert_eq!(db.tier_count(Tier::Local), 2);
        db.set_tier(a, Tier::Core);
        db.set_tier(b, Tier::Tier2);
        assert_eq!(db.tier(a), Tier::Core);
        assert_eq!(db.tier(b), Tier::Tier2);
        assert_eq!(db.tier_count(Tier::Local), 0);
        assert_eq!(db.tier_count(Tier::Tier2), 1);
        assert_eq!(db.tier_count(Tier::Core), 1);
        assert_eq!(db.num_removable(), 1);
        assert_eq!(db.len(a), 3, "tier bits must not leak into the length");
        db.delete(b);
        assert_eq!(db.tier_count(Tier::Tier2), 0);
        assert_eq!(db.num_removable(), 0);
    }

    #[test]
    fn used_flag_round_trips_and_survives_gc() {
        let mut db = ClauseDb::new();
        let junk = db.alloc(&[lit(9), lit(10)], false);
        let a = db.alloc(&[lit(0), lit(1), lit(2)], true);
        assert!(!db.is_used(a));
        db.set_used(a, true);
        db.set_tier(a, Tier::Tier2);
        assert!(db.is_used(a));
        db.delete(junk);
        let map = db.collect_garbage();
        let a2 = map.remap(a).expect("live clause relocated");
        assert!(db.is_used(a2), "headers are copied verbatim by GC");
        assert_eq!(db.tier(a2), Tier::Tier2);
        assert_eq!(db.len(a2), 3);
        db.set_used(a2, false);
        assert!(!db.is_used(a2));
    }

    #[test]
    fn gc_of_an_empty_db_is_a_no_op() {
        let mut db = ClauseDb::new();
        let _ = db.collect_garbage();
        assert_eq!(db.arena_words(), 0);
        assert_eq!(db.live_refs().count(), 0);
    }
}
