//! Clause storage for the CDCL solver.

use crate::Lit;

/// Index of a clause inside the [`ClauseDb`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub(crate) struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single clause plus solver metadata.
#[derive(Clone, Debug)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    pub(crate) learnt: bool,
    pub(crate) deleted: bool,
    pub(crate) activity: f64,
    /// Literal block distance computed when the clause was learnt.
    pub(crate) lbd: u32,
}

impl Clause {
    pub(crate) fn new(lits: Vec<Lit>, learnt: bool) -> Clause {
        Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.lits.len()
    }
}

/// Arena of clauses.  Deleted clauses are tombstoned so that `ClauseRef`s stay
/// stable; the watch lists drop references lazily.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    num_learnt: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    pub(crate) fn push(&mut self, clause: Clause) -> ClauseRef {
        if clause.learnt {
            self.num_learnt += 1;
        }
        let idx = self.clauses.len() as u32;
        self.clauses.push(clause);
        ClauseRef(idx)
    }

    pub(crate) fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.index()]
    }

    pub(crate) fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.index()]
    }

    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        let clause = &mut self.clauses[cref.index()];
        if !clause.deleted {
            if clause.learnt {
                self.num_learnt -= 1;
            }
            clause.deleted = true;
            clause.lits.clear();
            clause.lits.shrink_to_fit();
        }
    }

    pub(crate) fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    /// All live (non-deleted) clauses, problem and learnt alike.
    pub(crate) fn live_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    pub(crate) fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }

    #[test]
    fn push_and_get() {
        let mut db = ClauseDb::new();
        let r = db.push(Clause::new(vec![lit(0), lit(1)], false));
        assert_eq!(db.get(r).len(), 2);
        assert!(!db.get(r).learnt);
    }

    #[test]
    fn learnt_counting_and_delete() {
        let mut db = ClauseDb::new();
        let a = db.push(Clause::new(vec![lit(0)], true));
        let _b = db.push(Clause::new(vec![lit(1)], true));
        assert_eq!(db.num_learnt(), 2);
        db.delete(a);
        assert_eq!(db.num_learnt(), 1);
        // Double delete is a no-op.
        db.delete(a);
        assert_eq!(db.num_learnt(), 1);
        assert_eq!(db.learnt_refs().count(), 1);
    }
}
