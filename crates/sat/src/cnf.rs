//! A plain container for CNF formulas.

use crate::{Lit, Var};

/// A formula in conjunctive normal form: a conjunction of clauses, each clause
/// being a disjunction of literals.
///
/// `CnfFormula` is a passive container; it performs no propagation or
/// simplification.  Use [`crate::Solver`] to decide satisfiability.
///
/// # Example
///
/// ```
/// use sat::{CnfFormula, Lit, Var};
///
/// let mut cnf = CnfFormula::new();
/// let a = cnf.new_var();
/// let b = cnf.new_var();
/// cnf.add_clause([Lit::positive(a), Lit::negative(b)]);
/// assert_eq!(cnf.num_clauses(), 1);
/// assert_eq!(cnf.num_vars(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates an empty formula with no variables and no clauses.
    pub fn new() -> CnfFormula {
        CnfFormula::default()
    }

    /// Creates an empty formula that already declares `num_vars` variables.
    pub fn with_vars(num_vars: usize) -> CnfFormula {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let var = Var::from_index(self.num_vars);
        self.num_vars += 1;
        var
    }

    /// Returns the number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` if the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Adds a clause.  Variables referenced by the clause are declared
    /// automatically if necessary.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            if lit.var().index() >= self.num_vars {
                self.num_vars = lit.var().index() + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// Returns an iterator over the clauses.
    pub fn iter(&self) -> impl Iterator<Item = &[Lit]> {
        self.clauses.iter().map(|c| c.as_slice())
    }

    /// Returns the clauses as a slice of vectors.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Evaluates the formula under a full assignment.
    ///
    /// `assignment[i]` is the value of variable `i`.  Returns `true` if every
    /// clause has at least one satisfied literal.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than [`CnfFormula::num_vars`].
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_vars,
            "assignment covers {} vars but formula has {}",
            assignment.len(),
            self.num_vars
        );
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| assignment[lit.var().index()] == lit.polarity())
        })
    }

    /// Appends all clauses of `other`, keeping variable identities.
    pub fn extend_from(&mut self, other: &CnfFormula) {
        self.num_vars = self.num_vars.max(other.num_vars);
        self.clauses.extend(other.clauses.iter().cloned());
    }
}

impl FromIterator<Vec<Lit>> for CnfFormula {
    fn from_iter<T: IntoIterator<Item = Vec<Lit>>>(iter: T) -> Self {
        let mut cnf = CnfFormula::new();
        for clause in iter {
            cnf.add_clause(clause);
        }
        cnf
    }
}

impl Extend<Vec<Lit>> for CnfFormula {
    fn extend<T: IntoIterator<Item = Vec<Lit>>>(&mut self, iter: T) {
        for clause in iter {
            self.add_clause(clause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(index: usize, negated: bool) -> Lit {
        Lit::new(Var::from_index(index), negated)
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut cnf = CnfFormula::new();
        cnf.add_clause([lit(4, false)]);
        assert_eq!(cnf.num_vars(), 5);
    }

    #[test]
    fn evaluate_full_assignment() {
        let mut cnf = CnfFormula::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([Lit::positive(a), Lit::positive(b)]);
        cnf.add_clause([Lit::negative(a)]);
        assert!(cnf.evaluate(&[false, true]));
        assert!(!cnf.evaluate(&[true, false]));
        assert!(!cnf.evaluate(&[false, false]));
    }

    #[test]
    fn collect_from_iterator() {
        let clauses = vec![vec![lit(0, false)], vec![lit(1, true), lit(0, true)]];
        let cnf: CnfFormula = clauses.into_iter().collect();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_vars(), 2);
    }

    #[test]
    fn extend_from_merges() {
        let mut a = CnfFormula::with_vars(2);
        a.add_clause([lit(0, false)]);
        let mut b = CnfFormula::with_vars(4);
        b.add_clause([lit(3, true)]);
        a.extend_from(&b);
        assert_eq!(a.num_vars(), 4);
        assert_eq!(a.num_clauses(), 2);
    }
}
