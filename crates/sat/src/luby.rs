//! The Luby restart sequence.

/// Returns the `i`-th element (1-based) of the Luby sequence:
/// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
///
/// The solver restarts after `base * luby(i)` conflicts for the `i`-th
/// restart, which is the standard strategy from MiniSat.
pub(crate) fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence that contains index i, and the index of i
    // within that subsequence.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn values_are_powers_of_two() {
        for i in 0..200 {
            assert!(luby(i).is_power_of_two());
        }
    }
}
