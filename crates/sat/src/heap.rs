//! Indexed binary max-heap ordered by variable activity (VSIDS).

use crate::Var;

/// A binary max-heap over variables keyed by an external activity array.
///
/// Supports `decrease/increase key` via [`VarOrderHeap::update`] because each
/// variable's heap position is tracked in `positions`.
#[derive(Debug, Default)]
pub(crate) struct VarOrderHeap {
    heap: Vec<Var>,
    /// `positions[v] == usize::MAX` when the variable is not in the heap.
    positions: Vec<usize>,
}

const NOT_IN_HEAP: usize = usize::MAX;

impl VarOrderHeap {
    pub(crate) fn new() -> VarOrderHeap {
        VarOrderHeap::default()
    }

    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        if self.positions.len() < num_vars {
            self.positions.resize(num_vars, NOT_IN_HEAP);
        }
    }

    pub(crate) fn contains(&self, var: Var) -> bool {
        self.positions
            .get(var.index())
            .is_some_and(|&p| p != NOT_IN_HEAP)
    }

    pub(crate) fn insert(&mut self, var: Var, activity: &[f64]) {
        self.grow_to(var.index() + 1);
        if self.contains(var) {
            return;
        }
        let pos = self.heap.len();
        self.heap.push(var);
        self.positions[var.index()] = pos;
        self.sift_up(pos, activity);
    }

    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.positions[top.index()] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap property for `var` after its activity increased.
    pub(crate) fn update(&mut self, var: Var, activity: &[f64]) {
        if let Some(&pos) = self.positions.get(var.index()) {
            if pos != NOT_IN_HEAP {
                self.sift_up(pos, activity);
            }
        }
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if activity[self.heap[pos].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut largest = pos;
            if left < self.heap.len()
                && activity[self.heap[left].index()] > activity[self.heap[largest].index()]
            {
                largest = left;
            }
            if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[largest].index()]
            {
                largest = right;
            }
            if largest == pos {
                break;
            }
            self.swap(pos, largest);
            pos = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a].index()] = a;
        self.positions[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut heap = VarOrderHeap::new();
        for i in 0..activity.len() {
            heap.insert(Var::from_index(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn update_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarOrderHeap::new();
        for i in 0..3 {
            heap.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        heap.update(Var::from_index(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let activity = vec![1.0];
        let mut heap = VarOrderHeap::new();
        heap.insert(Var::from_index(0), &activity);
        heap.insert(Var::from_index(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
        assert!(heap.pop_max(&activity).is_none());
        assert!(!heap.contains(Var::from_index(0)));
    }
}
