//! Three-valued Booleans used for partial assignments.

/// A three-valued Boolean: true, false, or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// The variable is assigned true.
    True,
    /// The variable is assigned false.
    False,
    /// The variable is unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a concrete Boolean into an [`LBool`].
    #[inline]
    pub fn from_bool(value: bool) -> LBool {
        if value {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns the concrete Boolean value, or `None` if unassigned.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Returns `true` if this value is assigned (not [`LBool::Undef`]).
    #[inline]
    pub fn is_assigned(self) -> bool {
        self != LBool::Undef
    }

    /// Logical negation; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert_eq!(LBool::from_bool(true).to_bool(), Some(true));
        assert_eq!(LBool::from_bool(false).to_bool(), Some(false));
        assert_eq!(LBool::Undef.to_bool(), None);
    }

    #[test]
    fn negation() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
    }

    #[test]
    fn default_is_undef() {
        assert_eq!(LBool::default(), LBool::Undef);
        assert!(!LBool::default().is_assigned());
    }
}
