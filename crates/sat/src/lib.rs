//! A from-scratch CDCL (conflict-driven clause learning) SAT solver.
//!
//! This crate provides the Boolean reasoning engine used throughout the FALL
//! attacks reproduction.  It plays the role that Lingeling plays in the
//! original paper: a sound and complete solver with incremental solving under
//! assumptions.
//!
//! # Features
//!
//! * Two-watched-literal unit propagation.
//! * First-UIP conflict analysis with clause learning and non-chronological
//!   backjumping.
//! * VSIDS variable activities with phase saving.
//! * Glucose-style EMA restarts with trail-size blocking ([`RestartMode`]),
//!   with Luby budgets as a portfolio mode.
//! * LBD-tiered learnt-clause management (CORE / TIER2 / LOCAL) with
//!   promotion on use and glue protection.
//! * One-shot adaptive strategy switching after a warm-up conflict budget
//!   ([`SearchStrategy`], [`Solver::strategy`]).
//! * Bounded variable elimination at [`Solver::simplify`] checkpoints with
//!   model reconstruction and transparent resurrection under incremental use
//!   ([`Solver::set_frozen`], [`Solver::is_eliminated`]).
//! * Incremental solving under assumptions ([`Solver::solve_with`]).
//! * Activation frames for assumption-scoped clause groups that can be
//!   logically deleted without losing learnt clauses
//!   ([`Solver::push_frame`], [`Solver::retire_frame`], [`Solver::solve_in`])
//!   plus a level-0 clause-database reduction pass ([`Solver::simplify`]).
//! * A flat `u32` clause arena (offsets instead of per-clause heap
//!   allocations) with periodic garbage collection
//!   ([`SolverConfig::gc_wasted_ratio`], [`Solver::collect_garbage`]) and a
//!   spent-variable free list ([`Solver::release_var`]): retired frames give
//!   back their clauses *and* their variables, so long-lived incremental
//!   sessions run in bounded memory.
//! * Optional conflict budgets so callers can impose timeouts
//!   ([`Solver::set_conflict_budget`]).
//!
//! # Example
//!
//! ```
//! use sat::{Solver, Lit, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! // (a | b) & (!a | b) forces b = true.
//! solver.add_clause([Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause([Lit::negative(a), Lit::positive(b)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(Lit::positive(b)), Some(true));
//! ```

#![deny(missing_docs)]

mod clause;
mod cnf;
mod dimacs;
mod heap;
mod lbool;
mod lit;
mod luby;
mod restart;
mod solver;

pub use cnf::CnfFormula;
pub use dimacs::{parse_dimacs, write_dimacs, ParseDimacsError};
pub use lbool::LBool;
pub use lit::{Lit, Var};
pub use restart::RestartMode;
pub use solver::{
    Checkpoint, FrameId, SearchStrategy, SolveResult, Solver, SolverConfig, SolverStats,
};

// The parallel attack engine moves whole solvers across worker threads; every
// field is owned data or an `Arc` of a `Sync` atomic, so `Solver` must stay
// `Send`.  Compile-time proof:
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Solver>()
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(a)), Some(true));
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a)]);
        s.add_clause([Lit::negative(a)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        s.add_clause([]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
