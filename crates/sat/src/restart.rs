//! Restart scheduling: Luby sequences and Glucose-style EMA forcing/blocking.
//!
//! Two pacing modes coexist behind [`RestartMode`]:
//!
//! * **Luby** — the classic budgeted scheme: the `i`-th run gets
//!   `restart_base * luby(i)` conflicts, then the solver restarts
//!   unconditionally.  Deterministic and instance-agnostic.
//! * **Ema** — Glucose-lineage dynamic restarts: a fast and a slow
//!   exponential moving average of learnt-clause LBDs are maintained per
//!   conflict; when the fast average exceeds `restart_thr` times the slow
//!   one the search is judged to be producing worse-than-usual clauses and
//!   a restart is forced — unless the trail has grown well past its own
//!   long-run average (`restart_blk`), which signals the solver is deep in
//!   a promising assignment and the restart is *blocked* instead.
//!
//! The EMAs use a bias-corrected warm-up (the smoothing factor starts at 1
//! and halves until it reaches its target), so the averages are meaningful
//! within a few conflicts of a fresh solve instead of slowly drifting up
//! from zero — the same trick CaDiCaL uses, equivalent in effect to the
//! bounded `LbdQueue` window of Glucose/gipsat.

use crate::luby::luby;
use crate::SolverConfig;

/// Restart pacing discipline of a [`crate::Solver`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RestartMode {
    /// Glucose-style dynamic restarts from fast/slow LBD EMAs, with
    /// trail-size blocking (the default).
    #[default]
    Ema,
    /// Classic Luby-sequence budgets (`restart_base * luby(i)` conflicts for
    /// the `i`-th run).  Kept as a portfolio mode: Luby members probe with a
    /// schedule that is immune to LBD noise, decorrelating them from the EMA
    /// members racing the same instance.
    Luby,
}

/// Exponential moving average with warm-up bias correction.
#[derive(Clone, Copy, Debug)]
struct Ema {
    value: f64,
    /// Target smoothing factor.
    alpha: f64,
    /// Current smoothing factor: starts at 1.0 and halves toward `alpha`, so
    /// early samples dominate instead of being averaged against the zero
    /// initial value.
    beta: f64,
}

impl Ema {
    fn new(alpha: f64) -> Ema {
        Ema {
            value: 0.0,
            alpha,
            beta: 1.0,
        }
    }

    fn update(&mut self, sample: f64) {
        self.value += self.beta * (sample - self.value);
        if self.beta > self.alpha {
            self.beta *= 0.5;
            if self.beta < self.alpha {
                self.beta = self.alpha;
            }
        }
    }

    fn get(&self) -> f64 {
        self.value
    }
}

/// Smoothing factor of the fast (recent-window) LBD average; `1/32` tracks
/// roughly the last few dozen conflicts, the scale of Glucose's 50-entry
/// `LbdQueue`.
const ALPHA_FAST: f64 = 1.0 / 32.0;
/// Smoothing factor of the slow (long-run) LBD and trail averages.
const ALPHA_SLOW: f64 = 1.0 / 4096.0;

/// Verdict of [`RestartState::check`] at a decision point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum RestartDecision {
    /// Keep searching.
    Continue,
    /// Restart now (Luby budget exhausted).
    RestartLuby,
    /// Restart now (fast LBD EMA crossed the forcing threshold).
    RestartEma,
    /// The forcing threshold fired but the trail is deep enough that the
    /// restart was blocked; the wait counter restarts.
    Blocked,
}

/// Per-solve restart pacing state.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RestartState {
    mode: RestartMode,
    /// Luby mode: index into the Luby sequence (restarts taken this solve).
    luby_index: u64,
    /// Luby mode: conflict budget of the current run.
    budget: u64,
    /// Conflicts since the last restart (or block).
    conflicts_here: u64,
    /// Fast-moving average of learnt-clause LBDs.
    fast: Ema,
    /// Slow-moving average of learnt-clause LBDs.
    slow: Ema,
    /// Slow-moving average of the trail size at conflicts.
    trail: Ema,
}

impl Default for RestartState {
    fn default() -> RestartState {
        RestartState::new(RestartMode::default(), 100)
    }
}

impl RestartState {
    pub(crate) fn new(mode: RestartMode, restart_base: u64) -> RestartState {
        RestartState {
            mode,
            luby_index: 0,
            budget: restart_base * luby(0),
            conflicts_here: 0,
            fast: Ema::new(ALPHA_FAST),
            slow: Ema::new(ALPHA_SLOW),
            trail: Ema::new(ALPHA_SLOW),
        }
    }

    /// Re-arms the schedule at the start of a solve call, keeping nothing but
    /// the mode: each query of an incremental session paces itself.
    pub(crate) fn reset_for_solve(&mut self, mode: RestartMode, restart_base: u64) {
        *self = RestartState::new(mode, restart_base);
    }

    /// Feeds one conflict into the averages.
    pub(crate) fn on_conflict(&mut self, lbd: u32, trail_len: usize) {
        self.conflicts_here += 1;
        if self.mode == RestartMode::Ema {
            self.fast.update(f64::from(lbd));
            self.slow.update(f64::from(lbd));
            self.trail.update(trail_len as f64);
        }
    }

    /// Decides, at a decision point, whether to restart.  Called once per
    /// decision, so a [`RestartDecision::Blocked`] verdict delays the next
    /// forcing attempt by a full `restart_step` window rather than re-firing
    /// immediately.
    pub(crate) fn check(&mut self, trail_len: usize, config: &SolverConfig) -> RestartDecision {
        match self.mode {
            RestartMode::Luby => {
                if self.conflicts_here >= self.budget {
                    RestartDecision::RestartLuby
                } else {
                    RestartDecision::Continue
                }
            }
            RestartMode::Ema => {
                if self.conflicts_here < config.restart_step {
                    return RestartDecision::Continue;
                }
                if self.fast.get() <= config.restart_thr * self.slow.get() {
                    return RestartDecision::Continue;
                }
                if trail_len as f64 > config.restart_blk * self.trail.get() {
                    self.conflicts_here = 0;
                    return RestartDecision::Blocked;
                }
                RestartDecision::RestartEma
            }
        }
    }

    /// Acknowledges a restart: resets the conflict window and, in Luby mode,
    /// advances to the next budget.
    pub(crate) fn on_restart(&mut self, restart_base: u64) {
        self.conflicts_here = 0;
        if self.mode == RestartMode::Luby {
            self.luby_index += 1;
            self.budget = restart_base * luby(self.luby_index);
        }
    }

    /// Switches pacing mode mid-search (adaptive strategy switching).
    pub(crate) fn set_mode(&mut self, mode: RestartMode, restart_base: u64) {
        if self.mode != mode {
            self.mode = mode;
            self.conflicts_here = 0;
            self.luby_index = 0;
            self.budget = restart_base * luby(0);
        }
    }

    /// Fast LBD EMA ×1000, as an integer gauge for [`crate::SolverStats`].
    pub(crate) fn ema_fast_milli(&self) -> u64 {
        (self.fast.get() * 1000.0).max(0.0) as u64
    }

    /// Slow LBD EMA ×1000, as an integer gauge for [`crate::SolverStats`].
    pub(crate) fn ema_slow_milli(&self) -> u64 {
        (self.slow.get() * 1000.0).max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_warmup_tracks_first_samples_quickly() {
        let mut e = Ema::new(1.0 / 4096.0);
        e.update(5.0);
        assert_eq!(e.get(), 5.0, "first sample is taken verbatim (beta = 1)");
        e.update(7.0);
        assert!(e.get() > 5.5, "warm-up keeps early samples influential");
    }

    #[test]
    fn luby_mode_restarts_on_budget() {
        let config = SolverConfig::default();
        let mut r = RestartState::new(RestartMode::Luby, 2);
        assert_eq!(r.check(0, &config), RestartDecision::Continue);
        r.on_conflict(3, 10);
        r.on_conflict(3, 10);
        assert_eq!(r.check(0, &config), RestartDecision::RestartLuby);
        r.on_restart(2);
        assert_eq!(r.check(0, &config), RestartDecision::Continue);
    }

    #[test]
    fn ema_mode_forces_on_lbd_spike_and_blocks_on_deep_trail() {
        let config = SolverConfig::default();
        let mut r = RestartState::new(RestartMode::Ema, 100);
        // A long calm stretch establishes a low slow average...
        for _ in 0..config.restart_step {
            r.on_conflict(2, 10);
        }
        assert_eq!(r.check(10, &config), RestartDecision::Continue);
        // ...then a burst of terrible clauses spikes the fast average.
        for _ in 0..config.restart_step {
            r.on_conflict(40, 10);
        }
        assert_eq!(r.check(10, &config), RestartDecision::RestartEma);
        // The same spike with a much deeper trail than average is blocked.
        for _ in 0..config.restart_step {
            r.on_conflict(40, 10);
        }
        assert_eq!(r.check(10_000, &config), RestartDecision::Blocked);
        assert_eq!(
            r.check(10_000, &config),
            RestartDecision::Continue,
            "blocking resets the wait window"
        );
    }
}
