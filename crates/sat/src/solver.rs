//! The CDCL solver.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::clause::{ClauseDb, ClauseRef, Tier};
use crate::heap::VarOrderHeap;
use crate::restart::{RestartDecision, RestartState};
use crate::{CnfFormula, LBool, Lit, RestartMode, Var};

#[path = "eliminate.rs"]
mod eliminate;

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; query it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
    /// The conflict or propagation budget was exhausted before a result.
    Unknown,
}

impl SolveResult {
    /// Returns `true` for [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// Returns `true` for [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }
}

/// Counters describing the work performed by a solver instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed (Luby and EMA-forced combined).
    pub restarts: u64,
    /// Restarts taken because a Luby conflict budget ran out.
    pub restarts_luby: u64,
    /// Restarts forced by the fast/slow LBD EMA threshold
    /// ([`SolverConfig::restart_thr`]).
    pub restarts_ema: u64,
    /// EMA-forced restarts suppressed by trail-size blocking
    /// ([`SolverConfig::restart_blk`]).
    pub restarts_blocked: u64,
    /// Learnt-database reduction rounds performed.
    pub reductions: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Learnt clauses currently in the CORE tier (glue; never deleted).
    pub core_clauses: u64,
    /// Learnt clauses currently in the TIER2 tier (kept while used).
    pub tier2_clauses: u64,
    /// Learnt clauses currently in the LOCAL tier (evictable).
    pub local_clauses: u64,
    /// Variables removed by bounded variable elimination, cumulatively.
    pub vars_eliminated: u64,
    /// Eliminated variables re-introduced because a later clause or
    /// assumption referenced them, cumulatively.
    pub vars_resurrected: u64,
    /// Adaptive strategy switches performed (0 or 1 per solver: the
    /// classification after the warm-up budget is one-shot).
    pub strategy_switches: u64,
    /// Fast (recent-window) learnt-LBD EMA ×1000 at the last snapshot.
    pub ema_lbd_fast_milli: u64,
    /// Slow (long-run) learnt-LBD EMA ×1000 at the last snapshot.
    pub ema_lbd_slow_milli: u64,
    /// Number of `solve`/`solve_with` invocations.
    pub solves: u64,
    /// Current size of the clause arena in bytes (live + wasted).
    pub arena_bytes: u64,
    /// Bytes of the arena occupied by tombstoned (deleted) clauses, reclaimed
    /// by the next garbage collection.
    pub wasted_bytes: u64,
    /// Garbage-collection passes performed ([`Solver::collect_garbage`]).
    pub gc_runs: u64,
    /// Variables reclaimed into the free list ([`Solver::release_var`]); each
    /// is handed out again by a later [`Solver::new_var`] instead of growing
    /// the variable space.
    pub recycled_vars: u64,
}

impl SolverStats {
    /// Accumulates another snapshot into this one, field by field.
    ///
    /// This is how a pool of long-lived solver instances (one per worker
    /// session) is reported as a single aggregate: monotone counters sum
    /// into pool totals, and the point-in-time gauges (`learnt_clauses`,
    /// `arena_bytes`, `wasted_bytes`) sum into the pool's current footprint.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.restarts_luby += other.restarts_luby;
        self.restarts_ema += other.restarts_ema;
        self.restarts_blocked += other.restarts_blocked;
        self.reductions += other.reductions;
        self.learnt_clauses += other.learnt_clauses;
        self.core_clauses += other.core_clauses;
        self.tier2_clauses += other.tier2_clauses;
        self.local_clauses += other.local_clauses;
        self.vars_eliminated += other.vars_eliminated;
        self.vars_resurrected += other.vars_resurrected;
        self.strategy_switches += other.strategy_switches;
        self.ema_lbd_fast_milli += other.ema_lbd_fast_milli;
        self.ema_lbd_slow_milli += other.ema_lbd_slow_milli;
        self.solves += other.solves;
        self.arena_bytes += other.arena_bytes;
        self.wasted_bytes += other.wasted_bytes;
        self.gc_runs += other.gc_runs;
        self.recycled_vars += other.recycled_vars;
    }

    /// The canonical `(name, value)` view of every field, in declaration
    /// order.
    ///
    /// This is the single source of truth for everything that serialises or
    /// renders the counters — the `fall-dist` worker-telemetry wire encoding,
    /// the `fall-serve` metric surface, and the drift-guard tests — so a
    /// field added to the struct without extending this list (the
    /// `stats_fields_cover_the_struct` test below catches that) cannot
    /// silently go missing from any of them.
    pub fn fields(&self) -> [(&'static str, u64); 22] {
        [
            ("conflicts", self.conflicts),
            ("decisions", self.decisions),
            ("propagations", self.propagations),
            ("restarts", self.restarts),
            ("restarts_luby", self.restarts_luby),
            ("restarts_ema", self.restarts_ema),
            ("restarts_blocked", self.restarts_blocked),
            ("reductions", self.reductions),
            ("learnt_clauses", self.learnt_clauses),
            ("core_clauses", self.core_clauses),
            ("tier2_clauses", self.tier2_clauses),
            ("local_clauses", self.local_clauses),
            ("vars_eliminated", self.vars_eliminated),
            ("vars_resurrected", self.vars_resurrected),
            ("strategy_switches", self.strategy_switches),
            ("ema_lbd_fast_milli", self.ema_lbd_fast_milli),
            ("ema_lbd_slow_milli", self.ema_lbd_slow_milli),
            ("solves", self.solves),
            ("arena_bytes", self.arena_bytes),
            ("wasted_bytes", self.wasted_bytes),
            ("gc_runs", self.gc_runs),
            ("recycled_vars", self.recycled_vars),
        ]
    }

    /// Sets one field by its [`SolverStats::fields`] name; the decoding
    /// counterpart of `fields` for wire formats.  Returns `false` when the
    /// name matches no field (the caller decides whether unknown names are
    /// an error or forward-compatible noise).
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "conflicts" => &mut self.conflicts,
            "decisions" => &mut self.decisions,
            "propagations" => &mut self.propagations,
            "restarts" => &mut self.restarts,
            "restarts_luby" => &mut self.restarts_luby,
            "restarts_ema" => &mut self.restarts_ema,
            "restarts_blocked" => &mut self.restarts_blocked,
            "reductions" => &mut self.reductions,
            "learnt_clauses" => &mut self.learnt_clauses,
            "core_clauses" => &mut self.core_clauses,
            "tier2_clauses" => &mut self.tier2_clauses,
            "local_clauses" => &mut self.local_clauses,
            "vars_eliminated" => &mut self.vars_eliminated,
            "vars_resurrected" => &mut self.vars_resurrected,
            "strategy_switches" => &mut self.strategy_switches,
            "ema_lbd_fast_milli" => &mut self.ema_lbd_fast_milli,
            "ema_lbd_slow_milli" => &mut self.ema_lbd_slow_milli,
            "solves" => &mut self.solves,
            "arena_bytes" => &mut self.arena_bytes,
            "wasted_bytes" => &mut self.wasted_bytes,
            "gc_runs" => &mut self.gc_runs,
            "recycled_vars" => &mut self.recycled_vars,
            _ => return false,
        };
        *slot = value;
        true
    }
}

/// Tunable search parameters of a [`Solver`].
///
/// The defaults reproduce the solver's historical behaviour; alternative
/// configurations exist for *portfolio solving*, where several solver
/// instances with deliberately diverse heuristics race on the same instance
/// and the first winner is taken (see [`SolverConfig::portfolio`]).
#[derive(Clone, Debug, PartialEq)]
pub struct SolverConfig {
    /// VSIDS variable-activity decay factor (0 < decay < 1, default 0.95).
    ///
    /// Closer to 1 gives older conflicts a longer-lived vote in branching
    /// (steadier focus, slower to refocus after the instance changes under
    /// incremental use); lower values make branching chase the most recent
    /// conflicts aggressively.
    pub var_decay: f64,
    /// Learnt-clause activity decay factor (0 < decay < 1, default 0.999).
    ///
    /// Governs which learnt clauses survive database reduction: higher
    /// values judge clauses over a longer window of usefulness, lower
    /// values evict anything not used very recently.
    pub cla_decay: f64,
    /// Base conflict budget of the Luby restart sequence (default 100).
    ///
    /// Only consulted in [`RestartMode::Luby`]: every restart budget is this
    /// value times the next Luby multiplier.  Smaller bases restart
    /// aggressively (good on shuffled/adversarial instances, and a cheap
    /// source of portfolio diversity); larger bases let each probe run deeper
    /// before abandoning its decision prefix.
    pub restart_base: u64,
    /// Restart pacing discipline (default [`RestartMode::Ema`]).
    ///
    /// EMA restarts adapt to the instance — they fire exactly when the
    /// search starts producing worse-than-usual clauses — and win on most
    /// structured instances; Luby is the robust, noise-immune fallback and
    /// the classic way to decorrelate portfolio members.
    pub restart_mode: RestartMode,
    /// EMA forcing threshold (default 1.25): restart when the fast LBD EMA
    /// exceeds this multiple of the slow one.
    ///
    /// Lower values (→ 1.0) restart at the slightest quality dip —
    /// Glucose-aggressive, strong on unsatisfiable instances; higher values
    /// demand a clear degradation first and favour satisfiable instances by
    /// letting promising descents run.  Only used in [`RestartMode::Ema`].
    pub restart_thr: f64,
    /// Trail-blocking threshold (default 1.4): a forced restart is suppressed
    /// while the trail is more than this multiple of its long-run average.
    ///
    /// A deep trail means the solver has committed far more of the instance
    /// than usual — likely approaching a model — so throwing the prefix away
    /// would be wasteful.  Raise toward ∞ to never block (pure Glucose
    /// forcing); lower toward 1.0 to block often (model-chasing).  Only used
    /// in [`RestartMode::Ema`].
    pub restart_blk: f64,
    /// Minimum conflicts between EMA restart decisions (default 50).
    ///
    /// Acts as both the warm-up for the fast EMA after each restart and a
    /// floor on run length, exactly like the 50-entry `LbdQueue` refill rule
    /// in Glucose.  Smaller steps chase the EMAs nervously; larger steps
    /// approximate fixed-interval restarts.  Only used in
    /// [`RestartMode::Ema`].
    pub restart_step: u64,
    /// LBD at or below which a learnt clause enters the CORE tier and is
    /// never deleted by database reduction (default 3, the Chan-Seok bound).
    ///
    /// Raising it keeps more clauses forever — helpful when the instance
    /// rewards accumulated lemmas (the adaptive `LowDecisions` strategy does
    /// exactly this), at the cost of database growth; 0 disables the CORE
    /// tier entirely and every learnt clause competes for survival.
    pub co_lbd_bound: u32,
    /// LBD at or below which a learnt clause enters the TIER2 tier
    /// (default 6).
    ///
    /// TIER2 clauses survive reduction rounds in which they participated in
    /// a conflict and are demoted to LOCAL otherwise.  Must be at least
    /// `co_lbd_bound` to be meaningful; setting it equal collapses the
    /// middle tier.
    pub tier2_lbd_bound: u32,
    /// Enables one-shot adaptive strategy switching (default `true`).
    ///
    /// After `adapt_after_conflicts` total conflicts the solver classifies
    /// the instance from its conflict/decision profile and switches
    /// restart/decay/tier parameters once (see [`SearchStrategy`]).  Disable
    /// for bit-reproducible parameter trajectories or when the caller tunes
    /// the knobs itself.
    pub adapt_strategy: bool,
    /// Warm-up conflict budget before the adaptive classification runs
    /// (default 10 000 — cumulative over the solver's lifetime, so
    /// long-lived incremental sessions classify on their real workload).
    ///
    /// Shorter warm-ups adapt faster but judge the instance on less
    /// evidence; longer ones may never trigger on easy workloads.
    pub adapt_after_conflicts: u64,
    /// Enables bounded variable elimination at [`Solver::simplify`]
    /// checkpoints (default `true`).
    ///
    /// Eliminated variables are resolved out of the clause database and
    /// reconstructed in models on demand; variables referenced again later
    /// (incremental use) are transparently resurrected.  Disable to keep the
    /// clause database textually identical to what was added — the
    /// differential suites run both settings in lockstep.
    pub elim_vars: bool,
    /// Occurrence cap for elimination candidates (default 16): a variable
    /// with more than this many positive *or* negative problem-clause
    /// occurrences is skipped.
    ///
    /// Raising it lets elimination chew through denser variables at
    /// quadratically growing resolution cost per candidate.
    pub elim_occ_limit: usize,
    /// Clause-count growth budget of one elimination (default 0): a variable
    /// is only eliminated if the surviving resolvents number at most
    /// `occurrences + elim_grow`.
    ///
    /// 0 is the classic NiVER "never increase" rule; small positive values
    /// (SatELite-style) eliminate more variables in exchange for a denser
    /// database.
    pub elim_grow: usize,
    /// Length cap on resolvents produced by elimination (default 16): any
    /// longer resolvent vetoes the candidate.
    ///
    /// Long resolvents are poor propagators and bloat the arena; the cap
    /// keeps elimination focused on the short-clause structure (Tseitin
    /// definitions) it is best at removing.
    pub elim_clause_limit: usize,
    /// Initial saved phase of fresh variables (default `false`; phase saving
    /// overwrites it as the search proceeds).
    ///
    /// Flipping it steers the first descent toward the all-true corner
    /// instead — one of the cheapest ways to decorrelate portfolio members.
    pub default_phase: bool,
    /// Probability of replacing an activity-driven branching decision with a
    /// seeded pseudo-random one (0 disables random branching, the default).
    ///
    /// A few percent of random decisions breaks the determinism of pure
    /// VSIDS ties and diversifies portfolio members; large values degrade
    /// into random search.
    pub random_branch_freq: f64,
    /// Seed of the xorshift generator behind random branching.  Two
    /// configurations differing only in seed explore decorrelated decision
    /// sequences when `random_branch_freq > 0`.
    pub seed: u64,
    /// Fraction of the clause arena that may be wasted (tombstoned) before a
    /// garbage collection compacts it.  `0.0` forces a GC at every check
    /// point (a testing mode exercised by the differential suite);
    /// `f64::INFINITY` disables GC entirely.
    pub gc_wasted_ratio: f64,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            var_decay: VAR_DECAY,
            cla_decay: CLA_DECAY,
            restart_base: RESTART_BASE,
            restart_mode: RestartMode::Ema,
            restart_thr: RESTART_THR,
            restart_blk: RESTART_BLK,
            restart_step: RESTART_STEP,
            co_lbd_bound: CO_LBD_BOUND,
            tier2_lbd_bound: TIER2_LBD_BOUND,
            adapt_strategy: true,
            adapt_after_conflicts: ADAPT_AFTER_CONFLICTS,
            elim_vars: true,
            elim_occ_limit: ELIM_OCC_LIMIT,
            elim_grow: 0,
            elim_clause_limit: ELIM_CLAUSE_LIMIT,
            default_phase: false,
            random_branch_freq: 0.0,
            seed: 0x9E37_79B9_7F4A_7C15,
            gc_wasted_ratio: GC_WASTED_RATIO,
        }
    }
}

impl SolverConfig {
    /// A deterministic family of `n` deliberately diverse configurations for
    /// portfolio solving.  Index 0 is always the default configuration; later
    /// indices vary restart discipline (EMA vs Luby and their thresholds),
    /// clause-tier bounds, inprocessing, decay rates, initial phase and
    /// random branching so the portfolio explores different parts of the
    /// search space.
    pub fn portfolio(n: usize) -> Vec<SolverConfig> {
        (0..n)
            .map(|i| {
                let base = SolverConfig::default();
                match i % 6 {
                    0 => base,
                    1 => SolverConfig {
                        // Luby probing from the all-true corner.
                        restart_mode: RestartMode::Luby,
                        default_phase: true,
                        restart_base: 50,
                        ..base
                    },
                    2 => SolverConfig {
                        // Nervous EMA restarts chasing recent conflicts.
                        var_decay: 0.85,
                        restart_thr: 1.1,
                        restart_step: 30,
                        random_branch_freq: 0.02,
                        seed: base.seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                        ..base
                    },
                    3 => SolverConfig {
                        // Deep Luby runs with no inprocessing or adaptation:
                        // the conservative, trajectory-stable member.
                        restart_mode: RestartMode::Luby,
                        restart_base: 200,
                        var_decay: 0.99,
                        cla_decay: 0.995,
                        default_phase: true,
                        adapt_strategy: false,
                        elim_vars: false,
                        random_branch_freq: 0.05,
                        seed: base.seed ^ (i as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25),
                        ..base
                    },
                    4 => SolverConfig {
                        // Hoarder: wide CORE/TIER2 bounds keep far more
                        // lemmas; blocking kicks in early to protect deep
                        // descents.
                        co_lbd_bound: 5,
                        tier2_lbd_bound: 8,
                        restart_blk: 1.2,
                        ..base
                    },
                    _ => SolverConfig {
                        // Aggressive inprocessing with lazy restarts.
                        elim_grow: 8,
                        elim_occ_limit: 24,
                        restart_thr: 1.4,
                        default_phase: true,
                        seed: base.seed ^ (i as u64).wrapping_mul(0xD134_2543_DE82_EF95),
                        ..base
                    },
                }
            })
            .collect()
    }
}

/// Instance classification produced by adaptive strategy switching.
///
/// After [`SolverConfig::adapt_after_conflicts`] total conflicts the solver
/// inspects its own conflict/decision profile once and switches to the
/// matching strategy, adjusting restart, decay and tier parameters (see
/// [`Solver::strategy`]).  The lineage is splr/Glucose's `adapt_solver`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchStrategy {
    /// Warm-up: no classification has run yet.
    #[default]
    Initial,
    /// No marked profile; parameters stay at their configured values.
    Generic,
    /// Very few decisions per conflict (long propagation chains): keep more
    /// CORE clauses and decay variable activity slowly.
    LowDecisions,
    /// Long bursts of consecutive conflicts: switch to Luby restarts, which
    /// are immune to the LBD noise such bursts produce.
    HighSuccessive,
    /// Conflicts arrive scattered: restart later so descents can finish.
    LowSuccessive,
    /// Learnt clauses are predominantly glue: chase recent conflicts with a
    /// fast variable-activity decay.
    ManyGlues,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Identifier of an activation frame created by [`Solver::push_frame`].
///
/// A solver maintenance phase reported through the checkpoint hook
/// ([`Solver::set_checkpoint_hook`]).
///
/// Checkpoints are the places where the solver does bookkeeping work outside
/// the CDCL search proper — exactly the phases an observability layer wants
/// to attribute wall-clock to.  The solver itself never reads a clock for its
/// search decisions, so reporting durations here cannot perturb a search
/// trajectory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Checkpoint {
    /// Clause-arena garbage collection ([`Solver::collect_garbage`]).
    Gc,
    /// Tiered learnt-database reduction.
    ReduceDb,
    /// Level-0 simplification ([`Solver::simplify`]), including watcher
    /// pruning, variable-release processing and elimination.
    Simplify,
    /// Bounded variable elimination (a sub-phase of `Simplify`; its duration
    /// is included in the enclosing `Simplify` report too).
    Eliminate,
    /// A restart fired.  Restarts are instantaneous events, so the reported
    /// duration is always zero; hooks typically count them.
    Restart,
}

impl Checkpoint {
    /// A stable lowercase label for metric/trace names.
    pub fn label(self) -> &'static str {
        match self {
            Checkpoint::Gc => "gc",
            Checkpoint::ReduceDb => "reduce_db",
            Checkpoint::Simplify => "simplify",
            Checkpoint::Eliminate => "eliminate",
            Checkpoint::Restart => "restart",
        }
    }
}

/// The installed checkpoint observer (boxed so [`Solver`] keeps its derived
/// `Debug`/`Default` via this wrapper's manual impls).
#[derive(Default)]
struct HookSlot(Option<Box<dyn FnMut(Checkpoint, Duration) + Send>>);

impl std::fmt::Debug for HookSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self.0 {
            Some(_) => "HookSlot(installed)",
            None => "HookSlot(empty)",
        })
    }
}

/// A frame groups clauses that are only active while the frame's activation
/// literal is assumed (see [`Solver::solve_in`]).  Retiring a frame
/// ([`Solver::retire_frame`]) permanently disables its clauses *without*
/// discarding any learnt clauses: conflict clauses derived under the frame's
/// assumption carry the negated activation literal and become vacuously
/// satisfied, and [`Solver::simplify`] reclaims them lazily.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct FrameId(u32);

#[derive(Clone, Debug)]
struct Frame {
    lit: Lit,
    retired: bool,
    /// Variables allocated while this frame was the default clause frame.
    /// They only ever occur in the frame's clauses, so retiring the frame
    /// releases them for recycling ([`Solver::release_var`]).
    vars: Vec<Var>,
}

/// A CDCL SAT solver with incremental solving under assumptions.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Default)]
pub struct Solver {
    num_vars: usize,
    db: ClauseDb,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarOrderHeap,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<LBool>,
    assumptions: Vec<Lit>,
    conflict_budget: Option<u64>,
    propagation_budget: Option<u64>,
    budget_conflicts_start: u64,
    budget_propagations_start: u64,
    max_learnts: f64,
    stats: SolverStats,
    num_problem_clauses: usize,
    frames: Vec<Frame>,
    default_frame: Option<FrameId>,
    config: SolverConfig,
    rng_state: u64,
    interrupt: Option<Arc<AtomicBool>>,
    /// Spent variables available for reuse by [`Solver::new_var`].
    free_vars: Vec<Var>,
    /// Variables released ([`Solver::release_var`]) but not yet proven
    /// unreferenced; the next [`Solver::simplify`] reclaims them.
    pending_release: Vec<Var>,
    /// `released[v]` — is `v` in `free_vars` or `pending_release`?  Guards
    /// against double releases.
    released: Vec<bool>,
    /// Restart pacing (Luby budgets or LBD EMAs), re-armed per solve call.
    restart: RestartState,
    /// Level-stamp scratch for allocation-free LBD computation: level `l`
    /// was counted iff `lbd_stamp[l] == lbd_stamp_counter`.
    lbd_stamp: Vec<u32>,
    lbd_stamp_counter: u32,
    /// Reusable candidate buffer of `reduce_db` (activity, LBD, clause).
    reduce_scratch: Vec<(f32, u32, ClauseRef)>,
    /// Adaptive classification result; `Initial` until the warm-up budget is
    /// spent ([`SolverConfig::adapt_after_conflicts`]).
    strategy: SearchStrategy,
    /// Consecutive conflicts without an intervening decision, and the
    /// longest such streak — one of the classification features.
    conflict_streak: u64,
    max_conflict_streak: u64,
    /// Sum of learnt-clause LBDs, for the average-LBD classification feature.
    lbd_sum: u64,
    /// `frozen[v]` — the caller declared `v` part of its interface
    /// ([`Solver::set_frozen`]); bounded variable elimination must keep it.
    frozen: Vec<bool>,
    /// `eliminated[v]` — `v` was resolved out by bounded variable
    /// elimination; its defining clauses live on `elim_stack`.
    eliminated: Vec<bool>,
    /// `elim_skip[v]` — `v` was eliminated and later resurrected; never
    /// eliminate it again (prevents eliminate/resurrect thrash).
    elim_skip: Vec<bool>,
    /// `frame_tagged[v]` — `v` belongs to an activation frame (the
    /// activation variable itself or a variable allocated under a default
    /// frame); excluded from elimination because frame retirement owns its
    /// lifecycle.
    frame_tagged: Vec<bool>,
    /// Reconstruction stack of bounded variable elimination: for each
    /// eliminated variable, the original clauses it was resolved out of, in
    /// elimination order (model extension walks it in reverse).
    elim_stack: Vec<eliminate::ElimRecord>,
    /// Maintenance-phase observer ([`Solver::set_checkpoint_hook`]).  The
    /// clock is only read while a hook is installed.
    checkpoint_hook: HookSlot,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESTART_BASE: u64 = 100;
/// Default [`SolverConfig::restart_thr`] (Glucose forces at fast/slow ≈ 1.25).
const RESTART_THR: f64 = 1.25;
/// Default [`SolverConfig::restart_blk`] (Glucose blocks at 1.4× the trail
/// average).
const RESTART_BLK: f64 = 1.4;
/// Default [`SolverConfig::restart_step`] (Glucose's 50-entry LBD window).
const RESTART_STEP: u64 = 50;
/// Default [`SolverConfig::co_lbd_bound`] (the Chan-Seok CORE bound).
const CO_LBD_BOUND: u32 = 3;
/// Default [`SolverConfig::tier2_lbd_bound`].
const TIER2_LBD_BOUND: u32 = 6;
/// Default [`SolverConfig::adapt_after_conflicts`].
const ADAPT_AFTER_CONFLICTS: u64 = 10_000;
/// Default [`SolverConfig::elim_occ_limit`].
const ELIM_OCC_LIMIT: usize = 16;
/// Default [`SolverConfig::elim_clause_limit`].
const ELIM_CLAUSE_LIMIT: usize = 16;
/// Default [`SolverConfig::gc_wasted_ratio`], following the MiniSat lineage
/// (batsat uses 0.20): compact once a fifth of the arena is tombstones.
const GC_WASTED_RATIO: f64 = 0.20;

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver using the given search configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        let rng_state = config.seed | 1;
        let restart = RestartState::new(config.restart_mode, config.restart_base);
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            max_learnts: 1000.0,
            db: ClauseDb::new(),
            order: VarOrderHeap::new(),
            config,
            rng_state,
            restart,
            ..Solver::default()
        }
    }

    /// The search configuration this solver was created with.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Installs (or clears) a shared interrupt flag.
    ///
    /// While the flag reads `true`, any in-flight or future solve call
    /// returns [`SolveResult::Unknown`] at its next check point.  This is the
    /// cancellation mechanism of the parallel attack engine: one worker
    /// confirming a key flips the flag and every other solver backs out
    /// promptly, regardless of budgets.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Installs (or clears) a maintenance-phase observer.
    ///
    /// The hook is called once per completed [`Checkpoint`] with the phase's
    /// wall-clock duration (zero for instantaneous events like restarts).
    /// The solver never consults a clock for search decisions — timing is
    /// only measured while a hook is installed, and the hook sees phases
    /// *after* they ran — so installing one cannot change a solve trajectory.
    pub fn set_checkpoint_hook(
        &mut self,
        hook: Option<Box<dyn FnMut(Checkpoint, Duration) + Send>>,
    ) {
        self.checkpoint_hook = HookSlot(hook);
    }

    /// The phase start time, read only when someone is listening.
    fn checkpoint_start(&self) -> Option<Instant> {
        self.checkpoint_hook.0.is_some().then(Instant::now)
    }

    /// Reports a finished phase to the hook (no-op when `start` is `None`,
    /// i.e. no hook was installed when the phase began).
    fn fire_checkpoint(&mut self, which: Checkpoint, start: Option<Instant>) {
        if let (Some(start), Some(hook)) = (start, self.checkpoint_hook.0.as_mut()) {
            hook(which, start.elapsed());
        }
    }

    /// Reports an instantaneous event (zero duration) to the hook.
    fn fire_checkpoint_event(&mut self, which: Checkpoint) {
        if let Some(hook) = self.checkpoint_hook.0.as_mut() {
            hook(which, Duration::ZERO);
        }
    }

    fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Creates a solver preloaded with all clauses of `cnf`.
    pub fn from_cnf(cnf: &CnfFormula) -> Solver {
        let mut solver = Solver::new();
        solver.ensure_vars(cnf.num_vars());
        for clause in cnf.iter() {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Allocates a variable: recycles one from the free list when available
    /// (see [`Solver::release_var`]), otherwise grows the variable space.
    ///
    /// While a default frame is active ([`Solver::set_default_frame`]), the
    /// variable is tagged to that frame and automatically released when the
    /// frame retires — this is how per-generation Tseitin variables are
    /// reclaimed without the encoding passes knowing about recycling.
    pub fn new_var(&mut self) -> Var {
        let var = match self.free_vars.pop() {
            Some(var) => {
                self.released[var.index()] = false;
                self.reset_var(var);
                var
            }
            None => self.fresh_var(),
        };
        if let Some(frame) = self.default_frame {
            self.frames[frame.0 as usize].vars.push(var);
            self.frame_tagged[var.index()] = true;
        }
        var
    }

    /// Grows the variable space by one, bypassing the free list.
    fn fresh_var(&mut self) -> Var {
        let var = Var::from_index(self.num_vars);
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assigns.push(LBool::Undef);
        self.phase.push(self.config.default_phase);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.released.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.elim_skip.push(false);
        self.frame_tagged.push(false);
        self.order.grow_to(self.num_vars);
        self.order.insert(var, &self.activity);
        var
    }

    /// Restores a recycled variable to the pristine state `fresh_var` creates.
    fn reset_var(&mut self, var: Var) {
        debug_assert_eq!(
            self.assigns[var.index()],
            LBool::Undef,
            "recycled variables are unassigned at level 0"
        );
        self.phase[var.index()] = self.config.default_phase;
        self.reason[var.index()] = None;
        self.level[var.index()] = 0;
        self.activity[var.index()] = 0.0;
        self.seen[var.index()] = false;
        self.frozen[var.index()] = false;
        self.eliminated[var.index()] = false;
        self.elim_skip[var.index()] = false;
        self.frame_tagged[var.index()] = false;
        if !self.order.contains(var) {
            self.order.insert(var, &self.activity);
        }
    }

    /// Ensures the variables with indices `0..n` exist and are usable,
    /// allocating as needed.
    ///
    /// Released variables below `n` are reclaimed from the free list so the
    /// whole index range is safe to reference (this is the bulk-load path of
    /// [`Solver::from_cnf`]/[`Solver::add_formula`], which address variables
    /// by index).
    pub fn ensure_vars(&mut self, n: usize) {
        if !self.free_vars.is_empty() || !self.pending_release.is_empty() {
            let claimed: Vec<Var> = self
                .free_vars
                .iter()
                .copied()
                .filter(|v| v.index() < n)
                .collect();
            self.free_vars.retain(|v| v.index() >= n);
            self.pending_release.retain(|v| v.index() >= n);
            for var in claimed {
                self.released[var.index()] = false;
                self.reset_var(var);
            }
            for i in 0..n.min(self.released.len()) {
                self.released[i] = false;
            }
        }
        while self.num_vars < n {
            self.fresh_var();
        }
    }

    /// Queues a spent variable for recycling.
    ///
    /// The variable is reclaimed by the next [`Solver::simplify`] once no
    /// live clause mentions it (live *learnt* clauses mentioning it are
    /// redundant and get dropped to unblock the reclaim; a live *problem*
    /// clause keeps it pending).  After reclaiming, [`Solver::new_var`] hands
    /// the variable out again, so callers must not reference a released
    /// variable in later clauses or assumptions.
    ///
    /// [`Solver::retire_frame`] calls this automatically for the frame's
    /// activation variable and every variable allocated while the frame was
    /// the default clause frame — the variable-recycling counterpart of the
    /// frame's clause reclamation.
    pub fn release_var(&mut self, var: Var) {
        debug_assert!(var.index() < self.num_vars, "unknown variable");
        if !self.released[var.index()] {
            self.released[var.index()] = true;
            self.pending_release.push(var);
        }
    }

    /// Returns the number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of problem (non-learnt) clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.num_problem_clauses
    }

    /// Returns the work counters accumulated so far.
    pub fn stats(&self) -> SolverStats {
        let mut stats = self.stats;
        stats.learnt_clauses = self.db.num_learnt() as u64;
        stats.core_clauses = self.db.tier_count(Tier::Core) as u64;
        stats.tier2_clauses = self.db.tier_count(Tier::Tier2) as u64;
        stats.local_clauses = self.db.tier_count(Tier::Local) as u64;
        stats.arena_bytes = (self.db.arena_words() * 4) as u64;
        stats.wasted_bytes = (self.db.wasted_words() * 4) as u64;
        stats.ema_lbd_fast_milli = self.restart.ema_fast_milli();
        stats.ema_lbd_slow_milli = self.restart.ema_slow_milli();
        stats
    }

    /// The adaptive classification of this solver's workload, or
    /// [`SearchStrategy::Initial`] while the warm-up budget
    /// ([`SolverConfig::adapt_after_conflicts`]) is still being spent.
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy
    }

    /// Marks a variable as part of the caller's interface (or clears the
    /// mark): frozen variables are never removed by bounded variable
    /// elimination, so their model values and future mentions stay cheap.
    ///
    /// Freezing is advisory-but-recommended for variables the caller will
    /// keep referencing (keys, inputs, outputs of an encoded circuit):
    /// referencing a non-frozen eliminated variable still works, but pays a
    /// resurrection (the variable's original clauses are re-added).
    ///
    /// # Panics
    ///
    /// Panics if the variable was never created.
    pub fn set_frozen(&mut self, var: Var, frozen: bool) {
        assert!(var.index() < self.num_vars, "unknown variable");
        self.frozen[var.index()] = frozen;
        if frozen && self.eliminated[var.index()] {
            self.resurrect_var(var);
        }
    }

    /// Whether [`Solver::set_frozen`] marked this variable.
    pub fn is_frozen(&self, var: Var) -> bool {
        self.frozen[var.index()]
    }

    /// Whether bounded variable elimination currently has this variable
    /// resolved out of the clause database.  Eliminated variables still get
    /// model values ([`Solver::value`]) via reconstruction.
    pub fn is_eliminated(&self, var: Var) -> bool {
        self.eliminated[var.index()]
    }

    /// Number of variables currently waiting in the recycling free list.
    pub fn free_var_count(&self) -> usize {
        self.free_vars.len()
    }

    /// Limits the number of conflicts the *next* solve call may spend.
    ///
    /// When the budget is exhausted, [`Solver::solve`] returns
    /// [`SolveResult::Unknown`].  Pass `None` to remove the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Limits the number of propagations the *next* solve call may spend.
    pub fn set_propagation_budget(&mut self, budget: Option<u64>) {
        self.propagation_budget = budget;
    }

    /// Adds a clause over already-created variables.
    ///
    /// Duplicate literals are removed and tautological clauses are ignored.
    /// Adding the empty clause makes the solver permanently unsatisfiable —
    /// unless a default frame is active ([`Solver::set_default_frame`]), in
    /// which case the clause is scoped to that frame and an empty clause only
    /// poisons the frame (its activation becomes unsatisfiable) while the
    /// solver itself stays usable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that was never created.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        match self.default_frame {
            Some(frame) => self.add_clause_in(frame, lits),
            None => self.add_clause_root(lits),
        }
    }

    /// Adds a clause at the root, ignoring any active default frame.
    fn add_clause_root<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        let _ = self.add_clause_root_vec(clause);
    }

    /// [`Solver::add_clause_root`] returning the allocated clause when the
    /// level-0-simplified clause has two or more literals (the handle the
    /// variable eliminator needs to index its occurrence lists).
    fn add_clause_root_vec(&mut self, mut clause: Vec<Lit>) -> Option<ClauseRef> {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return None;
        }
        for lit in &clause {
            assert!(
                lit.var().index() < self.num_vars,
                "literal {lit} references unknown variable"
            );
        }
        // A clause referencing an eliminated variable re-opens it: put the
        // variable's original clauses back (they imply every resolvent that
        // replaced them, so re-adding restores exact equivalence) before the
        // new clause lands.
        if clause.iter().any(|l| self.eliminated[l.var().index()]) {
            for lit in &clause {
                let var = lit.var();
                if self.eliminated[var.index()] {
                    self.resurrect_var(var);
                }
            }
            if !self.ok {
                return None;
            }
        }
        clause.sort_unstable();
        clause.dedup();
        // Drop clauses that are tautological or already satisfied at level 0;
        // drop literals already false at level 0.
        let mut simplified: Vec<Lit> = Vec::with_capacity(clause.len());
        let mut satisfied = false;
        for (i, &lit) in clause.iter().enumerate() {
            if i + 1 < clause.len() && clause[i + 1] == !lit {
                satisfied = true;
                break;
            }
            match self.lit_value(lit) {
                LBool::True if self.level[lit.var().index()] == 0 => {
                    satisfied = true;
                    break;
                }
                LBool::False if self.level[lit.var().index()] == 0 => continue,
                _ => simplified.push(lit),
            }
        }
        if satisfied {
            return None;
        }
        self.num_problem_clauses += 1;
        match simplified.len() {
            0 => {
                self.ok = false;
                None
            }
            1 => {
                if !self.enqueue_checked(simplified[0], None) || self.propagate().is_some() {
                    self.ok = false;
                }
                None
            }
            _ => {
                let cref = self.db.alloc(&simplified, false);
                self.attach_clause(cref);
                Some(cref)
            }
        }
    }

    /// Adds every clause of a [`CnfFormula`], creating variables as needed.
    pub fn add_formula(&mut self, cnf: &CnfFormula) {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.iter() {
            self.add_clause(clause.iter().copied());
        }
    }

    // ------------------------------------------------------------------
    // Activation frames: assumption-scoped clause groups.
    // ------------------------------------------------------------------

    /// Creates a new activation frame and returns its identifier.
    ///
    /// Clauses added with [`Solver::add_clause_in`] are only enforced by
    /// solve calls that activate the frame ([`Solver::solve_in`]); plain
    /// [`Solver::solve`]/[`Solver::solve_with`] calls leave them dormant.
    pub fn push_frame(&mut self) -> FrameId {
        // The activation variable belongs to the *new* frame (released on its
        // retirement), never to whatever default frame is currently active.
        let caller_default = self.default_frame.take();
        let lit = Lit::positive(self.new_var());
        self.default_frame = caller_default;
        // Frame lifecycle owns the activation variable: elimination must
        // never touch it.
        self.frame_tagged[lit.var().index()] = true;
        let id = FrameId(self.frames.len() as u32);
        self.frames.push(Frame {
            lit,
            retired: false,
            vars: Vec::new(),
        });
        id
    }

    /// The activation literal of a frame, for callers that want to mix frame
    /// activation with their own assumption vectors.
    ///
    /// # Panics
    ///
    /// Panics if the frame has been retired.
    pub fn frame_lit(&self, frame: FrameId) -> Lit {
        let f = &self.frames[frame.0 as usize];
        assert!(!f.retired, "frame {frame:?} has been retired");
        f.lit
    }

    /// Returns `true` if [`Solver::retire_frame`] has been called on `frame`.
    pub fn frame_retired(&self, frame: FrameId) -> bool {
        self.frames[frame.0 as usize].retired
    }

    /// Adds a clause scoped to `frame`: it is enforced only while the frame
    /// is activated.  The explicit frame wins over any active default frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame has been retired or a literal references an
    /// unknown variable.
    pub fn add_clause_in<I>(&mut self, frame: FrameId, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let activation = self.frame_lit(frame);
        let clause: Vec<Lit> = lits.into_iter().chain([!activation]).collect();
        self.add_clause_root(clause);
    }

    /// Routes every following plain [`Solver::add_clause`] call into `frame`
    /// (or back to the root for `None`).
    ///
    /// This is how whole encoding passes — code that was written against the
    /// plain `add_clause` API and knows nothing about frames — are scoped to
    /// a retireable frame without threading a frame parameter through every
    /// helper.  Explicit [`Solver::add_clause_in`] calls are unaffected, and
    /// [`Solver::retire_frame`] on the default frame clears the default.
    ///
    /// # Panics
    ///
    /// Panics if the frame has been retired.
    pub fn set_default_frame(&mut self, frame: Option<FrameId>) {
        if let Some(f) = frame {
            // `frame_lit` asserts the frame is still live.
            let _ = self.frame_lit(f);
        }
        self.default_frame = frame;
    }

    /// The frame plain [`Solver::add_clause`] calls currently route into.
    pub fn default_frame(&self) -> Option<FrameId> {
        self.default_frame
    }

    /// Permanently disables all clauses of `frame` (logical deletion).
    ///
    /// The activation literal is fixed to false, so the frame's clauses — and
    /// every learnt clause derived under the frame's assumption — become
    /// vacuously satisfied.  Learnt clauses that do not depend on the frame
    /// are untouched, which is the whole point of frames: retiring temporary
    /// constraints keeps the solver's accumulated knowledge.  Call
    /// [`Solver::simplify`] afterwards to reclaim the memory of the
    /// now-satisfied clauses — and to recycle the frame's variables: the
    /// activation variable and every variable allocated while the frame was
    /// the default clause frame are queued for [`Solver::release_var`].
    pub fn retire_frame(&mut self, frame: FrameId) {
        let f = &mut self.frames[frame.0 as usize];
        if f.retired {
            return;
        }
        f.retired = true;
        let lit = f.lit;
        let vars = std::mem::take(&mut f.vars);
        if self.default_frame == Some(frame) {
            self.default_frame = None;
        }
        self.add_clause_root([!lit]);
        for var in vars {
            self.release_var(var);
        }
        self.release_var(lit.var());
    }

    /// Decides satisfiability with the given frames activated, under extra
    /// assumptions.
    ///
    /// # Panics
    ///
    /// Panics if any of the frames has been retired.
    pub fn solve_in(&mut self, frames: &[FrameId], assumptions: &[Lit]) -> SolveResult {
        let mut all: Vec<Lit> = frames.iter().map(|&f| self.frame_lit(f)).collect();
        all.extend_from_slice(assumptions);
        self.solve_with(&all)
    }

    /// Level-0 clause-database reduction: removes clauses that are already
    /// satisfied by the top-level assignment, compacts the watch lists,
    /// reclaims released variables into the recycling free list, and runs a
    /// clause-arena garbage collection when enough bytes are wasted.
    ///
    /// This is what reclaims retired frames ([`Solver::retire_frame`]) and
    /// constraints subsumed by unit clauses, so long-running incremental
    /// sessions do not grow without bound.  Safe to call between solve calls;
    /// must not be called while a solve is in progress.
    pub fn simplify(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return;
        }
        let started = self.checkpoint_start();
        if self.propagate().is_some() {
            self.ok = false;
            self.fire_checkpoint(Checkpoint::Simplify, started);
            return;
        }
        let satisfied_at_root =
            |solver: &Solver, cref: ClauseRef| {
                solver.db.lits(cref).iter().any(|&l| {
                    solver.lit_value(l) == LBool::True && solver.level[l.var().index()] == 0
                })
            };
        let victims: Vec<ClauseRef> = self
            .db
            .live_refs()
            .filter(|&cref| satisfied_at_root(self, cref))
            .collect();
        for cref in victims {
            self.delete_clause(cref);
        }
        self.prune_watchers();
        self.process_releases();
        let elim_started = self.checkpoint_start();
        self.eliminate_vars();
        self.fire_checkpoint(Checkpoint::Eliminate, elim_started);
        self.db.compact_live();
        self.maybe_gc();
        self.fire_checkpoint(Checkpoint::Simplify, started);
    }

    /// Tombstones a clause, dropping any level-0 reason reference to it and
    /// keeping the problem-clause count in step.
    fn delete_clause(&mut self, cref: ClauseRef) {
        // A satisfied clause may still be recorded as the reason of a
        // level-0 assignment; level-0 assignments are permanent, so the
        // reason is never consulted again and can be dropped.
        let first = self.db.lit(cref, 0);
        if self.reason[first.var().index()] == Some(cref) {
            self.reason[first.var().index()] = None;
        }
        if !self.db.is_learnt(cref) {
            self.num_problem_clauses = self.num_problem_clauses.saturating_sub(1);
        }
        self.db.delete(cref);
    }

    fn prune_watchers(&mut self) {
        for watchers in &mut self.watches {
            let db = &self.db;
            watchers.retain(|w| !db.is_deleted(w.cref));
        }
    }

    /// Reclaims pending-released variables ([`Solver::release_var`]) whose
    /// last live mention is gone.  Runs at decision level 0 (from
    /// [`Solver::simplify`]).
    ///
    /// Live *learnt* clauses mentioning a pending variable are deleted first:
    /// they are redundant by definition, and without this step a binary
    /// learnt clause (never touched by `reduce_db`) could pin a spent Tseitin
    /// variable forever.  A live *problem* clause mentioning the variable
    /// keeps it pending — the caller released it prematurely.
    ///
    /// A reclaimed variable that is still assigned at level 0 (the retired
    /// frame's activation variable, fixed false by [`Solver::retire_frame`])
    /// is unassigned: at this point no live clause mentions it, every clause
    /// deleted because of its assignment itself mentioned it, and no learnt
    /// clause produced while it was assigned can depend on it (no clause
    /// mentioning it could propagate), so dropping the assignment only
    /// forgets information.
    fn process_releases(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.pending_release.is_empty() {
            return;
        }
        let mut pending = vec![false; self.num_vars];
        for v in &self.pending_release {
            pending[v.index()] = true;
        }
        let db = &self.db;
        let blockers: Vec<ClauseRef> = db
            .learnt_refs()
            .filter(|&c| db.lits(c).iter().any(|l| pending[l.var().index()]))
            .collect();
        let pruned_any = !blockers.is_empty();
        for cref in blockers {
            self.delete_clause(cref);
        }
        if pruned_any {
            self.prune_watchers();
        }

        let mut mentioned = vec![false; self.num_vars];
        for cref in self.db.live_refs() {
            for l in self.db.lits(cref) {
                mentioned[l.var().index()] = true;
            }
        }
        // The elimination reconstruction stack references variables outside
        // the live clause set; reclaiming one would let `new_var` hand it out
        // with a different meaning while stored clauses still mention it.
        for record in &self.elim_stack {
            mentioned[record.var.index()] = true;
            for clause in &record.clauses {
                for l in clause {
                    mentioned[l.var().index()] = true;
                }
            }
        }

        let pending_vars = std::mem::take(&mut self.pending_release);
        let mut unassign: Vec<Var> = Vec::new();
        for var in pending_vars {
            if mentioned[var.index()] {
                self.pending_release.push(var);
                continue;
            }
            if self.assigns[var.index()] != LBool::Undef {
                debug_assert_eq!(self.level[var.index()], 0);
                unassign.push(var);
            }
            self.free_vars.push(var);
            self.stats.recycled_vars += 1;
        }
        if !unassign.is_empty() {
            let mut drop = vec![false; self.num_vars];
            for v in &unassign {
                drop[v.index()] = true;
            }
            self.trail.retain(|l| !drop[l.var().index()]);
            self.qhead = self.trail.len();
            for var in unassign {
                self.assigns[var.index()] = LBool::Undef;
                self.reason[var.index()] = None;
                if !self.order.contains(var) {
                    self.order.insert(var, &self.activity);
                }
            }
        }
    }

    /// Compacts the clause arena when the wasted fraction exceeds
    /// [`SolverConfig::gc_wasted_ratio`].
    fn maybe_gc(&mut self) {
        let ratio = self.config.gc_wasted_ratio;
        if ratio == 0.0 {
            // Forced testing mode: relocate at every check point, waste or no
            // waste, so the differential suite exercises the remap machinery
            // as hostilely as possible.
            self.collect_garbage();
        } else if ratio.is_finite()
            && self.db.wasted_words() > 0
            && self.db.wasted_words() as f64 >= ratio * self.db.arena_words() as f64
        {
            self.collect_garbage();
        }
    }

    /// Unconditionally compacts the clause arena: live clauses move into a
    /// fresh contiguous allocation and every watch-list and reason reference
    /// is remapped.  Normally triggered automatically (see
    /// [`SolverConfig::gc_wasted_ratio`]); public for callers that want to
    /// release memory at a deterministic point.
    pub fn collect_garbage(&mut self) {
        let started = self.checkpoint_start();
        let map = self.db.collect_garbage();
        for watchers in &mut self.watches {
            watchers.retain_mut(|w| match map.remap(w.cref) {
                Some(moved) => {
                    w.cref = moved;
                    true
                }
                None => false,
            });
        }
        for (index, slot) in self.reason.iter_mut().enumerate() {
            if let Some(cref) = *slot {
                *slot = map.remap(cref);
                debug_assert!(
                    slot.is_some() || self.assigns[index] == LBool::Undef || self.level[index] == 0,
                    "a reason above level 0 must survive GC"
                );
            }
        }
        self.stats.gc_runs += 1;
        self.fire_checkpoint(Checkpoint::Gc, started);
    }

    /// Decides satisfiability of the clauses added so far.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Decides satisfiability under the given assumptions.
    ///
    /// Assumption literals are forced to be true for this call only; the
    /// learnt clauses remain valid for later calls, which makes repeated
    /// solving cheap (incremental SAT).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        if !self.ok {
            return SolveResult::Unsat;
        }
        for lit in assumptions {
            assert!(
                lit.var().index() < self.num_vars,
                "assumption {lit} references unknown variable"
            );
        }
        self.assumptions = assumptions.to_vec();
        // Assuming an eliminated variable re-opens it, exactly like adding a
        // clause over it would.
        for i in 0..self.assumptions.len() {
            let var = self.assumptions[i].var();
            if self.eliminated[var.index()] {
                self.resurrect_var(var);
            }
        }
        if !self.ok {
            self.assumptions.clear();
            return SolveResult::Unsat;
        }
        self.budget_conflicts_start = self.stats.conflicts;
        self.budget_propagations_start = self.stats.propagations;
        self.max_learnts = (self.num_problem_clauses as f64 / 3.0).max(1000.0);
        self.model.clear();
        self.restart
            .reset_for_solve(self.config.restart_mode, self.config.restart_base);

        let result = loop {
            match self.search() {
                Some(result) => break result,
                None => {
                    if self.budget_exhausted() {
                        break SolveResult::Unknown;
                    }
                }
            }
        };
        self.cancel_until(0);
        self.assumptions.clear();
        result
    }

    /// Returns the model value of a literal after a successful solve.
    ///
    /// Returns `None` if the last solve was not [`SolveResult::Sat`] or the
    /// variable did not exist at that time.
    pub fn value(&self, lit: Lit) -> Option<bool> {
        self.model
            .get(lit.var().index())
            .and_then(|v| v.to_bool())
            .map(|v| v == lit.polarity())
    }

    /// Returns the model value of a variable after a successful solve.
    pub fn var_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).and_then(|v| v.to_bool())
    }

    /// Returns the complete model (indexed by variable) after a successful solve.
    pub fn model(&self) -> &[LBool] {
        &self.model
    }

    /// Returns `false` if the clause set is already known to be unsatisfiable
    /// regardless of assumptions.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    // ------------------------------------------------------------------
    // Internal machinery.
    // ------------------------------------------------------------------

    fn budget_exhausted(&self) -> bool {
        if self.interrupted() {
            return true;
        }
        if let Some(limit) = self.conflict_budget {
            if self.stats.conflicts - self.budget_conflicts_start >= limit {
                return true;
            }
        }
        if let Some(limit) = self.propagation_budget {
            if self.stats.propagations - self.budget_propagations_start >= limit {
                return true;
            }
        }
        false
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn lit_value(&self, lit: Lit) -> LBool {
        match self.assigns[lit.var().index()] {
            LBool::Undef => LBool::Undef,
            value => {
                let b = value == LBool::True;
                LBool::from_bool(b == lit.polarity())
            }
        }
    }

    fn attach_clause(&mut self, cref: ClauseRef) {
        debug_assert!(self.db.len(cref) >= 2);
        let l0 = self.db.lit(cref, 0);
        let l1 = self.db.lit(cref, 1);
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    fn enqueue_checked(&mut self, lit: Lit, reason: Option<ClauseRef>) -> bool {
        match self.lit_value(lit) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                self.unchecked_enqueue(lit, reason);
                true
            }
        }
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let var = lit.var();
        self.assigns[var.index()] = LBool::from_bool(lit.polarity());
        self.reason[var.index()] = reason;
        self.level[var.index()] = self.decision_level() as u32;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching `!p` (stored under index `p.code()` by
            // `attach_clause`) must find a new watch or propagate.
            let false_lit = !p;
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut keep = 0usize;
            let mut i = 0usize;
            'watchers: while i < watchers.len() {
                let w = watchers[i];
                i += 1;
                if self.lit_value(w.blocker) == LBool::True {
                    watchers[keep] = w;
                    keep += 1;
                    continue;
                }
                let cref = w.cref;
                if self.db.is_deleted(cref) {
                    continue;
                }
                if self.db.lit(cref, 0) == false_lit {
                    self.db.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.db.lit(cref, 1), false_lit);
                let first = self.db.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    watchers[keep] = Watcher {
                        cref,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                let len = self.db.len(cref);
                for k in 2..len {
                    let lk = self.db.lit(cref, k);
                    if self.lit_value(lk) != LBool::False {
                        self.db.swap_lits(cref, 1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under the current assignment.
                watchers[keep] = Watcher {
                    cref,
                    blocker: first,
                };
                keep += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    while i < watchers.len() {
                        watchers[keep] = watchers[i];
                        keep += 1;
                        i += 1;
                    }
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            watchers.truncate(keep);
            self.watches[p.code()] = watchers;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let trail_start = self.trail_lim[target_level];
        for idx in (trail_start..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let var = lit.var();
            self.assigns[var.index()] = LBool::Undef;
            self.phase[var.index()] = lit.polarity();
            if !self.order.contains(var) {
                self.order.insert(var, &self.activity);
            }
        }
        self.trail.truncate(trail_start);
        self.trail_lim.truncate(target_level);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(var, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let bumped = self.db.activity(cref) + self.cla_inc as f32;
        self.db.set_activity(cref, bumped);
        if bumped > 1e20 {
            let refs: Vec<ClauseRef> = self.db.learnt_refs().collect();
            for r in refs {
                let rescaled = self.db.activity(r) * 1e-20;
                self.db.set_activity(r, rescaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.cla_decay;
    }

    /// xorshift64* step for random branching; deterministic per seed.
    fn next_random(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Picks a random unassigned variable, if random branching is enabled and
    /// the dice land that way.
    fn pick_random_var(&mut self) -> Option<Var> {
        if self.config.random_branch_freq <= 0.0 || self.num_vars == 0 {
            return None;
        }
        let roll = (self.next_random() >> 11) as f64 / (1u64 << 53) as f64;
        if roll >= self.config.random_branch_freq {
            return None;
        }
        let index = (self.next_random() % self.num_vars as u64) as usize;
        let var = Var::from_index(index);
        (self.assigns[index] == LBool::Undef && !self.eliminated[index]).then_some(var)
    }

    /// First-UIP conflict analysis.  Returns the learnt clause (asserting
    /// literal first) and the level to backtrack to.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, usize) {
        let current_level = self.decision_level() as u32;
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::from_index(0))]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            if self.db.is_learnt(confl) {
                self.notice_clause_use(confl);
            }
            let start = usize::from(p.is_some());
            // Indexed access instead of copying the literals out: the arena
            // hands literals back by value, so the conflict walk allocates
            // nothing.
            for position in start..self.db.len(confl) {
                let q = self.db.lit(confl, position);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[lit.var().index()].expect("resolved literal must have a reason");
        }
        learnt[0] = !p.expect("conflict analysis found a UIP");

        // Cheap clause minimisation: drop literals whose reason clause is
        // entirely covered by other seen literals.
        let minimized: Vec<Lit> = learnt
            .iter()
            .enumerate()
            .filter(|&(i, &lit)| i == 0 || !self.literal_redundant(lit))
            .map(|(_, &lit)| lit)
            .collect();

        // Clear the `seen` flags for the literals that remain marked.
        for lit in learnt.iter().skip(1) {
            self.seen[lit.var().index()] = false;
        }
        let mut learnt = minimized;

        // Compute backtrack level and move a literal of that level to index 1.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_idx = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_idx].var().index()] {
                    max_idx = i;
                }
            }
            learnt.swap(1, max_idx);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, backtrack_level)
    }

    fn literal_redundant(&self, lit: Lit) -> bool {
        match self.reason[lit.var().index()] {
            None => false,
            Some(cref) => self
                .db
                .lits(cref)
                .iter()
                .skip(1)
                .all(|&q| self.seen[q.var().index()] || self.level[q.var().index()] == 0),
        }
    }

    /// Records the learnt clause from conflict analysis and returns its LBD
    /// (1 for unit clauses), which feeds the restart EMAs.
    fn record_learnt(&mut self, learnt: Vec<Lit>) -> u32 {
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.unchecked_enqueue(asserting, None);
            1
        } else {
            let lbd = self.compute_lbd(&learnt);
            let cref = self.db.alloc(&learnt, true);
            self.db.set_lbd(cref, lbd);
            let tier = if lbd <= self.config.co_lbd_bound {
                Tier::Core
            } else if lbd <= self.config.tier2_lbd_bound {
                Tier::Tier2
            } else {
                Tier::Local
            };
            if tier != Tier::Local {
                self.db.set_tier(cref, tier);
            }
            self.attach_clause(cref);
            self.bump_clause(cref);
            self.unchecked_enqueue(asserting, Some(cref));
            lbd
        }
    }

    /// Advances the level-stamp epoch, growing/clearing the scratch as
    /// needed, and returns the fresh stamp value.
    fn next_lbd_stamp(&mut self) -> u32 {
        if self.lbd_stamp.len() <= self.num_vars {
            // Decision levels never exceed the variable count.
            self.lbd_stamp.resize(self.num_vars + 1, 0);
        }
        self.lbd_stamp_counter = self.lbd_stamp_counter.wrapping_add(1);
        if self.lbd_stamp_counter == 0 {
            self.lbd_stamp.fill(0);
            self.lbd_stamp_counter = 1;
        }
        self.lbd_stamp_counter
    }

    /// Literal block distance of `lits` under the current assignment —
    /// distinct decision levels, counted allocation-free via level stamps.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        let stamp = self.next_lbd_stamp();
        let mut distinct = 0u32;
        for l in lits {
            let level = self.level[l.var().index()] as usize;
            if self.lbd_stamp[level] != stamp {
                self.lbd_stamp[level] = stamp;
                distinct += 1;
            }
        }
        distinct
    }

    /// [`Solver::compute_lbd`] over a stored clause, by indexed access (the
    /// arena cannot be borrowed as a slice while the stamps are written).
    fn clause_lbd(&mut self, cref: ClauseRef) -> u32 {
        let stamp = self.next_lbd_stamp();
        let mut distinct = 0u32;
        for position in 0..self.db.len(cref) {
            let level = self.level[self.db.lit(cref, position).var().index()] as usize;
            if self.lbd_stamp[level] != stamp {
                self.lbd_stamp[level] = stamp;
                distinct += 1;
            }
        }
        distinct
    }

    /// Bookkeeping when a learnt clause participates in conflict analysis:
    /// bump its activity, mark it used (which shields TIER2 members at the
    /// next reduction) and recompute its LBD, promoting it on improvement —
    /// the Glucose "LBD updated during conflict analysis" rule.
    fn notice_clause_use(&mut self, cref: ClauseRef) {
        self.bump_clause(cref);
        self.db.set_used(cref, true);
        let old = self.db.lbd(cref);
        if old > 1 {
            let new = self.clause_lbd(cref);
            if new < old {
                self.db.set_lbd(cref, new);
                if new <= self.config.co_lbd_bound {
                    self.db.set_tier(cref, Tier::Core);
                } else if new <= self.config.tier2_lbd_bound && self.db.tier(cref) == Tier::Local {
                    self.db.set_tier(cref, Tier::Tier2);
                }
            }
        }
    }

    fn clause_locked(&self, cref: ClauseRef) -> bool {
        if self.db.is_deleted(cref) {
            return false;
        }
        let l0 = self.db.lit(cref, 0);
        self.lit_value(l0) == LBool::True && self.reason[l0.var().index()] == Some(cref)
    }

    /// Tiered learnt-database reduction (Chan-Seok / Glucose lineage).
    ///
    /// CORE clauses are never deleted.  TIER2 clauses that participated in a
    /// conflict since the last round stay (their used flag is cleared);
    /// idle ones are demoted to LOCAL, where they compete from the next
    /// round on.  The lowest-activity half of the LOCAL tier (ties broken by
    /// larger LBD) is evicted, skipping binary and locked clauses.  The
    /// candidate buffer is reused across rounds — reduction allocates
    /// nothing in steady state.
    fn reduce_db(&mut self) {
        let started = self.checkpoint_start();
        self.stats.reductions += 1;
        let mut scratch = std::mem::take(&mut self.reduce_scratch);
        scratch.clear();
        scratch.extend(
            self.db
                .learnt_refs()
                .map(|cref| (self.db.activity(cref), self.db.lbd(cref), cref)),
        );
        // Tier maintenance pass; LOCAL clauses become eviction candidates,
        // compacted to the front of the scratch buffer.
        let mut candidates = 0usize;
        for i in 0..scratch.len() {
            let entry = scratch[i];
            let cref = entry.2;
            match self.db.tier(cref) {
                Tier::Core => self.db.set_used(cref, false),
                Tier::Tier2 => {
                    if self.db.is_used(cref) {
                        self.db.set_used(cref, false);
                    } else {
                        self.db.set_tier(cref, Tier::Local);
                    }
                }
                Tier::Local => {
                    if self.db.len(cref) > 2 && !self.clause_locked(cref) {
                        scratch[candidates] = entry;
                        candidates += 1;
                    }
                }
            }
        }
        scratch.truncate(candidates);
        // Remove the half with the lowest activity (ties broken by larger LBD).
        scratch.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.cmp(&a.1))
        });
        let to_remove = scratch.len() / 2;
        for &(_, _, cref) in scratch.iter().take(to_remove) {
            self.db.delete(cref);
        }
        self.reduce_scratch = scratch;
        self.max_learnts *= 1.1;
        self.maybe_gc();
        self.fire_checkpoint(Checkpoint::ReduceDb, started);
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(var) = self.order.pop_max(&self.activity) {
            if self.assigns[var.index()] == LBool::Undef && !self.eliminated[var.index()] {
                return Some(var);
            }
        }
        None
    }

    /// One-shot instance classification (adaptive strategy switching).
    ///
    /// After `adapt_after_conflicts` cumulative conflicts, the search profile
    /// gathered so far — decisions per conflict, the longest run of
    /// consecutive conflicts, and the average learnt-clause LBD — picks a
    /// [`SearchStrategy`] and retunes restart/decay/tier parameters to match,
    /// in the spirit of splr's `SearchStrategy` adaptation.  Runs at most
    /// once per solver lifetime so long-lived incremental sessions settle on
    /// a profile instead of oscillating.
    fn maybe_adapt(&mut self) {
        if !self.config.adapt_strategy
            || self.strategy != SearchStrategy::Initial
            || self.stats.conflicts < self.config.adapt_after_conflicts
        {
            return;
        }
        let conflicts = self.stats.conflicts.max(1) as f64;
        let decisions_per_conflict = self.stats.decisions as f64 / conflicts;
        let average_lbd = self.lbd_sum as f64 / conflicts;
        let strategy = if decisions_per_conflict < 1.2 {
            // Propagation-dominated: almost every decision conflicts, so keep
            // more clauses and slow the activity churn.
            self.config.co_lbd_bound = self.config.co_lbd_bound.max(4);
            self.config.var_decay = 0.99;
            SearchStrategy::LowDecisions
        } else if self.max_conflict_streak >= 100 {
            // Long conflict bursts: EMA forcing fires constantly and just
            // thrashes; fall back to the noise-immune Luby schedule.
            self.config.restart_mode = RestartMode::Luby;
            self.restart
                .set_mode(RestartMode::Luby, self.config.restart_base);
            self.config.var_decay = 0.99;
            SearchStrategy::HighSuccessive
        } else if average_lbd < 4.0 {
            // Glue-rich: the learnt clauses are strong, so churn activities
            // faster to exploit them.
            self.config.var_decay = 0.91;
            SearchStrategy::ManyGlues
        } else if self.max_conflict_streak < 5 {
            // Conflicts arrive isolated; restarts rarely help, so demand a
            // larger LBD degradation before forcing one.
            self.config.restart_thr = self.config.restart_thr.max(1.4);
            SearchStrategy::LowSuccessive
        } else {
            SearchStrategy::Generic
        };
        self.strategy = strategy;
        if strategy != SearchStrategy::Generic {
            self.stats.strategy_switches += 1;
        }
    }

    /// Runs the CDCL loop until decided or a restart fires.
    ///
    /// Returns `Some(result)` when decided, or `None` to request a restart
    /// (pacing is delegated to the [`RestartState`]).
    fn search(&mut self) -> Option<SolveResult> {
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                self.conflict_streak += 1;
                self.max_conflict_streak = self.max_conflict_streak.max(self.conflict_streak);
                if self.stats.conflicts.is_multiple_of(128) && self.interrupted() {
                    return Some(SolveResult::Unknown);
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, backtrack_level) = self.analyze(confl);
                self.cancel_until(backtrack_level);
                let lbd = self.record_learnt(learnt);
                self.lbd_sum += u64::from(lbd);
                self.restart.on_conflict(lbd, self.trail.len());
                self.decay_activities();
                self.maybe_adapt();
                // Cheap threshold check; only compacts when the wasted
                // fraction crossed `gc_wasted_ratio` (every conflict in the
                // forced-GC testing mode, ratio 0.0).
                self.maybe_gc();
            } else {
                self.conflict_streak = 0;
                if self.budget_exhausted() {
                    return Some(SolveResult::Unknown);
                }
                match self.restart.check(self.trail.len(), &self.config) {
                    RestartDecision::Continue => {}
                    RestartDecision::Blocked => {
                        self.stats.restarts_blocked += 1;
                    }
                    RestartDecision::RestartLuby => {
                        self.stats.restarts += 1;
                        self.stats.restarts_luby += 1;
                        self.restart.on_restart(self.config.restart_base);
                        self.cancel_until(0);
                        self.fire_checkpoint_event(Checkpoint::Restart);
                        return None;
                    }
                    RestartDecision::RestartEma => {
                        self.stats.restarts += 1;
                        self.stats.restarts_ema += 1;
                        self.restart.on_restart(self.config.restart_base);
                        self.cancel_until(0);
                        self.fire_checkpoint_event(Checkpoint::Restart);
                        return None;
                    }
                }
                if self.db.num_removable() as f64 >= self.max_learnts {
                    self.reduce_db();
                }
                // Handle assumptions, then fall back to the activity heuristic.
                let mut next: Option<Lit> = None;
                while self.decision_level() < self.assumptions.len() {
                    let p = self.assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        LBool::True => {
                            // Dummy level so assumption indices line up.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            // The assumptions are inconsistent with the clauses.
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(lit) => Some(lit),
                    None => self
                        .pick_random_var()
                        .or_else(|| self.pick_branch_var())
                        .map(|var| Lit::new(var, !self.phase[var.index()])),
                };
                match decision {
                    None => {
                        // Every variable is assigned: we have a model.
                        // Eliminated variables were never branched on; the
                        // reconstruction stack fills them in.
                        self.model = self.assigns.clone();
                        self.extend_model();
                        return Some(SolveResult::Sat);
                    }
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(lit, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `SolverStats::fields` must enumerate every struct field: the derived
    /// `Debug` output names each field exactly once, so its names are the
    /// ground truth the canonical accessor is checked against.
    #[test]
    fn stats_fields_cover_the_struct() {
        let mut stats = SolverStats::default();
        for (i, (name, _)) in SolverStats::default().fields().iter().enumerate() {
            assert!(stats.set_field(name, (i + 1) as u64), "set_field({name})");
        }
        let debug = format!("{stats:?}");
        let debug_fields: Vec<&str> = debug
            .trim_start_matches("SolverStats {")
            .trim_end_matches('}')
            .split(',')
            .filter_map(|part| part.split(':').next())
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .collect();
        let listed: Vec<&str> = stats.fields().iter().map(|&(name, _)| name).collect();
        assert_eq!(
            listed, debug_fields,
            "SolverStats::fields is out of step with the struct definition"
        );
        // Round trip: set_field above wrote i + 1 into field i.
        for (i, (name, value)) in stats.fields().iter().enumerate() {
            assert_eq!(*value, (i + 1) as u64, "{name}");
        }
        assert!(!stats.set_field("no_such_field", 1));
    }

    /// The checkpoint hook observes GC and reduction phases without changing
    /// solver behaviour.
    #[test]
    fn checkpoint_hook_reports_gc() {
        use std::sync::atomic::AtomicU64;
        let gc_seen = Arc::new(AtomicU64::new(0));
        let mut s = Solver::new();
        let seen = Arc::clone(&gc_seen);
        s.set_checkpoint_hook(Some(Box::new(move |which, duration| {
            assert!(duration >= Duration::ZERO);
            if which == Checkpoint::Gc {
                seen.fetch_add(1, Ordering::Relaxed);
            }
        })));
        s.ensure_vars(2);
        s.add_clause(lits(&[1, 2]));
        s.collect_garbage();
        assert_eq!(s.stats().gc_runs, 1);
        assert_eq!(gc_seen.load(Ordering::Relaxed), 1);
        s.set_checkpoint_hook(None);
        s.collect_garbage();
        assert_eq!(gc_seen.load(Ordering::Relaxed), 1, "hook cleared");
    }

    fn lits(spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&v| Lit::new(Var::from_index(v.unsigned_abs() as usize - 1), v < 0))
            .collect()
    }

    fn solver_with(num_vars: usize, clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        s.ensure_vars(num_vars);
        for c in clauses {
            s.add_clause(lits(c));
        }
        s
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = solver_with(4, &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for i in 0..4 {
            assert_eq!(s.var_value(Var::from_index(i)), Some(true));
        }
    }

    #[test]
    fn simple_conflict_analysis() {
        // (a|b) & (a|!b) & (!a|c) & (!a|!c) is unsat.
        let mut s = solver_with(3, &[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = solver_with(2, &[&[1, 2]]);
        let a = Lit::new(Var::from_index(0), true);
        let b = Lit::new(Var::from_index(1), true);
        assert_eq!(s.solve_with(&[a, b]), SolveResult::Unsat);
        // Without assumptions the formula is satisfiable again.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with(&[a]), SolveResult::Sat);
        assert_eq!(s.var_value(Var::from_index(1)), Some(true));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Pigeon i in hole j -> var index i*2 + j.
        let mut s = Solver::new();
        s.ensure_vars(6);
        let v = |i: usize, j: usize| Lit::positive(Var::from_index(i * 2 + j));
        for i in 0..3 {
            s.add_clause([v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!v(i1, j), !v(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_is_sat_with_correct_parity() {
        // x1 ^ x2 = 1, x2 ^ x3 = 0, x3 ^ x1 = 1 is satisfiable.
        let mut s = Solver::new();
        s.ensure_vars(3);
        let l = |i: usize, neg: bool| Lit::new(Var::from_index(i), neg);
        // x1 ^ x2 = 1
        s.add_clause([l(0, false), l(1, false)]);
        s.add_clause([l(0, true), l(1, true)]);
        // x2 ^ x3 = 0  (equality)
        s.add_clause([l(1, true), l(2, false)]);
        s.add_clause([l(1, false), l(2, true)]);
        // x3 ^ x1 = 1
        s.add_clause([l(2, false), l(0, false)]);
        s.add_clause([l(2, true), l(0, true)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let x1 = s.var_value(Var::from_index(0)).unwrap();
        let x2 = s.var_value(Var::from_index(1)).unwrap();
        let x3 = s.var_value(Var::from_index(2)).unwrap();
        assert!(x1 ^ x2);
        assert!(!(x2 ^ x3));
        assert!(x3 ^ x1);
    }

    #[test]
    fn conflict_budget_returns_unknown_or_decides() {
        // A small pigeonhole instance with a tiny budget should give Unknown.
        let mut s = Solver::new();
        let n = 7;
        s.ensure_vars(n * (n - 1));
        let v = |i: usize, j: usize| Lit::positive(Var::from_index(i * (n - 1) + j));
        for i in 0..n {
            s.add_clause((0..n - 1).map(|j| v(i, j)));
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!v(i1, j), !v(i2, j)]);
                }
            }
        }
        s.set_conflict_budget(Some(5));
        let result = s.solve();
        assert_eq!(result, SolveResult::Unknown);
        // Removing the budget lets it finish (this instance is hard but feasible).
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_formula() {
        let clauses: Vec<Vec<i32>> = vec![
            vec![1, 2, -3],
            vec![-1, 3],
            vec![2, 3, 4],
            vec![-2, -4],
            vec![1, -2, 3, -4],
        ];
        let slices: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(4, &slices);
        assert_eq!(s.solve(), SolveResult::Sat);
        let model: Vec<bool> = (0..4)
            .map(|i| s.var_value(Var::from_index(i)).unwrap())
            .collect();
        for clause in &clauses {
            assert!(clause.iter().any(|&v| {
                let idx = v.unsigned_abs() as usize - 1;
                model[idx] == (v > 0)
            }));
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut s = solver_with(3, &[&[1, 2], &[-1, 3], &[-3, -2]]);
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.solves >= 1);
    }

    #[test]
    fn frame_clauses_are_only_active_when_selected() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        let frame = s.push_frame();
        // Scoped constraint: !a and !b — contradicts (a | b) when active.
        s.add_clause_in(frame, [Lit::negative(a)]);
        s.add_clause_in(frame, [Lit::negative(b)]);
        assert_eq!(
            s.solve(),
            SolveResult::Sat,
            "dormant frame must not constrain"
        );
        assert_eq!(s.solve_in(&[frame], &[]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat, "frame deactivates again");
    }

    #[test]
    fn retired_frame_is_logically_deleted() {
        let mut s = Solver::new();
        let a = s.new_var();
        let frame = s.push_frame();
        s.add_clause_in(frame, [Lit::negative(a)]);
        s.add_clause([Lit::positive(a)]);
        assert_eq!(s.solve_in(&[frame], &[]), SolveResult::Unsat);
        s.retire_frame(frame);
        assert!(s.frame_retired(frame));
        // Retiring twice is a no-op.
        s.retire_frame(frame);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(a)), Some(true));
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn solving_in_a_retired_frame_panics() {
        let mut s = Solver::new();
        let frame = s.push_frame();
        s.retire_frame(frame);
        let _ = s.solve_in(&[frame], &[]);
    }

    #[test]
    fn frames_mix_with_assumptions_and_each_other() {
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        let f1 = s.push_frame();
        let f2 = s.push_frame();
        s.add_clause_in(f1, [Lit::positive(x)]);
        s.add_clause_in(f2, [Lit::negative(x), Lit::positive(y)]);
        assert_eq!(s.solve_in(&[f1, f2], &[]), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(x)), Some(true));
        assert_eq!(s.value(Lit::positive(y)), Some(true));
        assert_eq!(
            s.solve_in(&[f1, f2], &[Lit::negative(y)]),
            SolveResult::Unsat
        );
        // f2 alone leaves x free.
        assert_eq!(
            s.solve_in(&[f2], &[Lit::negative(x), Lit::negative(y)]),
            SolveResult::Sat
        );
    }

    #[test]
    fn simplify_reclaims_retired_and_subsumed_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        let frame = s.push_frame();
        for _ in 0..10 {
            s.add_clause_in(frame, [Lit::negative(a), Lit::negative(b)]);
        }
        let before = s.num_clauses();
        s.retire_frame(frame);
        s.simplify();
        assert!(
            s.num_clauses() < before,
            "simplify must delete the retired frame's clauses ({} -> {})",
            before,
            s.num_clauses()
        );
        // The solver is still correct afterwards.
        assert_eq!(s.solve_with(&[Lit::negative(a)]), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(b)), Some(true));
    }

    #[test]
    fn simplify_keeps_solver_sound_under_unit_subsumption() {
        // Pin a variable, simplify away the satisfied clauses, and keep solving.
        let mut s = solver_with(4, &[&[1, 2], &[-1, 3], &[2, 3, 4], &[-3, -4]]);
        s.add_clause(lits(&[1]));
        s.simplify();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.var_value(Var::from_index(0)), Some(true));
        assert_eq!(s.var_value(Var::from_index(2)), Some(true));
        assert_eq!(s.var_value(Var::from_index(3)), Some(false));
        s.add_clause(lits(&[-2]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn learnt_clauses_survive_frame_retirement() {
        // Solve a contradiction-rich query inside a frame, retire it, and
        // check the solver still answers follow-up queries correctly.
        let mut s = Solver::new();
        let n = 12;
        s.ensure_vars(n);
        let v = |i: usize| Lit::positive(Var::from_index(i));
        // Permanent: a parity-ish chain.
        for i in 0..n - 1 {
            s.add_clause([v(i), v(i + 1)]);
            s.add_clause([!v(i), !v(i + 1)]);
        }
        let frame = s.push_frame();
        s.add_clause_in(frame, [v(0)]);
        s.add_clause_in(frame, [v(n - 1)]);
        // n even: alternating chain forces v(n-1) != v(0) — frame is unsat.
        assert_eq!(s.solve_in(&[frame], &[]), SolveResult::Unsat);
        let learnt_before = s.stats().learnt_clauses;
        s.retire_frame(frame);
        s.simplify();
        assert_eq!(s.solve(), SolveResult::Sat);
        let _ = learnt_before; // retirement itself must not clear the database
        assert!(s.is_ok());
    }

    #[test]
    fn default_frame_scopes_plain_add_clause() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        let frame = s.push_frame();
        s.set_default_frame(Some(frame));
        assert_eq!(s.default_frame(), Some(frame));
        // Routed through the default frame: contradicts (a | b) only when the
        // frame is activated.
        s.add_clause([Lit::negative(a)]);
        s.add_clause([Lit::negative(b)]);
        s.set_default_frame(None);
        assert_eq!(s.default_frame(), None);
        s.add_clause([Lit::positive(a)]); // back at the root: permanent
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(a)), Some(true));
        assert_eq!(s.solve_in(&[frame], &[]), SolveResult::Unsat);
        s.retire_frame(frame);
        s.simplify();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(a)), Some(true));
    }

    #[test]
    fn explicit_frame_wins_over_default_frame() {
        let mut s = Solver::new();
        let a = s.new_var();
        let f1 = s.push_frame();
        let f2 = s.push_frame();
        s.set_default_frame(Some(f1));
        // Explicitly scoped to f2 despite the f1 default.
        s.add_clause_in(f2, [Lit::negative(a)]);
        s.set_default_frame(None);
        s.add_clause([Lit::positive(a)]);
        assert_eq!(s.solve_in(&[f1], &[]), SolveResult::Sat);
        assert_eq!(s.solve_in(&[f2], &[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_in_default_frame_poisons_only_the_frame() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a)]);
        let frame = s.push_frame();
        s.set_default_frame(Some(frame));
        s.add_clause([]);
        s.set_default_frame(None);
        assert!(s.is_ok(), "the empty clause must stay scoped to the frame");
        assert_eq!(s.solve_in(&[frame], &[]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
        // The frame stays dead even after retirement and reclamation, and the
        // solver keeps working.
        s.retire_frame(frame);
        s.simplify();
        assert!(s.is_ok());
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(a)), Some(true));
    }

    #[test]
    fn retiring_the_default_frame_clears_the_default() {
        let mut s = Solver::new();
        let a = s.new_var();
        let frame = s.push_frame();
        s.set_default_frame(Some(frame));
        s.retire_frame(frame);
        assert_eq!(s.default_frame(), None);
        // Plain clauses are permanent again.
        s.add_clause([Lit::positive(a)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(a)), Some(true));
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn default_frame_on_a_retired_frame_panics() {
        let mut s = Solver::new();
        let frame = s.push_frame();
        s.retire_frame(frame);
        s.set_default_frame(Some(frame));
    }

    #[test]
    fn frame_generations_preserve_level0_facts_across_retirement() {
        // Simulates the attack-session lifecycle: permanent structure, learnt
        // level-0 facts, then repeated "generations" of frame-scoped
        // constraints that are retired and reclaimed.  The facts and the
        // permanent clauses must survive every cycle.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        // (a | b) & (a | !b) forces a; the solver discovers it as a learnt
        // level-0 fact on the first solve.
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        s.add_clause([Lit::positive(a), Lit::negative(b)]);
        s.add_clause([Lit::negative(a), Lit::positive(c)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(a)), Some(true));
        assert_eq!(s.value(Lit::positive(c)), Some(true));

        for generation in 0..4 {
            let frame = s.push_frame();
            s.set_default_frame(Some(frame));
            // A contradictory generation: !c clashes with the permanent
            // consequence c.
            s.add_clause([Lit::negative(c)]);
            s.set_default_frame(None);
            assert_eq!(
                s.solve_in(&[frame], &[]),
                SolveResult::Unsat,
                "generation {generation}"
            );
            let clauses_before = s.num_clauses();
            s.retire_frame(frame);
            s.simplify();
            assert!(
                s.num_clauses() <= clauses_before,
                "generation {generation}: simplify must not grow the database"
            );
            // Level-0 facts and permanent clauses are intact.
            assert!(s.is_ok(), "generation {generation}");
            assert_eq!(s.solve(), SolveResult::Sat, "generation {generation}");
            assert_eq!(s.value(Lit::positive(a)), Some(true));
            assert_eq!(s.value(Lit::positive(c)), Some(true));
        }
    }

    #[test]
    fn portfolio_configs_are_diverse_and_all_correct() {
        let configs = SolverConfig::portfolio(4);
        assert_eq!(configs.len(), 4);
        assert_eq!(configs[0], SolverConfig::default());
        assert!(configs.iter().skip(1).any(|c| *c != configs[0]));
        // Every configuration decides the same instances identically.
        for config in configs {
            let mut s = Solver::with_config(config.clone());
            s.ensure_vars(3);
            for c in [&[1, 2][..], &[-1, 3], &[-3, -2], &[2]] {
                s.add_clause(lits(c));
            }
            assert_eq!(s.solve(), SolveResult::Sat, "{config:?}");
            let mut u = Solver::with_config(config);
            u.ensure_vars(2);
            for c in [&[1][..], &[-1, 2], &[-2]] {
                u.add_clause(lits(c));
            }
            assert_eq!(u.solve(), SolveResult::Unsat);
        }
    }

    #[test]
    fn random_branching_stays_sound() {
        let config = SolverConfig {
            random_branch_freq: 0.5,
            seed: 42,
            ..SolverConfig::default()
        };
        let mut s = Solver::with_config(config);
        s.ensure_vars(6);
        let v = |i: usize, j: usize| Lit::positive(Var::from_index(i * 2 + j));
        for i in 0..3 {
            s.add_clause([v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!v(i1, j), !v(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat, "pigeonhole stays unsat");
    }

    #[test]
    fn forced_gc_preserves_answers() {
        // gc_wasted_ratio 0.0 compacts the arena at every conflict; the
        // solver must decide exactly as the default configuration does.
        let config = SolverConfig {
            gc_wasted_ratio: 0.0,
            ..SolverConfig::default()
        };
        let mut s = Solver::with_config(config.clone());
        let n = 5;
        s.ensure_vars(n * (n - 1));
        let v = |i: usize, j: usize| Lit::positive(Var::from_index(i * (n - 1) + j));
        for i in 0..n {
            s.add_clause((0..n - 1).map(|j| v(i, j)));
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!v(i1, j), !v(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().gc_runs > 0, "forced mode must actually collect");

        let mut t = Solver::with_config(config);
        t.ensure_vars(3);
        for c in [&[1, 2][..], &[-1, 3], &[-3, -2], &[2]] {
            t.add_clause(lits(c));
        }
        assert_eq!(t.solve(), SolveResult::Sat);
        assert_eq!(t.var_value(Var::from_index(1)), Some(true));
    }

    #[test]
    fn gc_compacts_wasted_arena_and_keeps_solving() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        let frame = s.push_frame();
        for _ in 0..64 {
            s.add_clause_in(frame, [Lit::negative(a), Lit::negative(b)]);
        }
        let before = s.stats().arena_bytes;
        s.retire_frame(frame);
        s.simplify();
        let after = s.stats();
        assert!(after.gc_runs >= 1, "retiring most of the arena triggers GC");
        assert_eq!(after.wasted_bytes, 0, "GC reclaims every tombstone");
        assert!(
            after.arena_bytes < before,
            "{} -> {}",
            before,
            after.arena_bytes
        );
        assert_eq!(s.solve_with(&[Lit::negative(a)]), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(b)), Some(true));
    }

    #[test]
    fn retired_frame_variables_are_recycled() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a)]);
        let baseline = s.num_vars();
        for generation in 0..5 {
            let frame = s.push_frame();
            s.set_default_frame(Some(frame));
            // Three frame-scoped variables chained to the permanent one.
            let x = s.new_var();
            let y = s.new_var();
            let z = s.new_var();
            s.add_clause([Lit::negative(a), Lit::positive(x)]);
            s.add_clause([Lit::negative(x), Lit::positive(y)]);
            s.add_clause([Lit::negative(y), Lit::positive(z)]);
            s.set_default_frame(None);
            assert_eq!(
                s.solve_in(&[frame], &[]),
                SolveResult::Sat,
                "gen {generation}"
            );
            assert_eq!(s.value(Lit::positive(z)), Some(true));
            s.retire_frame(frame);
            s.simplify();
            assert_eq!(
                s.free_var_count(),
                4,
                "gen {generation}: 3 scoped vars + the activation var recycle"
            );
        }
        assert_eq!(
            s.num_vars(),
            baseline + 4,
            "five generations reuse one generation's worth of variables"
        );
        assert_eq!(s.stats().recycled_vars, 5 * 4);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(a)), Some(true));
    }

    #[test]
    fn release_var_waits_for_live_problem_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        s.release_var(b); // premature: a live problem clause mentions b
        s.simplify();
        assert_eq!(s.free_var_count(), 0, "b stays pending");
        assert_eq!(s.solve_with(&[Lit::negative(a)]), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(b)), Some(true));
        // Once the clause is subsumed away, the release completes.
        s.add_clause([Lit::positive(a)]);
        s.simplify();
        assert_eq!(s.free_var_count(), 1);
        assert_eq!(s.new_var(), b, "the recycled variable is handed out again");
    }

    #[test]
    fn ensure_vars_claims_released_indices() {
        let mut s = Solver::new();
        let frame = s.push_frame();
        s.set_default_frame(Some(frame));
        let x = s.new_var();
        s.add_clause([Lit::positive(x)]);
        s.set_default_frame(None);
        s.retire_frame(frame);
        s.simplify();
        assert!(s.free_var_count() > 0);
        // Bulk-loading a formula that addresses the full index range must not
        // leave any of those indices in the free list.
        s.ensure_vars(s.num_vars() + 1);
        assert_eq!(s.free_var_count(), 0);
        s.add_clause([Lit::positive(x)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Lit::positive(x)), Some(true));
    }

    #[test]
    fn stats_report_arena_and_recycling_counters() {
        let mut s = solver_with(3, &[&[1, 2], &[-1, 3], &[-3, -2]]);
        let stats = s.stats();
        assert!(stats.arena_bytes > 0, "problem clauses live in the arena");
        assert_eq!(stats.wasted_bytes, 0);
        assert_eq!(stats.gc_runs, 0);
        assert_eq!(stats.recycled_vars, 0);
        let _ = s.solve();
        assert!(s.stats().arena_bytes >= stats.arena_bytes);
    }

    #[test]
    fn preset_interrupt_returns_unknown_and_clears() {
        let flag = Arc::new(AtomicBool::new(true));
        let mut s = solver_with(2, &[&[1, 2]]);
        s.set_interrupt(Some(flag.clone()));
        assert_eq!(s.solve(), SolveResult::Unknown);
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.set_interrupt(None);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_use_after_unsat_assumptions() {
        let mut s = solver_with(3, &[&[1, 2], &[-2, 3]]);
        let not1 = Lit::new(Var::from_index(0), true);
        let not2 = Lit::new(Var::from_index(1), true);
        assert_eq!(s.solve_with(&[not1, not2]), SolveResult::Unsat);
        assert!(s.is_ok());
        s.add_clause(lits(&[-3]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.var_value(Var::from_index(2)), Some(false));
        assert_eq!(s.var_value(Var::from_index(1)), Some(false));
        assert_eq!(s.var_value(Var::from_index(0)), Some(true));
    }

    /// A Tseitin-style definition `d <-> (a & b)` makes `d` a textbook
    /// elimination candidate: 2 positive / 1 negative occurrences, and the
    /// resolvent set does not grow the database.
    fn gate_solver() -> Solver {
        // d <-> (a & b): (-d a) (-d b) (d -a -b), plus a side constraint so
        // the instance is not trivially empty after elimination.  `a` and
        // `b` are frozen interface variables (the usual pattern), leaving
        // the definition variable `d` as the elimination target.
        let mut s = solver_with(3, &[&[-3, 1], &[-3, 2], &[3, -1, -2], &[1, 2]]);
        s.set_frozen(Var::from_index(0), true);
        s.set_frozen(Var::from_index(1), true);
        s
    }

    #[test]
    fn simplify_eliminates_gate_variable_and_model_is_reconstructed() {
        let mut s = gate_solver();
        let d = Var::from_index(2);
        s.simplify();
        assert!(s.is_eliminated(d), "definition variable gets resolved out");
        assert_eq!(s.stats().vars_eliminated, 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        // The reconstructed model must satisfy the original gate clauses.
        let a = s.var_value(Var::from_index(0)).unwrap();
        let b = s.var_value(Var::from_index(1)).unwrap();
        let dv = s
            .var_value(d)
            .expect("eliminated variables get model values");
        assert_eq!(dv, a && b, "d <-> (a & b) holds in the extended model");
        assert!(a || b, "side constraint holds");
    }

    #[test]
    fn referencing_an_eliminated_variable_resurrects_it() {
        let mut s = gate_solver();
        let d = Var::from_index(2);
        s.simplify();
        assert!(s.is_eliminated(d));
        // A new clause over `d` must reopen it and stay sound: force d true,
        // which through the gate forces a and b true.
        s.add_clause([Lit::positive(d)]);
        assert!(!s.is_eliminated(d), "mentioning the variable resurrects it");
        assert_eq!(s.stats().vars_resurrected, 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.var_value(Var::from_index(0)), Some(true));
        assert_eq!(s.var_value(Var::from_index(1)), Some(true));
        // Resurrected variables are never re-eliminated.
        s.simplify();
        assert!(!s.is_eliminated(d));
    }

    #[test]
    fn assuming_an_eliminated_variable_resurrects_it() {
        let mut s = gate_solver();
        let d = Var::from_index(2);
        s.simplify();
        assert!(s.is_eliminated(d));
        assert_eq!(s.solve_with(&[Lit::positive(d)]), SolveResult::Sat);
        assert!(!s.is_eliminated(d));
        assert_eq!(s.var_value(Var::from_index(0)), Some(true));
        assert_eq!(s.var_value(Var::from_index(1)), Some(true));
        assert_eq!(s.solve_with(&[Lit::negative(d)]), SolveResult::Sat);
        let a = s.var_value(Var::from_index(0)).unwrap();
        let b = s.var_value(Var::from_index(1)).unwrap();
        assert!(!(a && b), "-d forces the gate off");
    }

    #[test]
    fn frozen_variables_are_never_eliminated() {
        let mut s = gate_solver();
        let d = Var::from_index(2);
        s.set_frozen(d, true);
        s.simplify();
        assert!(!s.is_eliminated(d), "frozen variables are interface");
        assert_eq!(s.stats().vars_eliminated, 0, "all three variables frozen");
        assert!(s.is_frozen(d));
        s.set_frozen(d, false);
        s.simplify();
        assert!(s.is_eliminated(d), "unfreezing re-enables elimination");
    }

    #[test]
    fn freezing_an_eliminated_variable_resurrects_it() {
        let mut s = gate_solver();
        let d = Var::from_index(2);
        s.simplify();
        assert!(s.is_eliminated(d));
        s.set_frozen(d, true);
        assert!(!s.is_eliminated(d));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn elim_vars_off_disables_the_pass() {
        let mut s = Solver::with_config(SolverConfig {
            elim_vars: false,
            ..SolverConfig::default()
        });
        s.ensure_vars(3);
        for c in [&[-3i32, 1][..], &[-3, 2], &[3, -1, -2], &[1, 2]] {
            s.add_clause(lits(c));
        }
        s.simplify();
        assert_eq!(s.stats().vars_eliminated, 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn frame_variables_survive_elimination_and_retirement_stays_sound() {
        let mut s = solver_with(2, &[&[1, 2]]);
        let frame = s.push_frame();
        s.set_default_frame(Some(frame));
        let t = s.new_var(); // frame-tagged Tseitin-style variable
        s.add_clause([Lit::negative(t), Lit::positive(Var::from_index(0))]);
        s.add_clause([Lit::positive(t)]);
        s.set_default_frame(None);
        s.simplify();
        assert!(
            !s.is_eliminated(t),
            "frame-tagged variables are owned by frame retirement"
        );
        assert_eq!(s.solve_in(&[frame], &[]), SolveResult::Sat);
        assert_eq!(s.var_value(Var::from_index(0)), Some(true));
        s.retire_frame(frame);
        s.simplify();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn elimination_differential_on_random_instances() {
        // Lockstep: elimination on vs off must agree on satisfiability, and
        // reconstructed models must satisfy every original clause.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        for round in 0..60 {
            let num_vars = 6 + next() % 8;
            let num_clauses = 8 + next() % 24;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..num_clauses {
                let len = 1 + next() % 3;
                let mut c: Vec<i32> = Vec::new();
                for _ in 0..len {
                    let v = 1 + (next() % num_vars) as i32;
                    c.push(if next() % 2 == 0 { v } else { -v });
                }
                clauses.push(c);
            }
            let build = |elim: bool| {
                let mut s = Solver::with_config(SolverConfig {
                    elim_vars: elim,
                    ..SolverConfig::default()
                });
                s.ensure_vars(num_vars);
                for c in &clauses {
                    s.add_clause(lits(c));
                }
                s
            };
            let mut with = build(true);
            let mut without = build(false);
            with.simplify();
            without.simplify();
            let r1 = with.solve();
            let r2 = without.solve();
            assert_eq!(r1, r2, "round {round}: statuses diverge");
            if r1 == SolveResult::Sat {
                for c in &clauses {
                    assert!(
                        lits(c).iter().any(|&l| with.value(l) == Some(true)),
                        "round {round}: reconstructed model violates {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_strategy_classifies_after_warmup() {
        let mut config = SolverConfig {
            adapt_after_conflicts: 50,
            ..SolverConfig::default()
        };
        config.seed = 7;
        let mut s = Solver::with_config(config);
        assert_eq!(s.strategy(), SearchStrategy::Initial);
        // A hard random 3-SAT-ish instance at the phase-transition ratio
        // produces plenty of conflicts to spend the warm-up budget.
        let mut seed = 0xABCD_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        let num_vars = 30;
        s.ensure_vars(num_vars);
        for _ in 0..128 {
            let mut c: Vec<i32> = Vec::new();
            for _ in 0..3 {
                let v = 1 + (next() % num_vars) as i32;
                c.push(if next() % 2 == 0 { v } else { -v });
            }
            s.add_clause(lits(&c));
        }
        let _ = s.solve();
        if s.stats().conflicts >= 50 {
            assert_ne!(
                s.strategy(),
                SearchStrategy::Initial,
                "warm-up spent, classification must have run"
            );
        }
    }

    #[test]
    fn adapt_strategy_off_keeps_initial() {
        let mut s = Solver::with_config(SolverConfig {
            adapt_strategy: false,
            adapt_after_conflicts: 1,
            ..SolverConfig::default()
        });
        s.ensure_vars(8);
        for c in [&[1i32, 2][..], &[-1, 3], &[-3, -2], &[2, -3, 1]] {
            s.add_clause(lits(c));
        }
        let _ = s.solve();
        assert_eq!(s.strategy(), SearchStrategy::Initial);
    }

    #[test]
    fn luby_mode_counts_luby_restarts() {
        let mut s = Solver::with_config(SolverConfig {
            restart_mode: RestartMode::Luby,
            restart_base: 1,
            ..SolverConfig::default()
        });
        let mut seed = 0x5555_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        let num_vars = 20;
        s.ensure_vars(num_vars);
        for _ in 0..90 {
            let mut c: Vec<i32> = Vec::new();
            for _ in 0..3 {
                let v = 1 + (next() % num_vars) as i32;
                c.push(if next() % 2 == 0 { v } else { -v });
            }
            s.add_clause(lits(&c));
        }
        let _ = s.solve();
        let stats = s.stats();
        assert_eq!(stats.restarts, stats.restarts_luby);
        assert_eq!(stats.restarts_ema, 0);
    }
}
