//! Integration tests for the SAT solver: DIMACS round trips, structured
//! instances (graph colouring, parity chains), incremental solving and
//! randomised cross-checks against brute force.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sat::{parse_dimacs, write_dimacs, CnfFormula, Lit, SolveResult, Solver, Var};

fn lit(var: usize, negated: bool) -> Lit {
    Lit::new(Var::from_index(var), negated)
}

#[test]
fn dimacs_round_trip_preserves_satisfiability() {
    let mut cnf = CnfFormula::new();
    for _ in 0..10 {
        cnf.new_var();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for _ in 0..35 {
        let clause: Vec<Lit> = (0..3)
            .map(|_| lit(rng.gen_range(0..10), rng.gen()))
            .collect();
        cnf.add_clause(clause);
    }
    let text = write_dimacs(&cnf);
    let reparsed = parse_dimacs(&text).expect("parse");
    let a = Solver::from_cnf(&cnf).solve();
    let b = Solver::from_cnf(&reparsed).solve();
    assert_eq!(a, b);
}

/// Encodes proper 3-colouring of a cycle graph; odd cycles need 3 colours, so
/// with only 2 colours allowed they are unsatisfiable.
fn colouring(cycle_len: usize, colours: usize) -> (usize, Vec<Vec<Lit>>) {
    let var = |node: usize, colour: usize| lit(node * colours + colour, false);
    let mut clauses = Vec::new();
    for node in 0..cycle_len {
        clauses.push((0..colours).map(|c| var(node, c)).collect::<Vec<_>>());
        for c1 in 0..colours {
            for c2 in (c1 + 1)..colours {
                clauses.push(vec![!var(node, c1), !var(node, c2)]);
            }
        }
    }
    for node in 0..cycle_len {
        let next = (node + 1) % cycle_len;
        for c in 0..colours {
            clauses.push(vec![!var(node, c), !var(next, c)]);
        }
    }
    (cycle_len * colours, clauses)
}

#[test]
fn odd_cycle_is_not_two_colourable() {
    let (vars, clauses) = colouring(9, 2);
    let mut solver = Solver::new();
    solver.ensure_vars(vars);
    for clause in &clauses {
        solver.add_clause(clause.iter().copied());
    }
    assert_eq!(solver.solve(), SolveResult::Unsat);
}

#[test]
fn even_cycle_is_two_colourable_and_model_is_proper() {
    let (vars, clauses) = colouring(10, 2);
    let mut solver = Solver::new();
    solver.ensure_vars(vars);
    for clause in &clauses {
        solver.add_clause(clause.iter().copied());
    }
    assert_eq!(solver.solve(), SolveResult::Sat);
    // Every node has exactly one colour and neighbours differ.
    let colour_of = |node: usize| {
        (0..2)
            .find(|&c| solver.var_value(Var::from_index(node * 2 + c)) == Some(true))
            .expect("each node is coloured")
    };
    for node in 0..10 {
        assert_ne!(colour_of(node), colour_of((node + 1) % 10));
    }
}

#[test]
fn long_parity_chain_forces_unique_assignment() {
    // x0 ^ x1 = 1, x1 ^ x2 = 1, ..., x(n-1) ^ xn = 1, with x0 = 0.
    let n = 64;
    let mut solver = Solver::new();
    solver.ensure_vars(n + 1);
    solver.add_clause([lit(0, true)]);
    for i in 0..n {
        solver.add_clause([lit(i, false), lit(i + 1, false)]);
        solver.add_clause([lit(i, true), lit(i + 1, true)]);
    }
    assert_eq!(solver.solve(), SolveResult::Sat);
    for i in 0..=n {
        assert_eq!(
            solver.var_value(Var::from_index(i)),
            Some(i % 2 == 1),
            "bit {i}"
        );
    }
}

#[test]
fn incremental_assumption_sweep_matches_per_call_results() {
    // A small formula solved under every single-literal assumption must agree
    // with a fresh solver given the same unit clause.
    let clauses: Vec<Vec<Lit>> = vec![
        vec![lit(0, false), lit(1, false), lit(2, true)],
        vec![lit(0, true), lit(3, false)],
        vec![lit(2, false), lit(3, true), lit(4, false)],
        vec![lit(1, true), lit(4, true)],
        vec![lit(4, false), lit(5, false)],
    ];
    let mut incremental = Solver::new();
    incremental.ensure_vars(6);
    for clause in &clauses {
        incremental.add_clause(clause.iter().copied());
    }
    for v in 0..6 {
        for negated in [false, true] {
            let assumption = lit(v, negated);
            let inc_result = incremental.solve_with(&[assumption]);

            let mut fresh = Solver::new();
            fresh.ensure_vars(6);
            for clause in &clauses {
                fresh.add_clause(clause.iter().copied());
            }
            fresh.add_clause([assumption]);
            assert_eq!(inc_result, fresh.solve(), "assumption {assumption}");
        }
    }
}

#[test]
fn random_instances_agree_with_brute_force() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for round in 0..60 {
        let num_vars = rng.gen_range(3..9);
        let num_clauses = rng.gen_range(2..24);
        let clauses: Vec<Vec<Lit>> = (0..num_clauses)
            .map(|_| {
                let len = rng.gen_range(1..4);
                (0..len)
                    .map(|_| lit(rng.gen_range(0..num_vars), rng.gen()))
                    .collect()
            })
            .collect();
        let mut solver = Solver::new();
        solver.ensure_vars(num_vars);
        for clause in &clauses {
            solver.add_clause(clause.iter().copied());
        }
        let got = solver.solve() == SolveResult::Sat;
        let expected = (0u64..(1 << num_vars)).any(|assignment| {
            clauses.iter().all(|clause| {
                clause.iter().any(|l| {
                    let value = (assignment >> l.var().index()) & 1 == 1;
                    value == l.is_positive()
                })
            })
        });
        assert_eq!(got, expected, "round {round}: {clauses:?}");
    }
}

#[test]
fn solver_reuse_across_many_incremental_calls() {
    // Repeatedly adding clauses between solves must keep results consistent:
    // we progressively pin bits of an 8-bit counter to the value 0b10110011.
    let target = 0b1011_0011u32;
    let mut solver = Solver::new();
    solver.ensure_vars(8);
    assert_eq!(solver.solve(), SolveResult::Sat);
    for bit in 0..8 {
        let value = (target >> bit) & 1 == 1;
        solver.add_clause([lit(bit as usize, !value)]);
        assert_eq!(solver.solve(), SolveResult::Sat, "after pinning bit {bit}");
    }
    for bit in 0..8 {
        assert_eq!(
            solver.var_value(Var::from_index(bit)),
            Some((target >> bit) & 1 == 1)
        );
    }
    // Pinning a contradictory bit makes it permanently unsatisfiable.
    solver.add_clause([lit(0, (target & 1) == 1)]);
    assert_eq!(solver.solve(), SolveResult::Unsat);
    assert!(!solver.is_ok());
}

#[test]
fn stats_reflect_work_done() {
    let (vars, clauses) = colouring(11, 2);
    let mut solver = Solver::new();
    solver.ensure_vars(vars);
    for clause in &clauses {
        solver.add_clause(clause.iter().copied());
    }
    let _ = solver.solve();
    let stats = solver.stats();
    assert!(stats.conflicts > 0);
    assert!(stats.propagations > 0);
    assert_eq!(stats.solves, 1);
}
