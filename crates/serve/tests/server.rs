//! End-to-end and robustness tests for the `fall-serve` wire protocol and
//! session pool: correctness of all three job kinds over TCP, malformed and
//! oversized requests, overload (`busy`) responses, per-job timeouts, and
//! client disconnect mid-job — in every failure case the pool sessions must
//! survive and serve the next job.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use fall_serve::{Server, ServerConfig};
use locking::{LockingScheme, SfllHd, TtLock, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::Netlist;
use netshim::{LineError, LineReader, Value};

fn circuit(name: &str, inputs: usize, gates: usize) -> Netlist {
    generate(&RandomCircuitSpec::new(name, inputs, 4, gates))
}

/// A blocking test client over one TCP connection.
struct Client {
    writer: TcpStream,
    reader: LineReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        Client {
            writer,
            reader: LineReader::new(stream, 1 << 20),
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send");
        self.writer.flush().expect("flush");
    }

    fn send(&mut self, line: &str) {
        netshim::write_line(&mut self.writer, line).expect("send");
    }

    fn recv(&mut self) -> Value {
        let line = self
            .reader
            .read_line()
            .expect("read frame")
            .expect("connection open");
        Value::parse(&line).expect("response is valid JSON")
    }

    /// Reads frames until the job event for `job_id` arrives.
    fn recv_job_event(&mut self, job_id: u64) -> Value {
        loop {
            let frame = self.recv();
            if frame.get("event").and_then(Value::as_str) == Some("job")
                && frame.get("job").and_then(Value::as_u64) == Some(job_id)
            {
                return frame;
            }
        }
    }

    fn register(&mut self, name: &str, scheme: &str, h: usize, locked: &Netlist, oracle: &Netlist) {
        let request = Value::object([
            ("op", Value::from("register")),
            ("name", Value::from(name)),
            ("scheme", Value::from(scheme)),
            ("h", Value::from(h)),
            ("locked", Value::from(netlist::bench_format::write(locked))),
            ("oracle", Value::from(netlist::bench_format::write(oracle))),
        ]);
        self.send(&request.to_string());
        let response = self.recv();
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "register failed: {response}"
        );
    }

    /// Submits an attack request and returns the accepted job id.
    fn submit(&mut self, request: Value) -> u64 {
        self.send(&request.to_string());
        let response = self.recv();
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "submit failed: {response}"
        );
        response.get("job").and_then(Value::as_u64).expect("job id")
    }
}

fn test_server() -> Server {
    Server::start(ServerConfig::default()).expect("start server")
}

fn wire_key(key: &locking::Key) -> String {
    key.bits()
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect()
}

#[test]
fn serves_all_three_job_kinds_over_the_wire() {
    let server = test_server();
    let mut client = Client::connect(&server);

    // An easy SAT-attackable target and a FALL-attackable target.
    let xor_original = circuit("serve_xor", 14, 120);
    let xor = XorLock::new(10)
        .with_seed(5)
        .lock(&xor_original)
        .expect("lock")
        .optimized();
    client.register("xor", "xor-lock", 0, &xor.locked, &xor_original);

    let tt_original = circuit("serve_tt", 16, 150);
    let tt = TtLock::new(10)
        .with_seed(11)
        .lock(&tt_original)
        .expect("lock")
        .optimized();
    client.register("tt", "ttlock", 0, &tt.locked, &tt_original);

    // hello lists both targets.
    client.send("{\"op\":\"hello\",\"id\":1}");
    let hello = client.recv();
    let targets = hello
        .get("targets")
        .and_then(Value::as_array)
        .expect("targets");
    assert_eq!(targets.len(), 2, "{hello}");

    // SAT attack on the XOR target converges and proves the key.
    let job = client.submit(Value::object([
        ("op", Value::from("attack")),
        ("id", Value::from(10u64)),
        ("target", Value::from("xor")),
        ("kind", Value::from("sat")),
    ]));
    let event = client.recv_job_event(job);
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("key_found"),
        "{event}"
    );
    assert_eq!(event.get("id").and_then(Value::as_u64), Some(10));
    let recovered = event.get("key").and_then(Value::as_str).expect("key");
    assert!(
        xor.key_is_functionally_correct(
            &locking::Key::new(recovered.chars().map(|c| c == '1').collect()),
            256,
            1
        ),
        "recovered key is wrong: {event}"
    );

    // FALL on the TTLock target recovers the exact key without the oracle.
    let job = client.submit(Value::object([
        ("op", Value::from("attack")),
        ("id", Value::from(11u64)),
        ("target", Value::from("tt")),
        ("kind", Value::from("fall")),
    ]));
    let event = client.recv_job_event(job);
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("key_found"),
        "{event}"
    );
    assert_eq!(
        event.get("key").and_then(Value::as_str),
        Some(wire_key(&tt.key).as_str())
    );

    // Confirmation over a shortlist singles out the true key.
    let job = client.submit(Value::object([
        ("op", Value::from("attack")),
        ("id", Value::from(12u64)),
        ("target", Value::from("tt")),
        ("kind", Value::from("confirm")),
        (
            "shortlist",
            Value::Array(vec![
                Value::from(wire_key(&tt.key.complement())),
                Value::from(wire_key(&tt.key)),
            ]),
        ),
    ]));
    let event = client.recv_job_event(job);
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("key_found"),
        "{event}"
    );
    assert_eq!(
        event.get("key").and_then(Value::as_str),
        Some(wire_key(&tt.key).as_str())
    );

    // The metrics surface reflects the work and is MetricReport-shaped.
    client.send("{\"op\":\"metrics\",\"id\":13}");
    let response = client.recv();
    let metrics = response
        .get("metrics")
        .and_then(Value::as_object)
        .expect("metrics");
    for (name, entry) in metrics {
        assert!(
            entry.get("value").and_then(Value::as_f64).is_some(),
            "{name} has no numeric value"
        );
        assert!(
            entry
                .get("higher_is_better")
                .and_then(Value::as_bool)
                .is_some(),
            "{name} has no orientation"
        );
    }
    let metric = |name: &str| {
        metrics
            .get(name)
            .and_then(|entry| entry.get("value"))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("missing metric {name}"))
    };
    assert_eq!(metric("serve_jobs_submitted"), 3.0);
    assert_eq!(metric("serve_jobs_completed"), 3.0);
    assert_eq!(metric("serve_jobs_key_found"), 3.0);
    assert_eq!(metric("serve_targets"), 2.0);
    assert_eq!(metric("serve_sessions_created"), 4.0);
    assert!(metric("sat_solves") > 0.0);
    assert!(metric("arena_bytes") > 0.0);
    assert!(metric("serve_latency_p50_s") > 0.0);
    assert!(metric("serve_latency_p99_s") >= metric("serve_latency_p50_s"));
}

#[test]
fn trace_op_records_jobs_and_metrics_render_as_prometheus() {
    let server = test_server();
    let mut client = Client::connect(&server);

    let original = circuit("serve_trace", 14, 120);
    let locked = XorLock::new(8)
        .with_seed(7)
        .lock(&original)
        .expect("lock")
        .optimized();
    client.register("t", "xor-lock", 0, &locked.locked, &original);

    // Arm the flight recorder, run one job, then dump the trace.
    client.send("{\"op\":\"trace\",\"action\":\"start\",\"id\":1}");
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(response.get("enabled").and_then(Value::as_bool), Some(true));

    let job = client.submit(Value::object([
        ("op", Value::from("attack")),
        ("target", Value::from("t")),
        ("kind", Value::from("sat")),
    ]));
    let event = client.recv_job_event(job);
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("key_found"),
        "{event}"
    );

    client.send("{\"op\":\"trace\",\"action\":\"dump\",\"id\":2}");
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    assert!(
        response.get("events").and_then(Value::as_u64).unwrap_or(0) > 0,
        "the job left trace events: {response}"
    );
    let dump = response.get("trace").expect("dump embeds the trace");
    let events = dump
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("Chrome trace document");
    assert!(
        events
            .iter()
            .any(|e| { e.get("name").and_then(Value::as_str) == Some("serve_job") }),
        "job span recorded"
    );

    client.send("{\"op\":\"trace\",\"action\":\"stop\",\"id\":3}");
    let response = client.recv();
    assert_eq!(
        response.get("enabled").and_then(Value::as_bool),
        Some(false)
    );

    // Prometheus-format metrics: rendered text travels as a string member.
    client.send("{\"op\":\"metrics\",\"format\":\"prometheus\",\"id\":4}");
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    let text = response
        .get("metrics_text")
        .and_then(Value::as_str)
        .expect("prometheus text");
    assert!(text.contains("# TYPE serve_jobs_completed gauge"), "{text}");
    assert!(text.contains("serve_jobs_sat 1"), "{text}");
    // (Other tests in this process may record spans concurrently, so only
    // presence — not an exact count — is asserted.)
    assert!(
        text.contains("trace_serve_job_spans"),
        "trace histograms feed the metrics surface: {text}"
    );

    // An unknown format is a typed bad request.
    client.send("{\"op\":\"metrics\",\"format\":\"xml\"}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("bad_request")
    );

    // An unknown trace action is a typed bad request too.
    client.send("{\"op\":\"trace\",\"action\":\"flush\"}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("bad_request")
    );
}

#[test]
fn malformed_requests_get_typed_errors_and_the_connection_survives() {
    let server = test_server();
    let mut client = Client::connect(&server);

    // Not JSON at all.
    client.send("this is not json");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("parse_error")
    );

    // Valid JSON, missing op.
    client.send("{\"id\":3}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("bad_request")
    );
    assert_eq!(response.get("id").and_then(Value::as_u64), Some(3));

    // Unknown op.
    client.send("{\"op\":\"frobnicate\"}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("unknown_op")
    );

    // Attack against an unregistered target.
    client.send("{\"op\":\"attack\",\"target\":\"nope\"}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("unknown_target")
    );

    // Register with an unparsable netlist.
    client.send("{\"op\":\"register\",\"name\":\"x\",\"locked\":\"INPUT(\",\"oracle\":\"INPUT(\"}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("bad_netlist")
    );

    // Non-UTF-8 frame: reported, connection still framed.
    client.send_raw(b"\xff\xfe\xfd\n");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("parse_error")
    );

    // The connection still works after all of that.
    client.send("{\"op\":\"hello\",\"id\":9}");
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(response.get("id").and_then(Value::as_u64), Some(9));
}

#[test]
fn confirm_requests_are_validated_before_queueing() {
    let server = test_server();
    let mut client = Client::connect(&server);
    let original = circuit("serve_validate", 14, 120);
    let locked = TtLock::new(8)
        .with_seed(2)
        .lock(&original)
        .expect("lock")
        .optimized();
    client.register("t", "ttlock", 0, &locked.locked, &original);

    // Empty shortlist.
    client.send("{\"op\":\"attack\",\"target\":\"t\",\"kind\":\"confirm\",\"shortlist\":[]}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("bad_request")
    );

    // Key-width mismatch.
    client.send("{\"op\":\"attack\",\"target\":\"t\",\"kind\":\"confirm\",\"shortlist\":[\"01\"]}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("bad_request")
    );

    // Garbage key characters.
    client
        .send("{\"op\":\"attack\",\"target\":\"t\",\"kind\":\"confirm\",\"shortlist\":[\"01xx\"]}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("bad_request")
    );

    // Registering an oracle that still has key inputs is rejected.
    let request = Value::object([
        ("op", Value::from("register")),
        ("name", Value::from("bad-oracle")),
        (
            "locked",
            Value::from(netlist::bench_format::write(&locked.locked)),
        ),
        (
            "oracle",
            Value::from(netlist::bench_format::write(&locked.locked)),
        ),
    ]);
    client.send(&request.to_string());
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("bad_netlist")
    );

    // Re-registering an existing name is idempotent, not an error.
    let request = Value::object([
        ("op", Value::from("register")),
        ("name", Value::from("t")),
        (
            "locked",
            Value::from(netlist::bench_format::write(&locked.locked)),
        ),
        (
            "oracle",
            Value::from(netlist::bench_format::write(&original)),
        ),
    ]);
    client.send(&request.to_string());
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        response.get("existing").and_then(Value::as_bool),
        Some(true)
    );
}

#[test]
fn invalid_timeouts_are_rejected_before_queueing() {
    let server = test_server();
    let mut client = Client::connect(&server);
    let original = circuit("serve_timeout_validate", 14, 120);
    let locked = TtLock::new(8)
        .with_seed(2)
        .lock(&original)
        .expect("lock")
        .optimized();
    client.register("t", "ttlock", 0, &locked.locked, &original);

    // A zero deadline would expire before any worker could start the job;
    // non-numeric and negative values used to fall back to the default
    // silently.  All are typed bad requests now.
    for raw in ["0", "-100", "1.5", "\"5000\"", "null"] {
        client.send(&format!(
            "{{\"op\":\"attack\",\"target\":\"t\",\"kind\":\"sat\",\"timeout_ms\":{raw}}}"
        ));
        let response = client.recv();
        assert_eq!(
            response.get("error").and_then(Value::as_str),
            Some("bad_request"),
            "timeout_ms {raw} must be rejected"
        );
        assert!(
            response
                .get("message")
                .and_then(Value::as_str)
                .is_some_and(|m| m.contains("timeout_ms")),
            "error names the offending field"
        );
    }

    // A positive integer is accepted; the connection survived the rejects.
    let job = client.submit(Value::object([
        ("op", Value::from("attack")),
        ("target", Value::from("t")),
        ("kind", Value::from("sat")),
        ("timeout_ms", Value::from(60_000u64)),
    ]));
    let event = client.recv_job_event(job);
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("key_found")
    );
}

#[test]
fn oversized_frames_close_the_connection_with_a_typed_error() {
    let config = ServerConfig {
        max_frame: 256,
        ..ServerConfig::default()
    };
    let server = Server::start(config).expect("start");
    let mut client = Client::connect(&server);

    let mut frame = vec![b'a'; 4096];
    frame.push(b'\n');
    client.send_raw(&frame);
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("oversized")
    );
    // The server closes the stream afterwards.
    match client.reader.read_line() {
        Ok(None) | Err(LineError::Io(_)) => {}
        other => panic!("expected closed connection, got {other:?}"),
    }
}

/// A target whose SAT attack grinds long enough to still be running when a
/// deadline or disconnect lands: SFLL-HD is SAT-attack resilient, so the DIP
/// loop needs on the order of 2^m iterations.
fn hard_target(client: &mut Client, name: &str) {
    let original = circuit("serve_hard", 18, 220);
    let locked = SfllHd::new(14, 2)
        .with_seed(23)
        .lock(&original)
        .expect("lock")
        .optimized();
    client.register(name, "sfll-hd", 2, &locked.locked, &original);
}

#[test]
fn timeouts_cancel_mid_job_and_the_session_serves_the_next_job() {
    let server = test_server();
    let mut client = Client::connect(&server);
    hard_target(&mut client, "hard");

    let started = Instant::now();
    let job = client.submit(Value::object([
        ("op", Value::from("attack")),
        ("id", Value::from(1u64)),
        ("target", Value::from("hard")),
        ("kind", Value::from("sat")),
        ("timeout_ms", Value::from(150u64)),
    ]));
    let event = client.recv_job_event(job);
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("timeout"),
        "{event}"
    );
    // Cancellation must land promptly (reaper interval + one solver check
    // point), not after the attack would have finished naturally.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "timeout cancellation took {:?}",
        started.elapsed()
    );

    // The worker and its session survived: the next job on the same target
    // completes.  (Confirmation of a wrong key is fast — a single
    // counterexample kills it.)
    let wrong = "0".repeat(14);
    let job = client.submit(Value::object([
        ("op", Value::from("attack")),
        ("id", Value::from(2u64)),
        ("target", Value::from("hard")),
        ("kind", Value::from("confirm")),
        ("shortlist", Value::Array(vec![Value::from(wrong)])),
    ]));
    let event = client.recv_job_event(job);
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("no_key"),
        "{event}"
    );

    client.send("{\"op\":\"metrics\"}");
    let metrics = client.recv();
    let timeouts = metrics
        .get("metrics")
        .and_then(|m| m.get("serve_jobs_timeout"))
        .and_then(|entry| entry.get("value"))
        .and_then(Value::as_f64)
        .expect("timeout counter");
    assert_eq!(timeouts, 1.0);
}

#[test]
fn disconnect_cancels_in_flight_jobs_and_the_pool_survives() {
    let server = test_server();
    let mut client = Client::connect(&server);
    hard_target(&mut client, "hard");

    // Kick off a long job, then vanish.
    let _job = client.submit(Value::object([
        ("op", Value::from("attack")),
        ("target", Value::from("hard")),
        ("kind", Value::from("sat")),
        ("timeout_ms", Value::from(60_000u64)),
    ]));
    drop(client);

    // The disconnect cancels the running job through its token; poll the
    // cancelled counter from a fresh connection.
    let mut observer = Client::connect(&server);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        observer.send("{\"op\":\"metrics\"}");
        let response = observer.recv();
        let cancelled = response
            .get("metrics")
            .and_then(|m| m.get("serve_jobs_cancelled"))
            .and_then(|entry| entry.get("value"))
            .and_then(Value::as_f64)
            .expect("cancelled counter");
        if cancelled >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect did not cancel the job: {response}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The surviving session immediately serves the observer.
    let wrong = "1".repeat(14);
    let job = observer.submit(Value::object([
        ("op", Value::from("attack")),
        ("target", Value::from("hard")),
        ("kind", Value::from("confirm")),
        ("shortlist", Value::Array(vec![Value::from(wrong)])),
    ]));
    let event = observer.recv_job_event(job);
    assert_eq!(
        event.get("status").and_then(Value::as_str),
        Some("no_key"),
        "{event}"
    );
}

#[test]
fn overload_produces_typed_busy_responses() {
    let mut config = ServerConfig::default();
    config.service.workers_per_target = 1;
    config.service.queue_capacity = 1;
    let server = Server::start(config).expect("start");
    let mut client = Client::connect(&server);
    hard_target(&mut client, "hard");

    // One job occupies the single worker, one fills the queue; with
    // capacity 1, four rapid submissions must shed load at least once.
    let mut busy = 0;
    for i in 0..4u64 {
        let request = Value::object([
            ("op", Value::from("attack")),
            ("id", Value::from(i)),
            ("target", Value::from("hard")),
            ("kind", Value::from("sat")),
            ("timeout_ms", Value::from(2_000u64)),
        ]);
        client.send(&request.to_string());
        let response = client.recv();
        if response.get("error").and_then(Value::as_str) == Some("busy") {
            busy += 1;
            assert!(
                response.get("queued").and_then(Value::as_u64).is_some()
                    && response.get("capacity").and_then(Value::as_u64).is_some(),
                "busy response must carry queue occupancy: {response}"
            );
        } else {
            assert_eq!(
                response.get("ok").and_then(Value::as_bool),
                Some(true),
                "{response}"
            );
        }
    }
    assert!(busy >= 1, "queue of capacity 1 never reported busy");

    client.send("{\"op\":\"metrics\"}");
    let response = client.recv();
    let shed = response
        .get("metrics")
        .and_then(|m| m.get("serve_jobs_busy"))
        .and_then(|entry| entry.get("value"))
        .and_then(Value::as_f64)
        .expect("busy counter");
    assert_eq!(shed, busy as f64);
}

#[test]
fn remote_shutdown_stops_the_server() {
    let server = test_server();
    let mut client = Client::connect(&server);
    client.send("{\"op\":\"shutdown\",\"id\":1}");
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    server.wait();

    let mut blocked = Server::start(ServerConfig {
        allow_remote_shutdown: false,
        ..ServerConfig::default()
    })
    .expect("start");
    let mut client = Client::connect(&blocked);
    client.send("{\"op\":\"shutdown\"}");
    let response = client.recv();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("bad_request")
    );
    blocked.stop();
}
