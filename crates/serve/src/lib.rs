//! `fall-serve`: a multi-tenant attack-as-a-service session server.
//!
//! The server fronts [`fall::service::AttackService`] — a pool of long-lived
//! primed attack sessions keyed by registered target — with a line-delimited
//! JSON protocol over TCP (specified in `docs/PROTOCOL.md`).  Clients
//! register `(netlist, scheme)` targets, submit SAT / FALL / confirmation
//! jobs against them, and scrape a `/metrics`-style counter surface whose
//! JSON dialect is the `MetricReport` format used by `fall-bench`, so the
//! same offline tooling parses both.
//!
//! The transport is deliberately plain `std::net`: blocking sockets, one
//! reader and one writer thread per connection (see
//! [`netshim`] for the vendored framing and JSON pieces).  Job execution is
//! asynchronous — an `attack` request is acknowledged immediately with a job
//! id, and the result is pushed later as a `job` event on the same
//! connection — so one connection can keep many jobs in flight and the
//! per-client round-robin scheduler in the service keeps tenants fair.
//!
//! Robustness guarantees at this layer:
//!
//! * malformed JSON gets a typed `parse_error` response, the connection
//!   stays usable;
//! * a frame over the size cap gets an `oversized` response and the
//!   connection closes (the stream is no longer framed);
//! * a disconnect cancels the client's queued and running jobs through
//!   [`fall::parallel::CancelToken`], and the worker sessions survive to
//!   serve the next client.

#![deny(missing_docs)]

pub mod protocol;

use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use fall::oracle::SimOracle;
use fall::service::{AttackService, JobKind, JobReport, JobSpec, RegisterError, SubmitError};
use netlist::bench_format;
use netshim::{LineError, LineReader, Value};

use protocol::{key_from_wire, ErrorCode, RequestId};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; use port `0` for an ephemeral port (tests, examples).
    pub addr: String,
    /// Maximum accepted frame length in bytes.  Netlists travel inside
    /// frames, so this bounds the largest registrable circuit.
    pub max_frame: usize,
    /// Whether the `shutdown` operation is honoured from the wire.
    pub allow_remote_shutdown: bool,
    /// Session-pool sizing and scheduling knobs.
    pub service: fall::service::ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_frame: 4 << 20,
            allow_remote_shutdown: true,
            service: fall::service::ServiceConfig::default(),
        }
    }
}

/// Shared across the accept loop and every connection thread.
struct ServerState {
    stopping: AtomicBool,
    stop_flag: Mutex<bool>,
    stop_wake: Condvar,
    /// Socket clones of live connections, force-closed at stop time so
    /// blocked reader threads wake up.
    conns: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    local_addr: SocketAddr,
    max_frame: usize,
    allow_remote_shutdown: bool,
}

impl ServerState {
    /// Flags the server as stopping and unblocks the accept loop and
    /// [`Server::wait`].
    fn signal_stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        *self.stop_flag.lock().expect("stop lock") = true;
        self.stop_wake.notify_all();
        // The accept loop blocks in `accept`; poke it with a throwaway
        // connection so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A running server.  Dropping it stops it: the listener closes, live
/// connections are shut down, and the session pool is drained and joined.
pub struct Server {
    service: Arc<AttackService>,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the accept loop and session pool.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let service = Arc::new(AttackService::new(config.service.clone()));
        let state = Arc::new(ServerState {
            stopping: AtomicBool::new(false),
            stop_flag: Mutex::new(false),
            stop_wake: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
            local_addr,
            max_frame: config.max_frame,
            allow_remote_shutdown: config.allow_remote_shutdown,
        });
        let accept = {
            let state = Arc::clone(&state);
            let service = Arc::clone(&service);
            std::thread::spawn(move || accept_loop(&listener, &service, &state))
        };
        Ok(Server {
            service,
            state,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the actual port when `addr` used port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// The underlying session pool, for in-process target registration and
    /// metric scraping.
    pub fn service(&self) -> &Arc<AttackService> {
        &self.service
    }

    /// Blocks until a stop is requested (a wire `shutdown` request, or
    /// [`Server::stop`] from another thread).
    pub fn wait(&self) {
        let mut stopped = self.state.stop_flag.lock().expect("stop lock");
        while !*stopped {
            stopped = self.state.stop_wake.wait(stopped).expect("stop lock");
        }
    }

    /// Stops the server: no new connections, queued jobs reported as
    /// cancelled, active jobs cancelled, everything joined.  Idempotent.
    pub fn stop(&mut self) {
        self.state.signal_stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Drain the pool first: this cancels active jobs, so the per-job
        // reports flush out and connection forwarder threads can finish.
        self.service.shutdown();
        for conn in self.state.conns.lock().expect("conns lock").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.state.conn_threads.lock().expect("threads lock"));
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<AttackService>, state: &Arc<ServerState>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if state.stopping.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().expect("conns lock").push(clone);
        }
        let service = Arc::clone(service);
        let state_for_conn = Arc::clone(state);
        let handle =
            std::thread::spawn(move || handle_connection(stream, &service, &state_for_conn));
        state
            .conn_threads
            .lock()
            .expect("threads lock")
            .push(handle);
    }
}

/// Whether the connection should stay open after a request.
#[derive(PartialEq, Eq)]
enum Flow {
    Continue,
    Close,
}

fn handle_connection(stream: TcpStream, service: &Arc<AttackService>, state: &Arc<ServerState>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // The server also holds a clone of this socket (for forced close at stop
    // time), so dropping our handles alone would not send FIN; shut the
    // socket down explicitly once the protocol loop ends.
    let closer = stream.try_clone();
    // All frames — immediate responses and asynchronous job events — funnel
    // through one channel into one writer thread, so interleaved writers can
    // never corrupt the framing.
    let (out_tx, out_rx) = mpsc::channel::<String>();
    let writer = std::thread::spawn(move || {
        let mut writer = BufWriter::new(write_half);
        while let Ok(line) = out_rx.recv() {
            if netshim::write_line(&mut writer, &line).is_err() {
                break;
            }
        }
    });

    let client = service.next_client();
    let (reply_tx, reply_rx) = mpsc::channel::<JobReport>();
    let forward = out_tx.clone();
    let forwarder = std::thread::spawn(move || {
        while let Ok(report) = reply_rx.recv() {
            // The job tag encodes the originating request id (id + 1; 0 for
            // requests without an id).
            let id = report.tag.checked_sub(1);
            let _ = forward.send(protocol::job_event_frame(id, &report));
        }
    });

    let mut reader = LineReader::new(stream, state.max_frame);
    loop {
        match reader.read_line() {
            Ok(Some(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let flow = handle_request(&line, service, state, client, &reply_tx, &out_tx);
                if flow == Flow::Close {
                    break;
                }
            }
            Ok(None) => break,
            Err(LineError::InvalidUtf8) => {
                // The stream is still framed correctly; report and continue.
                let _ = out_tx.send(protocol::error_frame(
                    None,
                    ErrorCode::ParseError,
                    "frame is not valid UTF-8",
                ));
            }
            Err(LineError::Oversized { limit }) => {
                // Framing is lost beyond this point; answer and close.
                let _ = out_tx.send(protocol::error_frame(
                    None,
                    ErrorCode::Oversized,
                    &format!("frame exceeds the {limit}-byte limit"),
                ));
                break;
            }
            Err(LineError::Io(_)) => break,
        }
    }

    // Whatever this client still has in flight dies with the connection; the
    // pool sessions survive for the next client.
    service.cancel_client(client);
    drop(reply_tx);
    drop(out_tx);
    let _ = forwarder.join();
    let _ = writer.join();
    if let Ok(closer) = closer {
        let _ = closer.shutdown(Shutdown::Both);
    }
}

fn handle_request(
    line: &str,
    service: &Arc<AttackService>,
    state: &Arc<ServerState>,
    client: fall::service::ClientId,
    reply_tx: &Sender<JobReport>,
    out_tx: &Sender<String>,
) -> Flow {
    let send = |frame: String| {
        let _ = out_tx.send(frame);
    };
    let request = match Value::parse(line) {
        Ok(value) => value,
        Err(reason) => {
            send(protocol::error_frame(None, ErrorCode::ParseError, &reason));
            return Flow::Continue;
        }
    };
    let id: RequestId = request.get("id").and_then(Value::as_u64);
    let Some(op) = request.get("op").and_then(Value::as_str) else {
        send(protocol::error_frame(
            id,
            ErrorCode::BadRequest,
            "missing string field \"op\"",
        ));
        return Flow::Continue;
    };
    match op {
        "hello" => send(protocol::hello_frame(id, &service.targets())),
        "register" => send(handle_register(&request, id, service)),
        "attack" => send(handle_attack(&request, id, service, client, reply_tx)),
        "metrics" => match request.get("format").and_then(Value::as_str) {
            None | Some("json") => send(protocol::metrics_frame(id, &service.metrics())),
            Some("prometheus") => send(protocol::prometheus_frame(id, &service.metrics())),
            Some(other) => send(protocol::error_frame(
                id,
                ErrorCode::BadRequest,
                &format!("unknown metrics format {other:?}"),
            )),
        },
        "trace" => send(handle_trace(&request, id)),
        "shutdown" => {
            if !state.allow_remote_shutdown {
                send(protocol::error_frame(
                    id,
                    ErrorCode::BadRequest,
                    "remote shutdown is disabled",
                ));
                return Flow::Continue;
            }
            send(protocol::ok_frame(id));
            state.signal_stop();
            return Flow::Close;
        }
        other => send(protocol::error_frame(
            id,
            ErrorCode::UnknownOp,
            &format!("unknown op {other:?}"),
        )),
    }
    Flow::Continue
}

/// The `trace` op: drive the in-process flight recorder.
///
/// `action` is one of `start` (reset the recorder and enable span
/// collection), `stop` (disable collection, keeping what was recorded),
/// `dump` (return the recorded events as an embedded Chrome trace-event
/// document) or `status` (the default: just report the recorder state).
fn handle_trace(request: &Value, id: RequestId) -> String {
    let action = request
        .get("action")
        .and_then(Value::as_str)
        .unwrap_or("status");
    match action {
        "start" => {
            fall::trace::reset();
            fall::trace::set_enabled(true);
        }
        "stop" => fall::trace::set_enabled(false),
        "dump" | "status" => {}
        other => {
            return protocol::error_frame(
                id,
                ErrorCode::BadRequest,
                &format!("unknown trace action {other:?}"),
            );
        }
    }
    let events = fall::trace::events().len();
    let dump = if action == "dump" {
        match Value::parse(&fall::trace::chrome_trace_json()) {
            Ok(document) => Some(document),
            Err(reason) => {
                return protocol::error_frame(
                    id,
                    ErrorCode::BadRequest,
                    &format!("trace dump failed: {reason}"),
                );
            }
        }
    } else {
        None
    };
    protocol::trace_frame(id, fall::trace::enabled(), events, dump)
}

fn handle_register(request: &Value, id: RequestId, service: &Arc<AttackService>) -> String {
    let Some(name) = request.get("name").and_then(Value::as_str) else {
        return protocol::error_frame(id, ErrorCode::BadRequest, "missing string field \"name\"");
    };
    let scheme = request
        .get("scheme")
        .and_then(Value::as_str)
        .unwrap_or("unknown");
    let h = request.get("h").and_then(Value::as_u64).unwrap_or(0) as usize;
    let Some(locked_text) = request.get("locked").and_then(Value::as_str) else {
        return protocol::error_frame(
            id,
            ErrorCode::BadRequest,
            "missing string field \"locked\" (bench-format netlist)",
        );
    };
    let Some(oracle_text) = request.get("oracle").and_then(Value::as_str) else {
        return protocol::error_frame(
            id,
            ErrorCode::BadRequest,
            "missing string field \"oracle\" (bench-format netlist)",
        );
    };
    let locked = match bench_format::parse(locked_text) {
        Ok(netlist) => netlist,
        Err(error) => {
            return protocol::error_frame(
                id,
                ErrorCode::BadNetlist,
                &format!("locked netlist: {error}"),
            );
        }
    };
    let oracle_netlist = match bench_format::parse(oracle_text) {
        Ok(netlist) => netlist,
        Err(error) => {
            return protocol::error_frame(
                id,
                ErrorCode::BadNetlist,
                &format!("oracle netlist: {error}"),
            );
        }
    };
    if oracle_netlist.num_key_inputs() != 0 {
        return protocol::error_frame(
            id,
            ErrorCode::BadNetlist,
            "oracle netlist must be key-free (it answers for the original circuit)",
        );
    }
    let oracle = Arc::new(SimOracle::new(oracle_netlist));
    match service.register_target(name, scheme, h, locked, oracle) {
        Ok(info) => protocol::register_frame(id, &info, false),
        Err(RegisterError::Exists) => match service.target_info(name) {
            Some(info) => protocol::register_frame(id, &info, true),
            None => protocol::error_frame(id, ErrorCode::ShuttingDown, "target vanished"),
        },
        Err(RegisterError::PoolFull) => {
            protocol::error_frame(id, ErrorCode::PoolFull, "target pool is full")
        }
        Err(RegisterError::ShuttingDown) => {
            protocol::error_frame(id, ErrorCode::ShuttingDown, "service is shutting down")
        }
        Err(RegisterError::BadTarget(reason)) => {
            protocol::error_frame(id, ErrorCode::BadNetlist, &reason)
        }
    }
}

fn handle_attack(
    request: &Value,
    id: RequestId,
    service: &Arc<AttackService>,
    client: fall::service::ClientId,
    reply_tx: &Sender<JobReport>,
) -> String {
    let Some(target) = request.get("target").and_then(Value::as_str) else {
        return protocol::error_frame(id, ErrorCode::BadRequest, "missing string field \"target\"");
    };
    let kind_name = request.get("kind").and_then(Value::as_str).unwrap_or("sat");
    let kind = match kind_name {
        "sat" => JobKind::SatAttack,
        "fall" => JobKind::Fall {
            h: request.get("h").and_then(Value::as_u64).map(|h| h as usize),
        },
        "confirm" => {
            let Some(items) = request.get("shortlist").and_then(Value::as_array) else {
                return protocol::error_frame(
                    id,
                    ErrorCode::BadRequest,
                    "kind \"confirm\" requires a \"shortlist\" array of key bitstrings",
                );
            };
            let mut shortlist = Vec::with_capacity(items.len());
            for item in items {
                let Some(text) = item.as_str() else {
                    return protocol::error_frame(
                        id,
                        ErrorCode::BadRequest,
                        "shortlist entries must be key bitstrings",
                    );
                };
                match key_from_wire(text) {
                    Ok(key) => shortlist.push(key),
                    Err(reason) => {
                        return protocol::error_frame(id, ErrorCode::BadRequest, &reason);
                    }
                }
            }
            JobKind::Confirm { shortlist }
        }
        other => {
            return protocol::error_frame(
                id,
                ErrorCode::BadRequest,
                &format!("unknown attack kind {other:?} (expected sat, fall or confirm)"),
            );
        }
    };
    let timeout = match protocol::parse_timeout_ms(request) {
        Ok(millis) => millis.map(Duration::from_millis),
        Err(reason) => return protocol::error_frame(id, ErrorCode::BadRequest, &reason),
    };
    let spec = JobSpec {
        kind,
        timeout,
        tag: id.map_or(0, |id| id.saturating_add(1)),
    };
    match service.submit(target, client, spec, reply_tx.clone()) {
        Ok(job_id) => protocol::job_accepted_frame(id, job_id),
        Err(SubmitError::Busy { queued, capacity }) => protocol::busy_frame(id, queued, capacity),
        Err(SubmitError::UnknownTarget) => {
            protocol::error_frame(id, ErrorCode::UnknownTarget, "no such target")
        }
        Err(SubmitError::ShuttingDown) => {
            protocol::error_frame(id, ErrorCode::ShuttingDown, "service is shutting down")
        }
        Err(SubmitError::BadRequest(reason)) => {
            protocol::error_frame(id, ErrorCode::BadRequest, &reason)
        }
    }
}
