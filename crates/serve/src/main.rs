//! The `fall-serve` binary: bind, print the address, serve until a wire
//! `shutdown` request arrives.
//!
//! ```text
//! fall-serve [--addr HOST:PORT] [--queue-capacity N] [--workers N]
//!            [--max-targets N] [--timeout-ms N] [--max-frame BYTES]
//!            [--no-remote-shutdown]
//! ```

use std::time::Duration;

use fall_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: fall-serve [--addr HOST:PORT] [--queue-capacity N] [--workers N] \
         [--max-targets N] [--timeout-ms N] [--max-frame BYTES] [--no-remote-shutdown]"
    );
    std::process::exit(2);
}

fn parse_value<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(text) = args.next() else {
        eprintln!("fall-serve: {flag} requires a value");
        usage();
    };
    let Ok(value) = text.parse() else {
        eprintln!("fall-serve: invalid value {text:?} for {flag}");
        usage();
    };
    value
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7441".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => config.addr = parse_value(&mut args, "--addr"),
            "--queue-capacity" => {
                config.service.queue_capacity = parse_value(&mut args, "--queue-capacity");
            }
            "--workers" => {
                config.service.workers_per_target = parse_value(&mut args, "--workers");
            }
            "--max-targets" => {
                config.service.max_targets = parse_value(&mut args, "--max-targets");
            }
            "--timeout-ms" => {
                config.service.default_timeout =
                    Duration::from_millis(parse_value(&mut args, "--timeout-ms"));
            }
            "--max-frame" => config.max_frame = parse_value(&mut args, "--max-frame"),
            "--no-remote-shutdown" => config.allow_remote_shutdown = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fall-serve: unknown flag {other:?}");
                usage();
            }
        }
    }
    match Server::start(config) {
        Ok(server) => {
            println!("fall-serve listening on {}", server.local_addr());
            server.wait();
        }
        Err(error) => {
            eprintln!("fall-serve: failed to start: {error}");
            std::process::exit(1);
        }
    }
}
