//! Wire-protocol encoding and decoding.
//!
//! One request or response is one JSON object on one line (see
//! `docs/PROTOCOL.md` for the full specification).  This module converts
//! between [`netshim::Value`] documents and the typed requests/responses the
//! server core works with; it performs no I/O.

use fall::service::{JobReport, MetricSample, TargetInfo};
use locking::Key;
use netshim::Value;

/// Protocol revision reported by `hello`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Machine-readable error codes of the `error` field in failure responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON.
    ParseError,
    /// The frame was valid JSON but not a valid request for the operation.
    BadRequest,
    /// The `op` field named no known operation.
    UnknownOp,
    /// The addressed target is not registered.
    UnknownTarget,
    /// The target's job queue is full; retry later.
    Busy,
    /// The target pool is at capacity.
    PoolFull,
    /// A shipped netlist failed to parse or is unusable.
    BadNetlist,
    /// A frame exceeded the server's size limit; the connection closes.
    Oversized,
    /// The server is shutting down.
    ShuttingDown,
}

impl ErrorCode {
    /// The stable wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownTarget => "unknown_target",
            ErrorCode::Busy => "busy",
            ErrorCode::PoolFull => "pool_full",
            ErrorCode::BadNetlist => "bad_netlist",
            ErrorCode::Oversized => "oversized",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

/// A request id as it appeared on the wire: requests may omit it, and
/// responses echo it only when present.
pub type RequestId = Option<u64>;

/// Renders a key as the wire bitstring (`"0101"`, character `i` = key input
/// `i`).
pub fn key_to_wire(key: &Key) -> String {
    key.bits()
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect()
}

/// Parses a wire bitstring into a key.
pub fn key_from_wire(text: &str) -> Result<Key, String> {
    let mut bits = Vec::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '0' => bits.push(false),
            '1' => bits.push(true),
            other => return Err(format!("invalid key character {other:?}")),
        }
    }
    if bits.is_empty() {
        return Err("empty key bitstring".into());
    }
    Ok(Key::new(bits))
}

/// Parses the optional `timeout_ms` request field.
///
/// Absent means "use the server default" (`Ok(None)`).  When present it
/// must be a **positive integer** count of milliseconds: zero would arm a
/// deadline that expires before any worker can pick the job up, and
/// non-numeric, negative or fractional values used to be silently dropped —
/// handing the client the default deadline it explicitly tried to
/// override.  Both now fail typed, for a `bad_request` response.
pub fn parse_timeout_ms(request: &Value) -> Result<Option<u64>, String> {
    let Some(value) = request.get("timeout_ms") else {
        return Ok(None);
    };
    match value.as_u64() {
        Some(0) => Err("\"timeout_ms\" must be a positive integer (got 0)".into()),
        Some(millis) => Ok(Some(millis)),
        None => Err(format!(
            "\"timeout_ms\" must be a positive integer (got {value})"
        )),
    }
}

/// Starts a response object, echoing the request id when present.
fn base(ok: bool, id: RequestId) -> Vec<(String, Value)> {
    let mut fields = vec![("ok".to_string(), Value::from(ok))];
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::from(id)));
    }
    fields
}

/// Serialises a response object to one frame.
fn frame(fields: Vec<(String, Value)>) -> String {
    Value::object(fields).to_string()
}

/// An error response.
pub fn error_frame(id: RequestId, code: ErrorCode, message: &str) -> String {
    let mut fields = base(false, id);
    fields.push(("error".to_string(), Value::from(code.as_str())));
    fields.push(("message".to_string(), Value::from(message)));
    frame(fields)
}

/// A `busy` response carrying the queue occupancy, so clients can implement
/// informed backoff.
pub fn busy_frame(id: RequestId, queued: usize, capacity: usize) -> String {
    let mut fields = base(false, id);
    fields.push(("error".to_string(), Value::from(ErrorCode::Busy.as_str())));
    fields.push((
        "message".to_string(),
        Value::from(format!("queue full ({queued}/{capacity}); retry later")),
    ));
    fields.push(("queued".to_string(), Value::from(queued)));
    fields.push(("capacity".to_string(), Value::from(capacity)));
    frame(fields)
}

/// The `hello` response.
pub fn hello_frame(id: RequestId, targets: &[TargetInfo]) -> String {
    let mut fields = base(true, id);
    fields.push(("server".to_string(), Value::from("fall-serve")));
    fields.push(("protocol".to_string(), Value::from(PROTOCOL_VERSION)));
    fields.push((
        "targets".to_string(),
        Value::Array(
            targets
                .iter()
                .map(|t| Value::from(t.name.as_str()))
                .collect(),
        ),
    ));
    frame(fields)
}

/// A successful `register` response; `existing` is `true` when the target
/// was already registered (registration is idempotent by name).
pub fn register_frame(id: RequestId, info: &TargetInfo, existing: bool) -> String {
    let mut fields = base(true, id);
    fields.push(("existing".to_string(), Value::from(existing)));
    fields.push(("target".to_string(), target_value(info)));
    frame(fields)
}

fn target_value(info: &TargetInfo) -> Value {
    Value::object([
        ("name", Value::from(info.name.as_str())),
        ("scheme", Value::from(info.scheme.as_str())),
        ("inputs", Value::from(info.inputs)),
        ("outputs", Value::from(info.outputs)),
        ("key_width", Value::from(info.key_width)),
        ("workers", Value::from(info.workers)),
    ])
}

/// The immediate acknowledgement of an accepted `attack` request.
pub fn job_accepted_frame(id: RequestId, job_id: u64) -> String {
    let mut fields = base(true, id);
    fields.push(("job".to_string(), Value::from(job_id)));
    frame(fields)
}

/// The asynchronous completion event for a job.  `id` is the id of the
/// originating `attack` request, when it had one.
pub fn job_event_frame(id: RequestId, report: &JobReport) -> String {
    let mut fields = vec![("event".to_string(), Value::from("job"))];
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::from(id)));
    }
    fields.push(("job".to_string(), Value::from(report.job_id)));
    fields.push(("status".to_string(), Value::from(report.status.as_str())));
    fields.push((
        "key".to_string(),
        match &report.key {
            Some(key) => Value::from(key_to_wire(key)),
            None => Value::Null,
        },
    ));
    if !report.shortlist.is_empty() {
        fields.push((
            "shortlist".to_string(),
            Value::Array(
                report
                    .shortlist
                    .iter()
                    .map(|key| Value::from(key_to_wire(key)))
                    .collect(),
            ),
        ));
    }
    fields.push(("iterations".to_string(), Value::from(report.iterations)));
    fields.push((
        "oracle_queries".to_string(),
        Value::from(report.oracle_queries),
    ));
    fields.push((
        "queued_ms".to_string(),
        Value::from(report.queued.as_secs_f64() * 1e3),
    ));
    fields.push((
        "elapsed_ms".to_string(),
        Value::from(report.elapsed.as_secs_f64() * 1e3),
    ));
    frame(fields)
}

/// The `metrics` response.  The `metrics` member is exactly the JSON dialect
/// of `fall-bench`'s `MetricReport`, so offline tooling can parse it
/// directly.
pub fn metrics_frame(id: RequestId, samples: &[MetricSample]) -> String {
    let mut fields = base(true, id);
    fields.push((
        "metrics".to_string(),
        Value::object(samples.iter().map(|sample| {
            (
                sample.name.clone(),
                Value::object([
                    ("value", Value::from(sample.value)),
                    ("higher_is_better", Value::from(sample.higher_is_better)),
                ]),
            )
        })),
    ));
    frame(fields)
}

/// The `metrics` response in Prometheus text exposition: the rendered text
/// travels as one JSON string member, so the framing stays line-delimited.
pub fn prometheus_frame(id: RequestId, samples: &[MetricSample]) -> String {
    let mut fields = base(true, id);
    fields.push(("format".to_string(), Value::from("prometheus")));
    fields.push((
        "metrics_text".to_string(),
        Value::from(fall::trace::prometheus_text(samples)),
    ));
    frame(fields)
}

/// The `trace` response: the flight recorder's state plus, for the `dump`
/// action, the recorded events as an embedded Chrome trace-event document
/// (`trace` member — extract it and save to a file to load in Perfetto).
pub fn trace_frame(id: RequestId, enabled: bool, events: usize, dump: Option<Value>) -> String {
    let mut fields = base(true, id);
    fields.push(("enabled".to_string(), Value::from(enabled)));
    fields.push(("events".to_string(), Value::from(events)));
    if let Some(dump) = dump {
        fields.push(("trace".to_string(), dump));
    }
    frame(fields)
}

/// A bare `{"ok":true}` acknowledgement (e.g. for `shutdown`).
pub fn ok_frame(id: RequestId) -> String {
    frame(base(true, id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip_through_the_wire_encoding() {
        let key = Key::new(vec![false, true, true, false, true]);
        let wire = key_to_wire(&key);
        assert_eq!(wire, "01101");
        assert_eq!(key_from_wire(&wire).expect("parse"), key);
        assert!(key_from_wire("01x1").is_err());
        assert!(key_from_wire("").is_err());
    }

    #[test]
    fn frames_are_single_lines() {
        let frames = [
            error_frame(Some(7), ErrorCode::BadRequest, "nope"),
            busy_frame(None, 3, 4),
            ok_frame(Some(1)),
        ];
        for frame in frames {
            assert!(!frame.contains('\n'), "{frame}");
            let value = Value::parse(&frame).expect("valid JSON");
            assert!(value.get("ok").is_some());
        }
    }

    #[test]
    fn timeout_ms_accepts_positive_integers_and_rejects_the_rest() {
        let with = |raw: &str| Value::parse(&format!("{{\"timeout_ms\":{raw}}}")).expect("JSON");
        assert_eq!(
            parse_timeout_ms(&Value::parse("{}").expect("JSON")),
            Ok(None)
        );
        assert_eq!(parse_timeout_ms(&with("5000")), Ok(Some(5000)));
        assert_eq!(parse_timeout_ms(&with("1")), Ok(Some(1)));
        for raw in ["0", "-5", "1.5", "\"5000\"", "null", "true", "[1]"] {
            assert!(
                parse_timeout_ms(&with(raw)).is_err(),
                "timeout_ms {raw} must be rejected"
            );
        }
    }

    #[test]
    fn error_frames_carry_code_and_echoed_id() {
        let frame = error_frame(Some(42), ErrorCode::UnknownTarget, "no such target");
        let value = Value::parse(&frame).expect("valid JSON");
        assert_eq!(value.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(value.get("id").and_then(Value::as_u64), Some(42));
        assert_eq!(
            value.get("error").and_then(Value::as_str),
            Some("unknown_target")
        );
    }
}
