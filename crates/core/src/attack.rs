//! The complete FALL attack pipeline (Figure 4).
//!
//! `comparator identification → support-set matching → functional analyses →
//! equivalence checking → (optional) key confirmation`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use locking::Key;
use netlist::{Netlist, NodeId};

use crate::equivalence::candidate_equals_strip_in;
use crate::functional::{
    analyze_unateness_in, distance_2h_in, sliding_window_in, Analysis, CubeAssignment,
    PrefilterStats,
};
use crate::key_confirmation::{key_confirmation_in, KeyConfirmationConfig};
use crate::oracle::Oracle;
use crate::parallel::CancelToken;
use crate::session::AttackSession;
use crate::structural::{find_candidates, find_comparators, find_comparators_sat, CandidateNodes};

/// Configuration of the FALL attack.
#[derive(Clone, Debug)]
pub struct FallAttackConfig {
    /// The SFLL-HD parameter `h` (0 for TTLock), which the adversary knows
    /// under the threat model of § II-A.
    pub h: usize,
    /// Analyses to run per candidate; `None` selects
    /// [`Analysis::applicable`] for the observed key width.
    pub analyses: Option<Vec<Analysis>>,
    /// Verify suspected cubes with combinational equivalence checking
    /// (§ IV-C).  Disabling this is only useful for ablation studies.
    pub equivalence_check: bool,
    /// Use the SAT-based comparator classifier instead of cofactor
    /// enumeration (ablation of § III-A).
    pub sat_comparators: bool,
    /// Worker threads for the per-candidate functional analyses and
    /// equivalence checks (stages 3 + 4).  `1` (the default) runs the
    /// (candidate × analysis) task list serially through one shared session;
    /// larger values fan the same tasks across per-worker sessions and merge
    /// the results in serial task order, so the shortlist is identical.
    pub analysis_workers: usize,
    /// Cancel the remaining analysis tasks as soon as one key survives the
    /// equivalence check (first-winner semantics via [`CancelToken`]).  The
    /// surviving key is always one the full sweep would also have
    /// shortlisted, but the shortlist may be a strict subset of it, so this
    /// defaults to `false`.
    pub stop_after_first_key: bool,
    /// Budgets for the optional key-confirmation stage.
    pub confirmation: KeyConfirmationConfig,
    /// External cancellation flag, installed into every [`AttackSession`] the
    /// attack creates (see [`crate::session::AttackSession::set_interrupt`]).
    /// Once it flips to `true`, in-flight solves return at their next check
    /// point, the remaining analysis tasks are skipped, and the attack
    /// returns with whatever it had (typically [`FallStatus::NoKeysFound`] or
    /// [`FallStatus::ConfirmationFailed`]).  Used by [`crate::service`] to
    /// enforce per-job deadlines.
    pub interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl FallAttackConfig {
    /// Default configuration for a known `h`.
    pub fn for_h(h: usize) -> FallAttackConfig {
        FallAttackConfig {
            h,
            analyses: None,
            equivalence_check: true,
            sat_comparators: false,
            analysis_workers: 1,
            stop_after_first_key: false,
            confirmation: KeyConfirmationConfig::default(),
            interrupt: None,
        }
    }
}

/// How the attack concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallStatus {
    /// Exactly one key was shortlisted: the attack succeeded *without* oracle
    /// access (the 90 %-of-successes case reported in the paper).
    UniqueKey,
    /// Several keys were shortlisted and key confirmation identified the
    /// correct one using the oracle.
    ConfirmedKey,
    /// Several keys were shortlisted but no oracle was available to pick one.
    MultipleKeys,
    /// Key confirmation proved that none of the shortlisted keys is correct.
    ConfirmationFailed,
    /// The structural stages produced no candidate cube-stripper nodes.
    NoCandidates,
    /// Candidates existed but every functional analysis returned ⊥ (or the
    /// equivalence check rejected every suspected cube).
    NoKeysFound,
}

impl FallStatus {
    /// Returns `true` if the attack produced at least one credible key.
    pub fn is_success(self) -> bool {
        matches!(
            self,
            FallStatus::UniqueKey | FallStatus::ConfirmedKey | FallStatus::MultipleKeys
        )
    }
}

/// Wall-clock time spent in each stage of the pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Comparator identification (§ III-A).
    pub comparators: Duration,
    /// Support-set matching (§ III-B).
    pub support_matching: Duration,
    /// Functional analyses (§ IV-A, § IV-B).
    pub functional: Duration,
    /// Equivalence checking (§ IV-C).
    pub equivalence: Duration,
    /// Key confirmation (§ V).
    pub confirmation: Duration,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.comparators
            + self.support_matching
            + self.functional
            + self.equivalence
            + self.confirmation
    }
}

/// The outcome of a FALL attack.
#[derive(Clone, Debug)]
pub struct FallAttackResult {
    /// How the attack concluded.
    pub status: FallStatus,
    /// All distinct keys that survived the functional analyses (and the
    /// equivalence check, when enabled).
    pub shortlisted_keys: Vec<Key>,
    /// The key singled out by key confirmation, when that stage ran.
    pub confirmed_key: Option<Key>,
    /// Number of comparators identified.
    pub num_comparators: usize,
    /// Number of candidate cube-stripper nodes examined.
    pub num_candidates: usize,
    /// Suspected key width `m = |Comp|`.
    pub key_width: usize,
    /// Which analyses produced at least one surviving key.
    pub analyses_used: Vec<Analysis>,
    /// Word-parallel prefilter counters summed over every analysis session
    /// (refuted polarities/candidates and simulated-pattern volume).
    pub prefilter: PrefilterStats,
    /// Per-stage wall-clock timings.  With `analysis_workers > 1` the
    /// `functional` and `equivalence` entries are summed across workers, so
    /// they measure aggregate CPU time rather than elapsed time.
    pub timings: StageTimings,
}

impl FallAttackResult {
    /// The single best key produced by the attack, if any: the confirmed key
    /// when available, otherwise the unique shortlisted key.
    pub fn best_key(&self) -> Option<&Key> {
        self.confirmed_key
            .as_ref()
            .or(match self.shortlisted_keys.as_slice() {
                [only] => Some(only),
                _ => None,
            })
    }
}

/// Runs the full FALL attack on a locked netlist.
///
/// `oracle` is only used when more than one key is shortlisted; pass `None`
/// for a purely oracle-less attack.
pub fn fall_attack(
    locked: &Netlist,
    oracle: Option<&dyn Oracle>,
    config: &FallAttackConfig,
) -> FallAttackResult {
    let mut timings = StageTimings::default();

    // Stage 1: comparator identification.
    let t = Instant::now();
    let comparators = if config.sat_comparators {
        find_comparators_sat(locked)
    } else {
        find_comparators(locked)
    };
    timings.comparators = t.elapsed();

    // Stage 2: support-set matching.
    let t = Instant::now();
    let candidates = find_candidates(locked, &comparators);
    timings.support_matching = t.elapsed();

    let base = |status: FallStatus, timings: StageTimings| FallAttackResult {
        status,
        shortlisted_keys: Vec::new(),
        confirmed_key: None,
        num_comparators: comparators.len(),
        num_candidates: candidates.candidates.len(),
        key_width: candidates.key_width(),
        analyses_used: Vec::new(),
        prefilter: PrefilterStats::default(),
        timings,
    };

    if candidates.candidates.is_empty()
        || candidates.key_width() == 0
        || candidates.paired_keys.len() != locked.num_key_inputs()
    {
        return base(FallStatus::NoCandidates, timings);
    }

    // Stage 3 + 4: functional analyses and equivalence checking.  One
    // persistent attack session serves every candidate, every analysis, the
    // equivalence checks and (below) the key-confirmation stage: cone
    // encodings, the input-difference vector and the popcount network are all
    // built once and shared.
    let mut session = AttackSession::new(locked);
    session.set_interrupt(config.interrupt.clone());
    let analyses = config
        .analyses
        .clone()
        .unwrap_or_else(|| Analysis::applicable(config.h, candidates.key_width()));
    // The (candidate × analysis) task list, in the order the serial sweep
    // visits it.  The parallel runner merges per-task results back in this
    // order, so both paths shortlist identical keys in identical order.
    let tasks: Vec<(NodeId, Analysis)> = candidates
        .candidates
        .iter()
        .flat_map(|&c| analyses.iter().map(move |&a| (c, a)))
        .collect();
    let mut shortlisted: Vec<Key> = Vec::new();
    let mut analyses_used: Vec<Analysis> = Vec::new();
    let mut prefilter = PrefilterStats::default();

    let workers = config.analysis_workers.min(tasks.len()).max(1);
    let mut survivors: Vec<Option<(Key, Analysis)>> = Vec::new();
    if workers <= 1 {
        let mut functional_time = Duration::ZERO;
        let mut equivalence_time = Duration::ZERO;
        for &(candidate, analysis) in &tasks {
            if externally_interrupted(config) {
                break;
            }
            let outcome = run_task(
                &mut session,
                locked,
                &candidates,
                candidate,
                analysis,
                config,
                &mut functional_time,
                &mut equivalence_time,
            );
            let found = outcome.is_some();
            survivors.push(outcome);
            if found && config.stop_after_first_key {
                break;
            }
        }
        timings.functional = functional_time;
        timings.equivalence = equivalence_time;
        prefilter.merge(&session.prefilter_stats());
    } else {
        let next = AtomicUsize::new(0);
        let cancel = CancelToken::new();
        let slots: Mutex<Vec<Option<(Key, Analysis)>>> = Mutex::new(vec![None; tasks.len()]);
        let functional_nanos = AtomicU64::new(0);
        let equivalence_nanos = AtomicU64::new(0);
        let merged = Mutex::new(PrefilterStats::default());
        let live_workers = AtomicUsize::new(workers);
        std::thread::scope(|scope| {
            if let Some(flag) = config.interrupt.clone() {
                // Bridge the external interrupt into the pool's shared token
                // so a deadline stops workers mid-solve, not merely between
                // tasks.  The watcher exits as soon as the pool drains or the
                // token fires for any reason (e.g. first-winner mode).
                let cancel = cancel.clone();
                let live_workers = &live_workers;
                scope.spawn(move || {
                    while live_workers.load(Ordering::Relaxed) > 0 && !cancel.is_cancelled() {
                        if flag.load(Ordering::Relaxed) {
                            cancel.cancel();
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                });
            }
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut session = AttackSession::new(locked);
                    session.set_interrupt(Some(cancel.as_flag()));
                    loop {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(candidate, analysis)) = tasks.get(index) else {
                            break;
                        };
                        let mut functional_time = Duration::ZERO;
                        let mut equivalence_time = Duration::ZERO;
                        let outcome = run_task(
                            &mut session,
                            locked,
                            &candidates,
                            candidate,
                            analysis,
                            config,
                            &mut functional_time,
                            &mut equivalence_time,
                        );
                        functional_nanos
                            .fetch_add(functional_time.as_nanos() as u64, Ordering::Relaxed);
                        equivalence_nanos
                            .fetch_add(equivalence_time.as_nanos() as u64, Ordering::Relaxed);
                        if let Some(outcome) = outcome {
                            slots.lock().expect("slots lock")[index] = Some(outcome);
                            if config.stop_after_first_key {
                                cancel.cancel();
                            }
                        }
                    }
                    let stats = session.prefilter_stats();
                    merged.lock().expect("stats lock").merge(&stats);
                    live_workers.fetch_sub(1, Ordering::Relaxed);
                });
            }
        });
        timings.functional = Duration::from_nanos(functional_nanos.into_inner());
        timings.equivalence = Duration::from_nanos(equivalence_nanos.into_inner());
        prefilter = merged.into_inner().expect("stats lock");
        survivors = slots.into_inner().expect("slots lock");
    }

    for (key, analysis) in survivors.into_iter().flatten() {
        if !shortlisted.contains(&key) {
            shortlisted.push(key);
        }
        if !analyses_used.contains(&analysis) {
            analyses_used.push(analysis);
        }
    }

    let mut result = base(FallStatus::NoKeysFound, timings);
    result.analyses_used = analyses_used;
    result.shortlisted_keys = shortlisted;
    result.prefilter = prefilter;

    match result.shortlisted_keys.len() {
        0 => result,
        1 => {
            result.status = FallStatus::UniqueKey;
            result
        }
        _ => match oracle {
            None => {
                result.status = FallStatus::MultipleKeys;
                result
            }
            Some(oracle) => {
                let t = Instant::now();
                let confirmation = key_confirmation_in(
                    &mut session,
                    oracle,
                    &result.shortlisted_keys,
                    &config.confirmation,
                );
                result.timings.confirmation = t.elapsed();
                match confirmation.key {
                    Some(key) => {
                        result.confirmed_key = Some(key);
                        result.status = FallStatus::ConfirmedKey;
                    }
                    None => {
                        result.status = FallStatus::ConfirmationFailed;
                    }
                }
                result
            }
        },
    }
}

/// Returns `true` once the configured external interrupt flag has fired.
fn externally_interrupted(config: &FallAttackConfig) -> bool {
    config
        .interrupt
        .as_ref()
        .is_some_and(|flag| flag.load(Ordering::Relaxed))
}

fn run_analysis(
    session: &mut AttackSession<'_>,
    candidate: NodeId,
    analysis: Analysis,
    h: usize,
) -> Option<CubeAssignment> {
    match analysis {
        Analysis::Unateness => analyze_unateness_in(session, candidate),
        Analysis::SlidingWindow => sliding_window_in(session, candidate, h),
        Analysis::Distance2H => distance_2h_in(session, candidate, h),
    }
}

/// One (candidate × analysis) task of stages 3 + 4: runs the analysis, then
/// the optional equivalence check, and maps a surviving cube to a key.
/// Shared by the serial sweep and the parallel workers.
#[allow(clippy::too_many_arguments)]
fn run_task(
    session: &mut AttackSession<'_>,
    locked: &Netlist,
    candidates: &CandidateNodes,
    candidate: NodeId,
    analysis: Analysis,
    config: &FallAttackConfig,
    functional_time: &mut Duration,
    equivalence_time: &mut Duration,
) -> Option<(Key, Analysis)> {
    let t = Instant::now();
    let cube = run_analysis(session, candidate, analysis, config.h);
    *functional_time += t.elapsed();
    let cube = cube?;
    if config.equivalence_check {
        let t = Instant::now();
        let equivalent = candidate_equals_strip_in(session, candidate, &cube, config.h);
        *equivalence_time += t.elapsed();
        if !equivalent {
            return None;
        }
    }
    cube_to_key(locked, candidates, &cube).map(|key| (key, analysis))
}

/// Maps a cube assignment over protected inputs to a key over the locked
/// circuit's key inputs using the comparator pairing.
fn cube_to_key(
    locked: &Netlist,
    candidates: &CandidateNodes,
    cube: &CubeAssignment,
) -> Option<Key> {
    let mut bits = vec![None; locked.num_key_inputs()];
    for (&input, &key_node) in candidates
        .protected_inputs
        .iter()
        .zip(&candidates.paired_keys)
    {
        let value = cube.iter().find(|&&(id, _)| id == input).map(|&(_, v)| v)?;
        let key_index = locked.key_input_position(key_node)?;
        bits[key_index] = Some(value);
    }
    bits.into_iter()
        .collect::<Option<Vec<bool>>>()
        .map(Key::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use locking::{LockingScheme, SfllHd, TtLock, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};

    fn original(name: &str) -> Netlist {
        generate(&RandomCircuitSpec::new(name, 14, 3, 90))
    }

    #[test]
    fn breaks_ttlock_without_an_oracle() {
        let original = original("fa_tt");
        let locked = TtLock::new(10)
            .with_seed(31)
            .lock(&original)
            .expect("lock")
            .optimized();
        let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(0));
        assert_eq!(result.status, FallStatus::UniqueKey, "{result:?}");
        assert_eq!(result.best_key(), Some(&locked.key));
        assert!(result.num_comparators >= 10);
        assert_eq!(result.key_width, 10);
    }

    #[test]
    fn breaks_sfll_hd1_without_an_oracle() {
        let original = original("fa_hd1");
        let locked = SfllHd::new(10, 1)
            .with_seed(8)
            .lock(&original)
            .expect("lock")
            .optimized();
        let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(1));
        assert!(result.status.is_success(), "{result:?}");
        assert!(result.shortlisted_keys.contains(&locked.key));
    }

    #[test]
    fn breaks_sfll_hd2_with_each_applicable_analysis() {
        let original = original("fa_hd2");
        let locked = SfllHd::new(12, 2)
            .with_seed(19)
            .lock(&original)
            .expect("lock")
            .optimized();
        for analysis in [Analysis::Distance2H, Analysis::SlidingWindow] {
            let mut config = FallAttackConfig::for_h(2);
            config.analyses = Some(vec![analysis]);
            let result = fall_attack(&locked.locked, None, &config);
            assert!(
                result.shortlisted_keys.contains(&locked.key),
                "{analysis:?}: {result:?}"
            );
        }
    }

    #[test]
    fn key_confirmation_resolves_ambiguity() {
        // Without the equivalence check, spurious cubes can survive; with an
        // oracle the confirmation stage must still recover the correct key.
        let original = original("fa_confirm");
        let locked = SfllHd::new(9, 1)
            .with_seed(77)
            .lock(&original)
            .expect("lock")
            .optimized();
        let oracle = SimOracle::new(locked.original.clone());
        let mut config = FallAttackConfig::for_h(1);
        config.equivalence_check = false;
        let result = fall_attack(&locked.locked, Some(&oracle), &config);
        assert!(result.status.is_success(), "{result:?}");
        let best = result.best_key().expect("a key was produced");
        assert!(locked.key_is_functionally_correct(best, 256, 9));
    }

    #[test]
    fn fails_cleanly_on_non_cube_stripping_schemes() {
        // Random XOR locking has no cube stripper; the structural stages find
        // comparators (the key XORs) but no candidate matches the support, or
        // the functional stages reject everything.
        let original = original("fa_xor");
        let locked = XorLock::new(8)
            .with_seed(3)
            .lock(&original)
            .expect("lock")
            .optimized();
        let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(0));
        assert!(
            matches!(
                result.status,
                FallStatus::NoCandidates | FallStatus::NoKeysFound
            ),
            "{result:?}"
        );
        assert!(result.shortlisted_keys.is_empty());
    }

    #[test]
    fn sat_comparator_ablation_agrees() {
        let original = original("fa_ablation");
        let locked = TtLock::new(8)
            .with_seed(12)
            .lock(&original)
            .expect("lock")
            .optimized();
        let mut config = FallAttackConfig::for_h(0);
        config.sat_comparators = true;
        let result = fall_attack(&locked.locked, None, &config);
        assert_eq!(result.status, FallStatus::UniqueKey);
        assert_eq!(result.best_key(), Some(&locked.key));
    }

    #[test]
    fn parallel_analyses_match_the_serial_sweep() {
        let original = original("fa_par");
        let locked = SfllHd::new(10, 1)
            .with_seed(8)
            .lock(&original)
            .expect("lock")
            .optimized();
        let serial = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(1));
        assert!(serial.prefilter.patterns_simulated > 0);
        for workers in [2usize, 4] {
            let mut config = FallAttackConfig::for_h(1);
            config.analysis_workers = workers;
            let parallel = fall_attack(&locked.locked, None, &config);
            assert_eq!(parallel.status, serial.status, "workers {workers}");
            assert_eq!(parallel.shortlisted_keys, serial.shortlisted_keys);
            assert_eq!(parallel.analyses_used, serial.analyses_used);
            assert_eq!(parallel.prefilter, serial.prefilter);
        }
    }

    #[test]
    fn stop_after_first_key_still_finds_a_shortlisted_key() {
        let original = original("fa_first");
        let locked = TtLock::new(10)
            .with_seed(31)
            .lock(&original)
            .expect("lock")
            .optimized();
        let full = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(0));
        let mut config = FallAttackConfig::for_h(0);
        config.analysis_workers = 2;
        config.stop_after_first_key = true;
        let result = fall_attack(&locked.locked, None, &config);
        assert!(result.status.is_success(), "{result:?}");
        assert!(result
            .shortlisted_keys
            .iter()
            .all(|k| full.shortlisted_keys.contains(k)));
    }

    #[test]
    fn timings_are_recorded() {
        let original = original("fa_time");
        let locked = TtLock::new(6)
            .with_seed(1)
            .lock(&original)
            .expect("lock")
            .optimized();
        let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(0));
        assert!(result.timings.total() > Duration::ZERO);
        assert!(result.timings.comparators > Duration::ZERO);
    }
}
