//! Input/output oracles.
//!
//! The adversary model (§ II-A) optionally grants access to an *activated*
//! chip: a black box that maps primary-input patterns to output patterns
//! under the correct (secret) key.  [`SimOracle`] plays that role by
//! simulating the original unlocked netlist; [`CountingOracle`] wraps any
//! oracle and counts queries, which the experiments report.

use std::sync::atomic::{AtomicUsize, Ordering};

use netlist::Netlist;

/// A black-box input/output oracle for an activated circuit.
pub trait Oracle {
    /// Returns the circuit outputs for the given primary-input pattern.
    fn query(&self, inputs: &[bool]) -> Vec<bool>;

    /// Number of primary inputs the oracle expects.
    fn num_inputs(&self) -> usize;

    /// Number of outputs the oracle produces.
    fn num_outputs(&self) -> usize;
}

/// An oracle backed by simulation of the original (unlocked) netlist.
#[derive(Clone, Debug)]
pub struct SimOracle {
    netlist: Netlist,
}

impl SimOracle {
    /// Creates an oracle from the original netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has key inputs (an activated chip has none).
    pub fn new(original: Netlist) -> SimOracle {
        assert_eq!(
            original.num_key_inputs(),
            0,
            "oracle circuit must be the unlocked original"
        );
        SimOracle { netlist: original }
    }

    /// Creates an oracle from a *locked* netlist activated with its correct
    /// key: key inputs are driven by the key values on every query.
    pub fn from_locked(locked: Netlist, key: &locking::Key) -> ActivatedOracle {
        ActivatedOracle {
            netlist: locked,
            key: key.bits().to_vec(),
        }
    }
}

impl Oracle for SimOracle {
    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        self.netlist.evaluate(inputs, &[])
    }

    fn num_inputs(&self) -> usize {
        self.netlist.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.netlist.num_outputs()
    }
}

/// An oracle backed by a locked netlist plus its correct key (an "activated
/// IC bought on the open market").
#[derive(Clone, Debug)]
pub struct ActivatedOracle {
    netlist: Netlist,
    key: Vec<bool>,
}

impl Oracle for ActivatedOracle {
    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        self.netlist.evaluate(inputs, &self.key)
    }

    fn num_inputs(&self) -> usize {
        self.netlist.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.netlist.num_outputs()
    }
}

/// Wraps an oracle and counts the number of queries issued.
///
/// The counter is atomic, so a `CountingOracle` over a `Sync` oracle is
/// itself `Sync` and can sit underneath the parallel engine's shared cache.
#[derive(Debug)]
pub struct CountingOracle<O> {
    inner: O,
    queries: AtomicUsize,
}

impl<O: Oracle> CountingOracle<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> CountingOracle<O> {
        CountingOracle {
            inner,
            queries: AtomicUsize::new(0),
        }
    }

    /// Number of queries issued so far.
    pub fn queries(&self) -> usize {
        self.queries.load(Ordering::Relaxed)
    }

    /// Returns the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for CountingOracle<O> {
    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.inner.query(inputs)
    }

    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::{LockingScheme, TtLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;

    #[test]
    fn sim_oracle_matches_netlist() {
        let nl = generate(&RandomCircuitSpec::new("oracle", 6, 2, 30));
        let oracle = SimOracle::new(nl.clone());
        assert_eq!(oracle.num_inputs(), 6);
        assert_eq!(oracle.num_outputs(), 2);
        for pattern in 0..64u64 {
            let bits = pattern_to_bits(pattern, 6);
            assert_eq!(oracle.query(&bits), nl.evaluate(&bits, &[]));
        }
    }

    #[test]
    fn activated_oracle_equals_original() {
        let nl = generate(&RandomCircuitSpec::new("activated", 6, 2, 30));
        let locked = TtLock::new(4).with_seed(8).lock(&nl).expect("lock");
        let oracle = SimOracle::from_locked(locked.locked.clone(), &locked.key);
        for pattern in 0..64u64 {
            let bits = pattern_to_bits(pattern, 6);
            assert_eq!(oracle.query(&bits), nl.evaluate(&bits, &[]));
        }
    }

    #[test]
    fn counting_oracle_counts() {
        let nl = generate(&RandomCircuitSpec::new("count", 4, 1, 10));
        let oracle = CountingOracle::new(SimOracle::new(nl));
        assert_eq!(oracle.queries(), 0);
        let _ = oracle.query(&[false; 4]);
        let _ = oracle.query(&[true; 4]);
        assert_eq!(oracle.queries(), 2);
    }

    #[test]
    #[should_panic(expected = "unlocked original")]
    fn sim_oracle_rejects_locked_netlists() {
        let nl = generate(&RandomCircuitSpec::new("bad", 6, 2, 30));
        let locked = TtLock::new(4).lock(&nl).expect("lock");
        let _ = SimOracle::new(locked.locked);
    }
}
