//! Input/output oracles.
//!
//! The adversary model (§ II-A) optionally grants access to an *activated*
//! chip: a black box that maps primary-input patterns to output patterns
//! under the correct (secret) key.  [`SimOracle`] plays that role by
//! simulating the original unlocked netlist; [`CountingOracle`] wraps any
//! oracle and counts queries, which the experiments report.

use std::sync::atomic::{AtomicUsize, Ordering};

use netlist::{Netlist, WideSim};

/// A black-box input/output oracle for an activated circuit.
pub trait Oracle {
    /// Returns the circuit outputs for the given primary-input pattern.
    fn query(&self, inputs: &[bool]) -> Vec<bool>;

    /// Answers `width * 64` patterns in one word-batched call.
    ///
    /// `inputs` holds `num_inputs() * width` words blocked input-major: the
    /// lanes of input `i` occupy `inputs[i * width .. (i + 1) * width]`, and
    /// bit `b` of lane `l` carries pattern number `l * 64 + b`.  Returns
    /// `num_outputs() * width` words blocked the same way.
    ///
    /// The default implementation unpacks the block and issues one scalar
    /// [`Oracle::query`] per pattern; simulation-backed oracles override it
    /// to answer whole blocks natively, and wrappers override it to observe
    /// or deduplicate batches.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `inputs.len() != num_inputs() * width`.
    fn query_words(&self, inputs: &[u64], width: usize) -> Vec<u64> {
        assert!(width > 0, "batched query needs at least one word");
        assert_eq!(
            inputs.len(),
            self.num_inputs() * width,
            "batched stimulus width mismatch"
        );
        let mut out = vec![0u64; self.num_outputs() * width];
        let mut bits = vec![false; self.num_inputs()];
        for lane in 0..width {
            for bit in 0..64 {
                for (i, b) in bits.iter_mut().enumerate() {
                    *b = (inputs[i * width + lane] >> bit) & 1 == 1;
                }
                let outputs = self.query(&bits);
                for (o, &v) in outputs.iter().enumerate() {
                    out[o * width + lane] |= u64::from(v) << bit;
                }
            }
        }
        out
    }

    /// Number of primary inputs the oracle expects.
    fn num_inputs(&self) -> usize;

    /// Number of outputs the oracle produces.
    fn num_outputs(&self) -> usize;
}

/// An oracle backed by simulation of the original (unlocked) netlist.
#[derive(Clone, Debug)]
pub struct SimOracle {
    netlist: Netlist,
}

impl SimOracle {
    /// Creates an oracle from the original netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has key inputs (an activated chip has none).
    pub fn new(original: Netlist) -> SimOracle {
        assert_eq!(
            original.num_key_inputs(),
            0,
            "oracle circuit must be the unlocked original"
        );
        SimOracle { netlist: original }
    }

    /// Creates an oracle from a *locked* netlist activated with its correct
    /// key: key inputs are driven by the key values on every query.
    pub fn from_locked(locked: Netlist, key: &locking::Key) -> ActivatedOracle {
        ActivatedOracle {
            netlist: locked,
            key: key.bits().to_vec(),
        }
    }
}

impl Oracle for SimOracle {
    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        self.netlist.evaluate(inputs, &[])
    }

    fn query_words(&self, inputs: &[u64], width: usize) -> Vec<u64> {
        let mut sim = WideSim::new(&self.netlist, width);
        sim.run(&self.netlist, inputs, &[])
            .expect("batched stimulus width mismatch");
        let mut out = Vec::with_capacity(self.netlist.num_outputs() * width);
        sim.extend_with_outputs(&self.netlist, &mut out);
        out
    }

    fn num_inputs(&self) -> usize {
        self.netlist.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.netlist.num_outputs()
    }
}

/// An oracle backed by a locked netlist plus its correct key (an "activated
/// IC bought on the open market").
#[derive(Clone, Debug)]
pub struct ActivatedOracle {
    netlist: Netlist,
    key: Vec<bool>,
}

impl Oracle for ActivatedOracle {
    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        self.netlist.evaluate(inputs, &self.key)
    }

    fn query_words(&self, inputs: &[u64], width: usize) -> Vec<u64> {
        // Splat each key bit across all lanes of its block.
        let key_words: Vec<u64> = self
            .key
            .iter()
            .flat_map(|&b| std::iter::repeat_n(if b { !0u64 } else { 0 }, width))
            .collect();
        let mut sim = WideSim::new(&self.netlist, width);
        sim.run(&self.netlist, inputs, &key_words)
            .expect("batched stimulus width mismatch");
        let mut out = Vec::with_capacity(self.netlist.num_outputs() * width);
        sim.extend_with_outputs(&self.netlist, &mut out);
        out
    }

    fn num_inputs(&self) -> usize {
        self.netlist.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.netlist.num_outputs()
    }
}

/// Wraps an oracle and counts the number of queries issued.
///
/// The counter is atomic, so a `CountingOracle` over a `Sync` oracle is
/// itself `Sync` and can sit underneath the parallel engine's shared cache.
#[derive(Debug)]
pub struct CountingOracle<O> {
    inner: O,
    queries: AtomicUsize,
    batched_words: AtomicUsize,
}

impl<O: Oracle> CountingOracle<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> CountingOracle<O> {
        CountingOracle {
            inner,
            queries: AtomicUsize::new(0),
            batched_words: AtomicUsize::new(0),
        }
    }

    /// Number of pattern queries issued so far.  Word-batched calls count as
    /// `width * 64` patterns each, so this stays comparable across the
    /// scalar and batched transports.
    pub fn queries(&self) -> usize {
        self.queries.load(Ordering::Relaxed)
    }

    /// Number of 64-pattern words shipped through [`Oracle::query_words`]
    /// (a batch of `width` words adds `width`).
    pub fn batched_words(&self) -> usize {
        self.batched_words.load(Ordering::Relaxed)
    }

    /// Returns the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for CountingOracle<O> {
    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.inner.query(inputs)
    }

    fn query_words(&self, inputs: &[u64], width: usize) -> Vec<u64> {
        self.queries.fetch_add(width * 64, Ordering::Relaxed);
        self.batched_words.fetch_add(width, Ordering::Relaxed);
        self.inner.query_words(inputs, width)
    }

    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::{LockingScheme, TtLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;

    #[test]
    fn sim_oracle_matches_netlist() {
        let nl = generate(&RandomCircuitSpec::new("oracle", 6, 2, 30));
        let oracle = SimOracle::new(nl.clone());
        assert_eq!(oracle.num_inputs(), 6);
        assert_eq!(oracle.num_outputs(), 2);
        for pattern in 0..64u64 {
            let bits = pattern_to_bits(pattern, 6);
            assert_eq!(oracle.query(&bits), nl.evaluate(&bits, &[]));
        }
    }

    #[test]
    fn activated_oracle_equals_original() {
        let nl = generate(&RandomCircuitSpec::new("activated", 6, 2, 30));
        let locked = TtLock::new(4).with_seed(8).lock(&nl).expect("lock");
        let oracle = SimOracle::from_locked(locked.locked.clone(), &locked.key);
        for pattern in 0..64u64 {
            let bits = pattern_to_bits(pattern, 6);
            assert_eq!(oracle.query(&bits), nl.evaluate(&bits, &[]));
        }
    }

    #[test]
    fn counting_oracle_counts() {
        let nl = generate(&RandomCircuitSpec::new("count", 4, 1, 10));
        let oracle = CountingOracle::new(SimOracle::new(nl));
        assert_eq!(oracle.queries(), 0);
        let _ = oracle.query(&[false; 4]);
        let _ = oracle.query(&[true; 4]);
        assert_eq!(oracle.queries(), 2);
        assert_eq!(oracle.batched_words(), 0);
        let _ = oracle.query_words(&[0u64; 8], 2);
        assert_eq!(oracle.queries(), 2 + 2 * 64);
        assert_eq!(oracle.batched_words(), 2);
    }

    /// Routes every scalar query through the trait's *default* batched
    /// implementation, to pin the default-vs-native equivalence.
    struct DefaultOnly(SimOracle);

    impl Oracle for DefaultOnly {
        fn query(&self, inputs: &[bool]) -> Vec<bool> {
            self.0.query(inputs)
        }
        fn num_inputs(&self) -> usize {
            self.0.num_inputs()
        }
        fn num_outputs(&self) -> usize {
            self.0.num_outputs()
        }
    }

    #[test]
    fn batched_queries_match_scalar_and_default_fallback() {
        let nl = generate(&RandomCircuitSpec::new("batched", 5, 3, 40));
        let locked = TtLock::new(4).with_seed(9).lock(&nl).expect("lock");
        let activated = SimOracle::from_locked(locked.locked.clone(), &locked.key);
        let plain = SimOracle::new(nl.clone());
        let fallback = DefaultOnly(SimOracle::new(nl));
        for width in [1usize, 2, 4] {
            let inputs: Vec<u64> = (0..5 * width as u64)
                .map(|i| (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            let native = plain.query_words(&inputs, width);
            assert_eq!(native, fallback.query_words(&inputs, width));
            assert_eq!(native, activated.query_words(&inputs, width));
            for lane in 0..width {
                for bit in 0..64 {
                    let bits: Vec<bool> = (0..5)
                        .map(|i| (inputs[i * width + lane] >> bit) & 1 == 1)
                        .collect();
                    let scalar = plain.query(&bits);
                    for (o, &v) in scalar.iter().enumerate() {
                        assert_eq!((native[o * width + lane] >> bit) & 1 == 1, v);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unlocked original")]
    fn sim_oracle_rejects_locked_netlists() {
        let nl = generate(&RandomCircuitSpec::new("bad", 6, 2, 30));
        let locked = TtLock::new(4).lock(&nl).expect("lock");
        let _ = SimOracle::new(locked.locked);
    }
}
