//! Simulation-only key guessing (a SURF-style front end for key confirmation).
//!
//! The introduction of the paper points out that approximate attacks such as
//! SURF produce *likely* keys but cannot guarantee correctness, and that key
//! confirmation (§ V) is exactly the missing piece: it converts a
//! high-probability guess into a proven key (or rejects it).  This module
//! provides such a front end using nothing but structural pairing and random
//! simulation — no SAT calls at all — so it scales to netlists where even the
//! FALL functional analyses would be expensive.
//!
//! The heuristic exploits the same leak as the functional analyses: the cube
//! stripping function of SFLL-HDh is satisfied only on the Hamming sphere of
//! radius `h` around the protected cube, so the *bit-wise majority* of its
//! satisfying assignments equals the cube whenever `h < m/2`.

use locking::Key;
use netlist::analysis::support;
use netlist::{Netlist, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::structural::{find_candidates, find_comparators};

/// Configuration for the simulation-based key guesser.
#[derive(Clone, Debug)]
pub struct GuessConfig {
    /// Number of random input patterns simulated per candidate node.
    pub samples: usize,
    /// Minimum number of satisfying samples required before a majority vote
    /// is trusted.
    pub min_hits: usize,
    /// Maximum number of distinct guesses to return.
    pub max_guesses: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for GuessConfig {
    fn default() -> GuessConfig {
        GuessConfig {
            samples: 1 << 14,
            min_hits: 8,
            max_guesses: 8,
            seed: 0x5_0BF,
        }
    }
}

/// A ranked key guess produced by [`guess_keys`].
#[derive(Clone, Debug, PartialEq)]
pub struct KeyGuess {
    /// The guessed key value.
    pub key: Key,
    /// The candidate node whose satisfying assignments produced the guess.
    pub candidate: NodeId,
    /// Number of satisfying samples behind the majority vote (higher means
    /// more confidence).
    pub support_samples: usize,
}

/// Guesses likely keys for a cube-stripping-locked netlist by random
/// simulation of the candidate cube-stripper nodes.
///
/// Returns guesses ordered by decreasing confidence.  The list may be empty
/// (for example when the protected-input count is too large for random
/// sampling to hit the stripped sphere) and may contain wrong guesses — feed
/// the result to [`crate::key_confirmation::key_confirmation`] to obtain a
/// proven key.
pub fn guess_keys(locked: &Netlist, config: &GuessConfig) -> Vec<KeyGuess> {
    let comparators = find_comparators(locked);
    let candidates = find_candidates(locked, &comparators);
    if candidates.candidates.is_empty() || candidates.key_width() == 0 {
        return Vec::new();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut guesses: Vec<KeyGuess> = Vec::new();

    for &candidate in &candidates.candidates {
        let sup = support(locked, candidate);
        if !sup.keys.is_empty() {
            continue;
        }
        let inputs: Vec<NodeId> = sup.primary.iter().copied().collect();
        let Some((votes, hits)) = sample_majority(locked, candidate, &inputs, config, &mut rng)
        else {
            continue;
        };
        // Map the voted cube onto key-bit order via the comparator pairing.
        let mut bits = vec![None; locked.num_key_inputs()];
        for (&input, &key_node) in candidates
            .protected_inputs
            .iter()
            .zip(&candidates.paired_keys)
        {
            let Some(position) = inputs.iter().position(|&x| x == input) else {
                continue;
            };
            let Some(key_index) = locked.key_inputs().iter().position(|&k| k == key_node) else {
                continue;
            };
            bits[key_index] = Some(votes[position]);
        }
        let Some(bits) = bits.into_iter().collect::<Option<Vec<bool>>>() else {
            continue;
        };
        let key = Key::new(bits);
        if let Some(existing) = guesses.iter_mut().find(|g| g.key == key) {
            existing.support_samples = existing.support_samples.max(hits);
        } else {
            guesses.push(KeyGuess {
                key,
                candidate,
                support_samples: hits,
            });
        }
    }
    guesses.sort_by_key(|g| std::cmp::Reverse(g.support_samples));
    guesses.truncate(config.max_guesses);
    guesses
}

/// Simulates the candidate on random patterns (64 at a time) and returns the
/// per-bit majority of the satisfying assignments, plus the number of hits.
fn sample_majority(
    locked: &Netlist,
    candidate: NodeId,
    inputs: &[NodeId],
    config: &GuessConfig,
    rng: &mut ChaCha8Rng,
) -> Option<(Vec<bool>, usize)> {
    let num_inputs = locked.num_inputs();
    let num_keys = locked.num_key_inputs();
    let positions: Vec<usize> = inputs
        .iter()
        .map(|&id| {
            locked
                .inputs()
                .iter()
                .position(|&x| x == id)
                .expect("support input is a primary input")
        })
        .collect();

    let mut ones = vec![0usize; inputs.len()];
    let mut hits = 0usize;
    let words = config.samples.div_ceil(64);
    for _ in 0..words {
        let input_words: Vec<u64> = (0..num_inputs).map(|_| rng.gen()).collect();
        let key_words: Vec<u64> = (0..num_keys).map(|_| rng.gen()).collect();
        let values = locked
            .node_words(&input_words, &key_words)
            .expect("widths are consistent");
        let mut satisfied = values[candidate.index()];
        while satisfied != 0 {
            let bit = satisfied.trailing_zeros();
            satisfied &= satisfied - 1;
            hits += 1;
            for (slot, &position) in positions.iter().enumerate() {
                if (input_words[position] >> bit) & 1 == 1 {
                    ones[slot] += 1;
                }
            }
        }
    }
    if hits < config.min_hits {
        return None;
    }
    let votes: Vec<bool> = ones.iter().map(|&count| 2 * count > hits).collect();
    Some((votes, hits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_confirmation::{key_confirmation, KeyConfirmationConfig};
    use crate::oracle::SimOracle;
    use locking::{LockingScheme, SfllHd, TtLock, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};

    #[test]
    fn guesses_include_the_correct_key_for_small_sfll() {
        let original = generate(&RandomCircuitSpec::new("guess", 12, 3, 90));
        let locked = SfllHd::new(8, 1)
            .with_seed(21)
            .lock(&original)
            .expect("lock")
            .optimized();
        let guesses = guess_keys(&locked.locked, &GuessConfig::default());
        assert!(
            guesses.iter().any(|g| g.key == locked.key),
            "guesses {guesses:?} miss the correct key {}",
            locked.key
        );
    }

    #[test]
    fn guesses_include_the_correct_key_for_ttlock() {
        let original = generate(&RandomCircuitSpec::new("guess_tt", 12, 3, 90));
        let locked = TtLock::new(8)
            .with_seed(5)
            .lock(&original)
            .expect("lock")
            .optimized();
        let config = GuessConfig {
            samples: 1 << 15,
            min_hits: 1,
            ..GuessConfig::default()
        };
        let guesses = guess_keys(&locked.locked, &config);
        assert!(guesses.iter().any(|g| g.key == locked.key));
    }

    #[test]
    fn key_confirmation_turns_a_guess_into_a_proven_key() {
        let original = generate(&RandomCircuitSpec::new("guess_kc", 12, 3, 100));
        let locked = SfllHd::new(8, 1)
            .with_seed(2)
            .lock(&original)
            .expect("lock")
            .optimized();
        let guesses = guess_keys(&locked.locked, &GuessConfig::default());
        assert!(!guesses.is_empty());
        let shortlist: Vec<Key> = guesses.iter().map(|g| g.key.clone()).collect();
        let oracle = SimOracle::new(original);
        let result = key_confirmation(
            &locked.locked,
            &oracle,
            &shortlist,
            &KeyConfirmationConfig::default(),
        );
        assert!(result.completed);
        assert_eq!(result.key, Some(locked.key.clone()));
    }

    #[test]
    fn returns_nothing_for_non_cube_stripping_schemes() {
        let original = generate(&RandomCircuitSpec::new("guess_xor", 12, 3, 90));
        let locked = XorLock::new(8)
            .with_seed(4)
            .lock(&original)
            .expect("lock")
            .optimized();
        let guesses = guess_keys(&locked.locked, &GuessConfig::default());
        // Random XOR locking has no cube stripper; whatever is returned must
        // at least not be presented with high confidence.
        assert!(guesses.len() <= GuessConfig::default().max_guesses);
    }

    #[test]
    fn sampling_budget_is_respected_gracefully() {
        let original = generate(&RandomCircuitSpec::new("guess_budget", 12, 3, 90));
        let locked = SfllHd::new(10, 1)
            .with_seed(9)
            .lock(&original)
            .expect("lock")
            .optimized();
        // With a tiny sample budget and a high hit requirement the heuristic
        // must simply return nothing instead of a low-confidence guess.
        let config = GuessConfig {
            samples: 64,
            min_hits: 1000,
            ..GuessConfig::default()
        };
        assert!(guess_keys(&locked.locked, &config).is_empty());
    }
}
