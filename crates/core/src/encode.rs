//! SAT instantiation helpers shared by all attack stages.
//!
//! Every attack encodes copies of the locked circuit's characteristic
//! relation `C(X, K, Y)` into a solver.  These helpers wrap
//! [`netlist::cnf::encode`] with the pin-sharing patterns the attacks need
//! (shared inputs, fixed inputs, forced outputs) and with key/input literal
//! bookkeeping.

use locking::Key;
use netlist::cnf::{encode, CircuitEncoding, PinBinding};
use netlist::Netlist;
use sat::{Lit, Solver};

/// A copy of the circuit relation `C(X, K, Y)` inside a solver.
#[derive(Clone, Debug)]
pub struct CircuitCopy {
    /// Literals of the primary inputs `X`.
    pub inputs: Vec<Lit>,
    /// Literals of the key inputs `K`.
    pub keys: Vec<Lit>,
    /// Literals of the outputs `Y`.
    pub outputs: Vec<Lit>,
}

impl From<CircuitEncoding> for CircuitCopy {
    fn from(enc: CircuitEncoding) -> CircuitCopy {
        CircuitCopy {
            inputs: enc.inputs,
            keys: enc.keys,
            outputs: enc.outputs,
        }
    }
}

/// Instantiates a fresh copy of the circuit with all pins unconstrained.
pub fn instantiate(locked: &Netlist, solver: &mut Solver) -> CircuitCopy {
    encode(locked, solver, &PinBinding::default()).into()
}

/// Instantiates a copy that shares the primary-input literals of an existing
/// copy but uses fresh key literals (the two-key trick of the SAT attack).
pub fn instantiate_sharing_inputs(
    locked: &Netlist,
    solver: &mut Solver,
    inputs: &[Lit],
) -> CircuitCopy {
    encode(
        locked,
        solver,
        &PinBinding {
            inputs: Some(inputs.to_vec()),
            keys: None,
        },
    )
    .into()
}

/// Instantiates a copy that reuses existing key literals but has fresh input
/// literals (used to accumulate I/O constraints on one key vector).
pub fn instantiate_sharing_keys(
    locked: &Netlist,
    solver: &mut Solver,
    keys: &[Lit],
) -> CircuitCopy {
    encode(
        locked,
        solver,
        &PinBinding {
            inputs: None,
            keys: Some(keys.to_vec()),
        },
    )
    .into()
}

/// Forces a literal vector to the given constant values.
///
/// # Panics
///
/// Panics if the widths differ.
pub fn constrain_equal_const(solver: &mut Solver, lits: &[Lit], values: &[bool]) {
    assert_eq!(lits.len(), values.len(), "width mismatch");
    for (&lit, &value) in lits.iter().zip(values) {
        solver.add_clause([if value { lit } else { !lit }]);
    }
}

/// Returns the assumption literals that pin `lits` to `values` (without adding
/// clauses), for use with [`sat::Solver::solve_with`].
///
/// # Panics
///
/// Panics if the widths differ.
pub fn assumptions_for(lits: &[Lit], values: &[bool]) -> Vec<Lit> {
    assert_eq!(lits.len(), values.len(), "width mismatch");
    lits.iter()
        .zip(values)
        .map(|(&lit, &value)| if value { lit } else { !lit })
        .collect()
}

/// Extracts the model values of a literal vector after a successful solve.
///
/// # Panics
///
/// Panics if the solver has no model for one of the literals.
pub fn model_values(solver: &Solver, lits: &[Lit]) -> Vec<bool> {
    lits.iter()
        .map(|&l| solver.value(l).expect("literal not assigned in model"))
        .collect()
}

/// Extracts a [`Key`] from the model values of the key literals.
///
/// # Panics
///
/// Panics if the solver has no model for one of the literals.
pub fn model_key(solver: &Solver, key_lits: &[Lit]) -> Key {
    Key::new(model_values(solver, key_lits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::{LockingScheme, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use sat::SolveResult;

    #[test]
    fn two_copies_with_shared_inputs_find_differing_keys() {
        let original = generate(&RandomCircuitSpec::new("enc", 6, 2, 30));
        let locked = XorLock::new(4).with_seed(1).lock(&original).expect("lock");

        let mut solver = Solver::new();
        let first = instantiate(&locked.locked, &mut solver);
        let second = instantiate_sharing_inputs(&locked.locked, &mut solver, &first.inputs);
        let diff =
            netlist::cnf::encode_any_difference(&mut solver, &first.outputs, &second.outputs);
        solver.add_clause([diff]);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let k1 = model_values(&solver, &first.keys);
        let k2 = model_values(&solver, &second.keys);
        assert_ne!(k1, k2, "differing outputs require differing keys");
    }

    #[test]
    fn constrained_copy_matches_simulation() {
        let original = generate(&RandomCircuitSpec::new("enc2", 5, 2, 20));
        let locked = XorLock::new(3).with_seed(2).lock(&original).expect("lock");
        let stimulus = [true, false, true, true, false];

        let mut solver = Solver::new();
        let copy = instantiate(&locked.locked, &mut solver);
        constrain_equal_const(&mut solver, &copy.inputs, &stimulus);
        constrain_equal_const(&mut solver, &copy.keys, locked.key.bits());
        assert_eq!(solver.solve(), SolveResult::Sat);
        assert_eq!(
            model_values(&solver, &copy.outputs),
            original.evaluate(&stimulus, &[])
        );
    }

    #[test]
    fn assumptions_pin_values_without_clauses() {
        let original = generate(&RandomCircuitSpec::new("enc3", 5, 1, 20));
        let locked = XorLock::new(3).with_seed(3).lock(&original).expect("lock");
        let mut solver = Solver::new();
        let copy = instantiate(&locked.locked, &mut solver);
        let correct = assumptions_for(&copy.keys, locked.key.bits());
        assert_eq!(solver.solve_with(&correct), SolveResult::Sat);
        assert_eq!(model_key(&solver, &copy.keys), locked.key);
        // The same solver can afterwards try a different key.
        let wrong = assumptions_for(&copy.keys, locked.key.complement().bits());
        assert_eq!(solver.solve_with(&wrong), SolveResult::Sat);
        assert_eq!(model_key(&solver, &copy.keys), locked.key.complement());
    }
}
