//! Transport-free state machines for the distributed key-search farm.
//!
//! The `fall-dist` crate splits [`crate::parallel`]'s partitioned key search
//! across OS processes: one **supervisor** owns the global region queue and
//! the merged oracle cache, and N **workers** each run one long-lived primed
//! [`crate::session::AttackSession`], pulling §VI-D key-space regions over a
//! wire (stdin/stdout pipes or TCP — the transport lives in `fall-dist`,
//! specified in `docs/PROTOCOL.md`).  Everything that can be reasoned about
//! without I/O lives here, unit-testable in isolation:
//!
//! * [`RegionBoard`] — the supervisor's region scheduler: round-robin dealt
//!   per-worker shares, a requeue lane for the leases of crashed workers
//!   (a region is only retired on a `complete` acknowledgement), and
//!   work-stealing when a worker drains its own share.
//! * [`PairStore`] — the supervisor's merged (input → output) oracle map:
//!   workers ship the pairs they discovered with each round-trip, the store
//!   deduplicates them, and an append-only log serves incremental deltas to
//!   piggyback on lease replies.
//! * [`SyncingOracle`] — the worker-side oracle adapter: a local cache
//!   seeded by supervisor deltas plus an outbox of newly-discovered pairs.
//!   Seeded pairs answer locally, so the number of *distinct* patterns that
//!   reach any real oracle across the whole farm stays bounded near the
//!   single-process count.
//!
//! Cross-process cache sync never changes what an oracle *answers* — only
//! which process pays for the answer — so worker trajectories are identical
//! to a single-process run given the same region sequence.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::oracle::Oracle;

/// One observed oracle (input pattern, output pattern) pair, as shipped
/// between farm processes.
pub type IoPair = (Vec<bool>, Vec<bool>);

/// The supervisor's merged, deduplicating (input → output) oracle map.
///
/// Workers attach the pairs they discovered to each `lease`/`complete`
/// message; [`PairStore::merge`] folds them in, and the append-only log lets
/// the supervisor piggyback exactly the pairs a worker has not seen yet on
/// its next lease reply ([`PairStore::delta_since`]).
#[derive(Debug, Default)]
pub struct PairStore {
    map: HashMap<Vec<bool>, Vec<bool>>,
    log: Vec<IoPair>,
}

impl PairStore {
    /// An empty store.
    pub fn new() -> PairStore {
        PairStore::default()
    }

    /// Merges a batch of pairs, ignoring inputs already present; returns how
    /// many were new.  New pairs are appended to the delta log in the order
    /// first seen.
    pub fn merge(&mut self, pairs: impl IntoIterator<Item = IoPair>) -> usize {
        let mut added = 0;
        for (input, output) in pairs {
            if self.map.contains_key(&input) {
                continue;
            }
            self.map.insert(input.clone(), output.clone());
            self.log.push((input, output));
            added += 1;
        }
        added
    }

    /// Number of distinct input patterns in the store — the farm-wide unique
    /// oracle-query count once every worker has synced.
    pub fn unique(&self) -> usize {
        self.map.len()
    }

    /// Length of the delta log (equals [`PairStore::unique`]; separate so
    /// callers record a log *position*, not a set size).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The pairs appended since log position `since` (a value previously
    /// obtained from [`PairStore::log_len`]).
    pub fn delta_since(&self, since: usize) -> &[IoPair] {
        &self.log[since.min(self.log.len())..]
    }
}

/// What a [`RegionBoard::lease`] call granted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lease {
    /// A region to search.  `stolen` is `true` when it came out of another
    /// worker's share rather than the requester's own (or the requeue lane).
    Grant {
        /// The region index.
        region: u64,
        /// Whether work-stealing supplied it.
        stolen: bool,
    },
    /// Nothing to grant *right now*, but the run is not provably over:
    /// other workers hold leases or un-stealable shares, and a crash could
    /// requeue work.  The requester should wait for a wake-up.
    Parked,
    /// The whole region space is retired; the requester can stop.
    Drained,
}

/// The supervisor's region scheduler.
///
/// Regions `0..regions` are dealt round-robin into per-worker shares
/// (region `r` belongs to worker `r % workers`), so with stealing and
/// cancellation disabled every worker's region sequence is a deterministic
/// function of the partition alone — the property the bench-smoke gate
/// relies on.  Leases are granted in priority order:
///
/// 1. the **requeue lane** (leases and shares returned by
///    [`RegionBoard::fail_worker`] when a worker crashed or timed out),
/// 2. the requester's own share, front first,
/// 3. when stealing is enabled, the *back* of the longest other live share.
///
/// A worker holds at most one lease at a time, and a region is only retired
/// by [`RegionBoard::complete`] — never by the act of granting — so a killed
/// worker's lease always returns to the queue.
#[derive(Debug)]
pub struct RegionBoard {
    shares: Vec<VecDeque<u64>>,
    requeue: VecDeque<u64>,
    leased: Vec<Option<u64>>,
    dead: Vec<bool>,
    steal: bool,
    completed: usize,
    stolen: usize,
    requeued: usize,
}

impl RegionBoard {
    /// Deals `regions` regions round-robin across `workers` shares.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(regions: u64, workers: usize, steal: bool) -> RegionBoard {
        assert!(workers > 0, "a region board needs at least one worker");
        let mut shares = vec![VecDeque::new(); workers];
        for region in 0..regions {
            shares[(region % workers as u64) as usize].push_back(region);
        }
        RegionBoard {
            shares,
            requeue: VecDeque::new(),
            leased: vec![None; workers],
            dead: vec![false; workers],
            steal,
            completed: 0,
            stolen: 0,
            requeued: 0,
        }
    }

    /// Grants the next region to `worker`, or reports the queue state.
    ///
    /// # Panics
    ///
    /// Panics if `worker` already holds a lease (the wire protocol is
    /// strictly lease → complete → lease).
    pub fn lease(&mut self, worker: usize) -> Lease {
        assert!(
            self.leased[worker].is_none(),
            "worker {worker} leased twice without completing"
        );
        if self.dead[worker] {
            return Lease::Drained;
        }
        if let Some(region) = self.requeue.pop_front() {
            self.leased[worker] = Some(region);
            return Lease::Grant {
                region,
                stolen: false,
            };
        }
        if let Some(region) = self.shares[worker].pop_front() {
            self.leased[worker] = Some(region);
            return Lease::Grant {
                region,
                stolen: false,
            };
        }
        if self.steal {
            let victim = (0..self.shares.len())
                .filter(|&w| w != worker && !self.dead[w])
                .max_by_key(|&w| self.shares[w].len())
                .filter(|&w| !self.shares[w].is_empty());
            if let Some(victim) = victim {
                let region = self.shares[victim].pop_back().expect("non-empty share");
                self.leased[worker] = Some(region);
                self.stolen += 1;
                return Lease::Grant {
                    region,
                    stolen: true,
                };
            }
        }
        if self.done() {
            Lease::Drained
        } else {
            Lease::Parked
        }
    }

    /// Retires `worker`'s outstanding lease of `region`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` does not hold a lease of `region`.
    pub fn complete(&mut self, worker: usize, region: u64) {
        assert_eq!(
            self.leased[worker].take(),
            Some(region),
            "worker {worker} completed a region it does not hold"
        );
        self.completed += 1;
    }

    /// Marks `worker` dead (crashed, hung, or disconnected): its outstanding
    /// lease — the region it may have been mid-search on — returns to the
    /// front of the requeue lane and is counted as requeued; the un-leased
    /// remainder of its share moves to the requeue lane un-counted (those
    /// regions were never at risk, merely re-homed).  Returns `true` when
    /// any region was reclaimed — i.e. the worker died with work it still
    /// owed the run.
    pub fn fail_worker(&mut self, worker: usize) -> bool {
        if self.dead[worker] {
            return false;
        }
        self.dead[worker] = true;
        let mut reclaimed = false;
        if let Some(region) = self.leased[worker].take() {
            self.requeue.push_front(region);
            self.requeued += 1;
            reclaimed = true;
        }
        while let Some(region) = self.shares[worker].pop_front() {
            self.requeue.push_back(region);
            reclaimed = true;
        }
        reclaimed
    }

    /// `true` once every region is retired: all shares and the requeue lane
    /// are empty and no lease is outstanding.
    pub fn done(&self) -> bool {
        self.requeue.is_empty()
            && self.shares.iter().all(VecDeque::is_empty)
            && self.leased.iter().all(Option::is_none)
    }

    /// `true` when a lease request could be granted immediately — used to
    /// wake parked workers after a `complete` or `fail_worker` changes the
    /// queue.
    pub fn grantable(&self) -> bool {
        !self.requeue.is_empty()
            || self
                .shares
                .iter()
                .enumerate()
                .any(|(w, share)| !share.is_empty() && (self.steal || !self.dead[w]))
    }

    /// The region `worker` currently holds, if any.
    pub fn leased(&self, worker: usize) -> Option<u64> {
        self.leased[worker]
    }

    /// Regions retired by [`RegionBoard::complete`].
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Leases granted out of another worker's share.
    pub fn stolen(&self) -> usize {
        self.stolen
    }

    /// Mid-flight leases returned to the queue by [`RegionBoard::fail_worker`].
    pub fn requeued(&self) -> usize {
        self.requeued
    }
}

/// The worker-side oracle adapter of the farm's cross-process cache sync.
///
/// Wraps the worker's real oracle (in the smoke/test farms, a local
/// simulation of the activated chip) with a per-pattern cache plus an
/// **outbox**: a query answered locally is free; a miss queries the real
/// oracle, caches the pair, and records it for the next shipment to the
/// supervisor ([`SyncingOracle::take_outbox`]).  Pairs learned *from* the
/// supervisor enter via [`SyncingOracle::seed`] and never re-enter the
/// outbox, so the same pair is never echoed back.
///
/// Batched [`Oracle::query_words`] queries resolve through the scalar cache
/// pattern-by-pattern via the trait's default implementation, preserving
/// exactly-once semantics across transports — the same property
/// [`crate::parallel::CachingOracle`] provides in-process.
pub struct SyncingOracle<'o> {
    inner: &'o (dyn Oracle + Sync),
    state: Mutex<SyncState>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

#[derive(Default)]
struct SyncState {
    map: HashMap<Vec<bool>, Vec<bool>>,
    outbox: Vec<IoPair>,
}

impl<'o> SyncingOracle<'o> {
    /// Wraps `inner` with an empty cache and outbox.
    pub fn new(inner: &'o (dyn Oracle + Sync)) -> SyncingOracle<'o> {
        SyncingOracle {
            inner,
            state: Mutex::new(SyncState::default()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Installs pairs learned from the supervisor.  Already-known inputs are
    /// ignored; seeded pairs do not enter the outbox.
    pub fn seed(&self, pairs: impl IntoIterator<Item = IoPair>) {
        let mut state = self.state.lock().expect("sync cache poisoned");
        for (input, output) in pairs {
            state.map.entry(input).or_insert(output);
        }
    }

    /// Drains the outbox: every pair this worker discovered (queried from
    /// its real oracle) since the previous call.
    pub fn take_outbox(&self) -> Vec<IoPair> {
        std::mem::take(&mut self.state.lock().expect("sync cache poisoned").outbox)
    }

    /// Queries answered from the local cache (including seeded pairs).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Distinct patterns this worker forwarded to its real oracle.
    pub fn local_unique(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

impl Oracle for SyncingOracle<'_> {
    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        let mut state = self.state.lock().expect("sync cache poisoned");
        if let Some(outputs) = state.map.get(inputs) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return outputs.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Same phase as `CachingOracle` misses: deduplicated real-oracle
        // access, distinct from the attack loop's logical "oracle_query".
        let _span = crate::trace::span("oracle_miss");
        let outputs = self.inner.query(inputs);
        state.map.insert(inputs.to_vec(), outputs.clone());
        state.outbox.push((inputs.to_vec(), outputs.clone()));
        outputs
    }

    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CountingOracle, SimOracle};
    use netlist::random::{generate, RandomCircuitSpec};

    #[test]
    fn pair_store_dedups_and_serves_deltas() {
        let mut store = PairStore::new();
        let a = (vec![true, false], vec![true]);
        let b = (vec![false, false], vec![false]);
        assert_eq!(store.merge([a.clone(), b.clone(), a.clone()]), 2);
        assert_eq!(store.unique(), 2);
        let mark = store.log_len();
        let c = (vec![true, true], vec![false]);
        assert_eq!(store.merge([b.clone(), c.clone()]), 1);
        assert_eq!(store.delta_since(mark), &[c]);
        assert_eq!(store.delta_since(0).len(), 3);
        assert!(store.delta_since(99).is_empty());
    }

    #[test]
    fn board_deals_round_robin_and_serves_own_share_first() {
        let mut board = RegionBoard::new(4, 2, false);
        assert_eq!(
            board.lease(0),
            Lease::Grant {
                region: 0,
                stolen: false
            }
        );
        assert_eq!(
            board.lease(1),
            Lease::Grant {
                region: 1,
                stolen: false
            }
        );
        board.complete(0, 0);
        board.complete(1, 1);
        assert_eq!(
            board.lease(0),
            Lease::Grant {
                region: 2,
                stolen: false
            }
        );
        assert_eq!(
            board.lease(1),
            Lease::Grant {
                region: 3,
                stolen: false
            }
        );
        board.complete(0, 2);
        assert_eq!(board.lease(0), Lease::Parked, "worker 1 still holds 3");
        board.complete(1, 3);
        assert_eq!(board.lease(0), Lease::Drained);
        assert_eq!(board.lease(1), Lease::Drained);
        assert!(board.done());
        assert_eq!(board.completed(), 4);
        assert_eq!((board.stolen(), board.requeued()), (0, 0));
    }

    #[test]
    fn board_steals_from_the_longest_share_when_enabled() {
        let mut board = RegionBoard::new(6, 3, true);
        // Worker 0 drains its share {0, 3}.
        assert!(matches!(board.lease(0), Lease::Grant { region: 0, .. }));
        board.complete(0, 0);
        assert!(matches!(board.lease(0), Lease::Grant { region: 3, .. }));
        board.complete(0, 3);
        // Its own share is empty: it steals from the back of a peer's.
        let Lease::Grant { region, stolen } = board.lease(0) else {
            panic!("expected a stolen grant");
        };
        assert!(stolen);
        assert!(
            region == 4 || region == 5,
            "back of a peer share, got {region}"
        );
        assert_eq!(board.stolen(), 1);
    }

    #[test]
    fn board_requeues_a_dead_workers_lease_and_share() {
        let mut board = RegionBoard::new(4, 2, false);
        assert!(matches!(board.lease(0), Lease::Grant { region: 0, .. }));
        assert!(matches!(board.lease(1), Lease::Grant { region: 1, .. }));
        board.fail_worker(0);
        // Only the in-flight lease counts as requeued; the undisturbed
        // remainder of the share ({2}) is merely re-homed.
        assert_eq!(board.requeued(), 1);
        assert!(board.grantable());
        board.complete(1, 1);
        // The crashed lease is served first, then the re-homed share, then
        // the survivor's own share.
        assert!(matches!(
            board.lease(1),
            Lease::Grant {
                region: 0,
                stolen: false
            }
        ));
        board.complete(1, 0);
        assert!(matches!(board.lease(1), Lease::Grant { region: 2, .. }));
        board.complete(1, 2);
        assert!(matches!(board.lease(1), Lease::Grant { region: 3, .. }));
        board.complete(1, 3);
        assert_eq!(board.lease(1), Lease::Drained);
        assert!(board.done());
        // fail_worker is idempotent.
        board.fail_worker(0);
        assert_eq!(board.requeued(), 1);
    }

    #[test]
    fn board_without_steal_parks_until_peers_finish() {
        let mut board = RegionBoard::new(2, 2, false);
        assert!(matches!(board.lease(1), Lease::Grant { region: 1, .. }));
        assert!(matches!(board.lease(0), Lease::Grant { region: 0, .. }));
        board.complete(0, 0);
        assert_eq!(board.lease(0), Lease::Parked);
        assert!(!board.done());
        board.complete(1, 1);
        assert_eq!(board.lease(0), Lease::Drained);
    }

    #[test]
    fn syncing_oracle_seeds_answer_locally_and_misses_fill_the_outbox() {
        let nl = generate(&RandomCircuitSpec::new("dist_sync", 4, 2, 20));
        let counting = CountingOracle::new(SimOracle::new(nl.clone()));
        let oracle = SyncingOracle::new(&counting);

        let a = vec![true, false, true, false];
        let b = vec![false, true, false, true];
        // Seed one pair as if it arrived from the supervisor.
        oracle.seed([(a.clone(), nl.evaluate(&a, &[]))]);
        assert_eq!(oracle.query(&a), nl.evaluate(&a, &[]));
        assert_eq!(counting.queries(), 0, "seeded pair never hits the oracle");
        // A genuine miss queries through and lands in the outbox.
        assert_eq!(oracle.query(&b), nl.evaluate(&b, &[]));
        assert_eq!(oracle.query(&b), nl.evaluate(&b, &[]));
        assert_eq!(counting.queries(), 1);
        assert_eq!(
            oracle.take_outbox(),
            vec![(b, nl.evaluate(&[false, true, false, true], &[]))]
        );
        assert!(oracle.take_outbox().is_empty(), "outbox drains");
        assert_eq!((oracle.hits(), oracle.local_unique()), (2, 1));
    }
}
