//! Functional Analysis attacks on Logic Locking (FALL).
//!
//! This crate implements the attack flow of *"Functional Analysis Attacks on
//! Logic Locking"* (Sirone & Subramanyan, DATE 2019) on top of the
//! [`netlist`], [`sat`] and [`locking`] substrate crates:
//!
//! 1. **Structural analyses** (§ III): [`structural::find_comparators`]
//!    identifies the XOR/XNOR comparators pairing key inputs with circuit
//!    inputs, and [`structural::find_candidates`] shortlists gates whose
//!    support matches the protected inputs (potential cube-stripper outputs).
//! 2. **Functional analyses** (§ IV): [`functional::analyze_unateness`]
//!    (TTLock / SFLL-HD0), [`functional::sliding_window`] and
//!    [`functional::distance_2h`] (SFLL-HDh) extract suspected key values
//!    from a candidate node, and [`equivalence::candidate_equals_strip`]
//!    verifies the guess by combinational equivalence checking.
//! 3. **Key confirmation** (§ V): [`key_confirmation::key_confirmation`]
//!    turns a shortlist of suspected keys plus an I/O oracle into a proven
//!    correct key (or ⊥), even on SAT-attack-resilient circuits.
//!
//! The classic oracle-guided SAT attack (Subramanyan et al., HOST 2015) is
//! implemented in [`mod@sat_attack`] as the baseline the paper compares against,
//! and [`attack::fall_attack`] wires all stages together (Figure 4).
//!
//! All SAT interaction runs through one persistent [`session::AttackSession`]
//! per attack: circuit copies are encoded once, candidate cones are memoized
//! across queries, and temporary constraints live in solver activation
//! frames, so learnt clauses accumulate across the entire attack instead of
//! being discarded per query.
//!
//! The [`parallel`] module scales the stack across threads: § VI-D key-space
//! partitioning on a worker pool ([`parallel::parallel_partitioned_key_search`],
//! one session per worker, shared deduplicating oracle cache, first-winner
//! cancellation) and solver portfolios ([`parallel::portfolio_sat_attack`]).
//! The [`service`] module packages long-lived sessions as a multi-tenant
//! pool ([`service::AttackService`]): registered targets own worker threads
//! with primed sessions that persist across jobs and clients, behind bounded
//! admission queues, client-fair round-robin scheduling, per-job
//! timeout/cancellation and an aggregated metrics surface — the engine
//! behind the `fall-serve` TCP server.
//!
//! The [`trace`] module is the observability layer over all of the above: a
//! dependency-free flight recorder whose spans instrument DIP iterations,
//! solver calls, oracle queries, region drains and service jobs, with
//! per-phase duration histograms, Chrome-trace JSON export (Perfetto) and
//! Prometheus text exposition.  Tracing is off by default and costs one
//! atomic load per instrumentation point while off.
//!
//! # Example: break SFLL-HD without an oracle
//!
//! ```
//! use fall::attack::{fall_attack, FallAttackConfig};
//! use locking::{LockingScheme, SfllHd};
//! use netlist::random::{generate, RandomCircuitSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let original = generate(&RandomCircuitSpec::new("demo", 16, 3, 120));
//! let locked = SfllHd::new(12, 1).with_seed(42).lock(&original)?.optimized();
//!
//! let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(1));
//! assert_eq!(result.shortlisted_keys, vec![locked.key.clone()]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod attack;
pub mod dist;
pub mod encode;
pub mod equivalence;
pub mod functional;
pub mod heuristics;
pub mod key_confirmation;
pub mod oracle;
pub mod parallel;
pub mod sat_attack;
pub mod service;
pub mod session;
pub mod structural;
pub mod trace;
pub mod unlock;

pub use attack::{fall_attack, FallAttackConfig, FallAttackResult, FallStatus};
pub use key_confirmation::{key_confirmation, KeyConfirmationConfig, KeyConfirmationResult};
pub use oracle::{CountingOracle, Oracle, SimOracle};
pub use parallel::{
    drain_regions, parallel_partitioned_key_search, portfolio_sat_attack, AtomicRegionSource,
    CachingOracle, CancelToken, ParallelSearchResult, PortfolioResult, RegionDrain,
    RegionDrainOutcome, RegionSource,
};
pub use sat_attack::{sat_attack, SatAttackConfig, SatAttackResult, SatAttackStatus};
pub use session::{AttackSession, KeyVector};

#[cfg(test)]
pub(crate) mod test_fixtures {
    use netlist::{GateKind, Netlist};

    /// A locked netlist with 64 key inputs (XOR chain) plus a trivial
    /// keyless original for its oracle — shared by the partition-overflow
    /// guard tests of `key_confirmation` and `parallel`.
    pub(crate) fn wide_key_circuit_and_original() -> (Netlist, Netlist) {
        let mut locked = Netlist::new("wide");
        let a = locked.add_input("a");
        let mut acc = a;
        for i in 0..64 {
            let k = locked.add_key_input(format!("k{i}"));
            acc = locked.add_gate(format!("x{i}"), GateKind::Xor, &[acc, k]);
        }
        locked.add_output("y", acc);

        let mut original = Netlist::new("wide_orig");
        let oa = original.add_input("a");
        original.add_output("y", oa);
        (locked, original)
    }
}
