//! The oracle-guided SAT attack (Subramanyan, Ray & Malik, HOST 2015).
//!
//! This is the baseline every SAT-resilient scheme is designed against and
//! the comparison point of Figures 5 and 6.  The attack iteratively finds
//! *distinguishing input patterns* — inputs on which two key classes produce
//! different outputs — queries the oracle, and constrains the key space with
//! the observed I/O pair, until no distinguishing input remains.

use std::time::{Duration, Instant};

use locking::Key;
use netlist::cnf::encode_any_difference;
use netlist::Netlist;
use sat::{SolveResult, Solver};

use crate::encode::{
    constrain_equal_const, instantiate, instantiate_sharing_inputs, instantiate_sharing_keys,
    model_key, model_values,
};
use crate::oracle::Oracle;
use crate::session::AttackSession;

/// Configuration for the SAT attack.
#[derive(Clone, Debug)]
pub struct SatAttackConfig {
    /// Abort after this many distinguishing-input iterations.
    pub max_iterations: usize,
    /// Wall-clock time limit (the paper uses 1000 s).
    pub time_limit: Option<Duration>,
    /// Conflict budget per individual SAT call; `None` means unlimited.
    pub conflict_budget: Option<u64>,
}

impl Default for SatAttackConfig {
    fn default() -> SatAttackConfig {
        SatAttackConfig {
            max_iterations: 100_000,
            time_limit: Some(Duration::from_secs(1000)),
            conflict_budget: None,
        }
    }
}

impl SatAttackConfig {
    /// A configuration with the given wall-clock time limit.
    pub fn with_time_limit(limit: Duration) -> SatAttackConfig {
        SatAttackConfig {
            time_limit: Some(limit),
            ..SatAttackConfig::default()
        }
    }
}

/// Why the SAT attack stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatAttackStatus {
    /// No distinguishing input remains; the returned key is provably correct
    /// (relative to the oracle).
    Success,
    /// The time limit or conflict budget was exhausted first.
    TimedOut,
    /// The iteration cap was reached.
    IterationLimit,
    /// The key-consistency formula became unsatisfiable, which indicates the
    /// oracle does not correspond to the locked circuit.
    Inconsistent,
}

/// The outcome of a SAT attack run.
#[derive(Clone, Debug)]
pub struct SatAttackResult {
    /// The recovered key, if the attack completed.
    pub key: Option<Key>,
    /// Termination reason.
    pub status: SatAttackStatus,
    /// Number of distinguishing-input iterations performed.
    pub iterations: usize,
    /// Number of oracle queries issued.
    pub oracle_queries: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl SatAttackResult {
    /// Returns `true` if a provably correct key was produced.
    pub fn is_success(&self) -> bool {
        self.status == SatAttackStatus::Success && self.key.is_some()
    }
}

/// Runs the SAT attack against a locked netlist using an I/O oracle.
///
/// The attack runs through one persistent [`AttackSession`]: the two
/// shared-input circuit copies are encoded once, the distinguishing-input
/// loop performs **zero** solver allocations (each iteration adds only the
/// constant-folded key cone of the observed I/O pair), and the final key is
/// extracted from the same solver after retiring the difference constraint —
/// so every learnt clause from the DIP search keeps working for the
/// extraction query.
///
/// # Panics
///
/// Panics if the oracle input width differs from the locked circuit's.
pub fn sat_attack(
    locked: &Netlist,
    oracle: &dyn Oracle,
    config: &SatAttackConfig,
) -> SatAttackResult {
    let mut session = AttackSession::new(locked);
    sat_attack_in(&mut session, oracle, config)
}

/// Runs the SAT attack through an existing session (see [`sat_attack`]).
///
/// # Panics
///
/// Panics if the oracle input width differs from the locked circuit's.
pub fn sat_attack_in(
    session: &mut AttackSession<'_>,
    oracle: &dyn Oracle,
    config: &SatAttackConfig,
) -> SatAttackResult {
    assert_eq!(
        oracle.num_inputs(),
        session.netlist().num_inputs(),
        "oracle width does not match the locked circuit"
    );
    let start = Instant::now();
    session.set_conflict_budget(config.conflict_budget);

    let mut iterations = 0usize;
    let mut oracle_queries = 0usize;

    let timed_out = |start: &Instant| {
        config
            .time_limit
            .is_some_and(|limit| start.elapsed() >= limit)
    };
    let stopped = |status, iterations, oracle_queries, elapsed| SatAttackResult {
        key: None,
        status,
        iterations,
        oracle_queries,
        elapsed,
    };

    loop {
        if iterations >= config.max_iterations {
            return stopped(
                SatAttackStatus::IterationLimit,
                iterations,
                oracle_queries,
                start.elapsed(),
            );
        }
        if timed_out(&start) {
            return stopped(
                SatAttackStatus::TimedOut,
                iterations,
                oracle_queries,
                start.elapsed(),
            );
        }
        let dip_span = crate::trace::span("dip_iteration");
        match session.find_dip() {
            SolveResult::Unknown => {
                return stopped(
                    SatAttackStatus::TimedOut,
                    iterations,
                    oracle_queries,
                    start.elapsed(),
                )
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {}
        }
        iterations += 1;
        let distinguishing_input = session.dip_inputs();
        let observed_output = {
            let _span = crate::trace::span("oracle_query");
            oracle.query(&distinguishing_input)
        };
        oracle_queries += 1;
        session.force_dip(&distinguishing_input, &observed_output);
        drop(dip_span);
    }

    // No distinguishing input remains: any key satisfying the accumulated I/O
    // constraints is functionally correct.  The difference constraint is
    // retired and `K1` — already constrained by every observed pair — is
    // extracted from the same solver.
    let (result, key) = session.extract_key();
    match result {
        SolveResult::Sat => SatAttackResult {
            key,
            status: SatAttackStatus::Success,
            iterations,
            oracle_queries,
            elapsed: start.elapsed(),
        },
        SolveResult::Unsat => stopped(
            SatAttackStatus::Inconsistent,
            iterations,
            oracle_queries,
            start.elapsed(),
        ),
        SolveResult::Unknown => stopped(
            SatAttackStatus::TimedOut,
            iterations,
            oracle_queries,
            start.elapsed(),
        ),
    }
}

/// The pre-session SAT attack: fresh solvers and full re-encoding per query.
///
/// Kept as the ablation baseline for the `incremental_vs_fresh` benchmark
/// and as a differential-testing reference for [`sat_attack`]; new code
/// should use [`sat_attack`].
///
/// # Panics
///
/// Panics if the oracle input width differs from the locked circuit's.
pub fn sat_attack_fresh(
    locked: &Netlist,
    oracle: &dyn Oracle,
    config: &SatAttackConfig,
) -> SatAttackResult {
    assert_eq!(
        oracle.num_inputs(),
        locked.num_inputs(),
        "oracle width does not match the locked circuit"
    );
    let start = Instant::now();

    // Distinguishing-input solver: two copies sharing X, with differing outputs.
    let mut dis_solver = Solver::new();
    dis_solver.set_conflict_budget(config.conflict_budget);
    let copy1 = instantiate(locked, &mut dis_solver);
    let copy2 = instantiate_sharing_inputs(locked, &mut dis_solver, &copy1.inputs);
    let diff = encode_any_difference(&mut dis_solver, &copy1.outputs, &copy2.outputs);
    dis_solver.add_clause([diff]);

    // Key solver: accumulates C(Xd, K, Yd) constraints for the final key.
    let mut key_solver = Solver::new();
    key_solver.set_conflict_budget(config.conflict_budget);
    let key_copy = instantiate(locked, &mut key_solver);
    let key_lits = key_copy.keys.clone();

    let mut iterations = 0usize;
    let mut oracle_queries = 0usize;

    let timed_out = |start: &Instant| {
        config
            .time_limit
            .is_some_and(|limit| start.elapsed() >= limit)
    };

    loop {
        if iterations >= config.max_iterations {
            return SatAttackResult {
                key: None,
                status: SatAttackStatus::IterationLimit,
                iterations,
                oracle_queries,
                elapsed: start.elapsed(),
            };
        }
        if timed_out(&start) {
            return SatAttackResult {
                key: None,
                status: SatAttackStatus::TimedOut,
                iterations,
                oracle_queries,
                elapsed: start.elapsed(),
            };
        }
        match dis_solver.solve() {
            SolveResult::Unknown => {
                return SatAttackResult {
                    key: None,
                    status: SatAttackStatus::TimedOut,
                    iterations,
                    oracle_queries,
                    elapsed: start.elapsed(),
                }
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {}
        }
        iterations += 1;
        let distinguishing_input = model_values(&dis_solver, &copy1.inputs);
        let observed_output = oracle.query(&distinguishing_input);
        oracle_queries += 1;

        // Constrain both key copies of the distinguishing solver and the key
        // solver with the observed I/O behaviour.
        for keys in [&copy1.keys, &copy2.keys] {
            let constrained = instantiate_sharing_keys(locked, &mut dis_solver, keys);
            constrain_equal_const(&mut dis_solver, &constrained.inputs, &distinguishing_input);
            constrain_equal_const(&mut dis_solver, &constrained.outputs, &observed_output);
        }
        let key_constrained = instantiate_sharing_keys(locked, &mut key_solver, &key_lits);
        constrain_equal_const(
            &mut key_solver,
            &key_constrained.inputs,
            &distinguishing_input,
        );
        constrain_equal_const(&mut key_solver, &key_constrained.outputs, &observed_output);
    }

    // No distinguishing input remains: any key satisfying the accumulated I/O
    // constraints is functionally correct.
    match key_solver.solve() {
        SolveResult::Sat => SatAttackResult {
            key: Some(model_key(&key_solver, &key_lits)),
            status: SatAttackStatus::Success,
            iterations,
            oracle_queries,
            elapsed: start.elapsed(),
        },
        SolveResult::Unsat => SatAttackResult {
            key: None,
            status: SatAttackStatus::Inconsistent,
            iterations,
            oracle_queries,
            elapsed: start.elapsed(),
        },
        SolveResult::Unknown => SatAttackResult {
            key: None,
            status: SatAttackStatus::TimedOut,
            iterations,
            oracle_queries,
            elapsed: start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CountingOracle, SimOracle};
    use locking::{LockingScheme, SfllHd, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;

    #[test]
    fn breaks_random_xor_locking() {
        let original = generate(&RandomCircuitSpec::new("sa_xor", 8, 3, 60));
        let locked = XorLock::new(8).with_seed(5).lock(&original).expect("lock");
        let oracle = CountingOracle::new(SimOracle::new(original.clone()));
        let result = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
        assert!(result.is_success(), "status {:?}", result.status);
        let key = result.key.expect("key");
        // The recovered key need not be bit-identical to the inserted one but
        // must be functionally correct.
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            assert_eq!(
                locked.locked.evaluate(&bits, key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
        assert_eq!(result.oracle_queries, result.iterations);
        assert!(result.oracle_queries > 0);
    }

    #[test]
    fn needs_many_iterations_on_sfll() {
        // SFLL-HD0 with a 10-bit key: each wrong key is ruled out one
        // distinguishing input at a time, so the SAT attack needs on the
        // order of 2^10 iterations — this is the resilience property.  With a
        // small iteration cap the attack must fail.
        let original = generate(&RandomCircuitSpec::new("sa_sfll", 12, 2, 80));
        let locked = SfllHd::new(10, 0)
            .with_seed(3)
            .lock(&original)
            .expect("lock");
        let oracle = SimOracle::new(original);
        let config = SatAttackConfig {
            max_iterations: 20,
            time_limit: None,
            conflict_budget: None,
        };
        let result = sat_attack(&locked.locked, &oracle, &config);
        assert_eq!(result.status, SatAttackStatus::IterationLimit);
        assert!(result.key.is_none());
    }

    #[test]
    fn succeeds_on_small_sfll_instances_eventually() {
        // With a tiny key the SAT attack still wins — resilience is about
        // scaling, not impossibility.
        let original = generate(&RandomCircuitSpec::new("sa_small", 8, 2, 50));
        let locked = SfllHd::new(4, 0)
            .with_seed(11)
            .lock(&original)
            .expect("lock");
        let oracle = SimOracle::new(original.clone());
        let result = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
        assert!(result.is_success());
        let key = result.key.expect("key");
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            assert_eq!(
                locked.locked.evaluate(&bits, key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }

    #[test]
    fn incremental_and_fresh_attacks_agree() {
        // Differential test: both implementations must succeed and produce
        // functionally correct keys on the same instances (the recovered key
        // bits may legitimately differ when several keys are correct).
        for (seed, key_bits) in [(5u64, 4usize), (9, 5), (13, 6)] {
            let original = generate(&RandomCircuitSpec::new("sa_diff", 8, 3, 60));
            let locked = XorLock::new(key_bits)
                .with_seed(seed)
                .lock(&original)
                .expect("lock");
            let oracle = SimOracle::new(original.clone());
            let incremental = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
            let fresh = sat_attack_fresh(&locked.locked, &oracle, &SatAttackConfig::default());
            assert!(
                incremental.is_success(),
                "incremental: {:?}",
                incremental.status
            );
            assert!(fresh.is_success(), "fresh: {:?}", fresh.status);
            for result in [&incremental, &fresh] {
                let key = result.key.as_ref().expect("key");
                for pattern in 0..256u64 {
                    let bits = pattern_to_bits(pattern, 8);
                    assert_eq!(
                        locked.locked.evaluate(&bits, key.bits()),
                        original.evaluate(&bits, &[]),
                        "seed {seed} pattern {pattern:08b}"
                    );
                }
            }
        }
    }

    #[test]
    fn inconsistent_oracle_is_detected() {
        // An oracle for a *different* circuit: the accumulated I/O pairs
        // eventually contradict the locked structure.
        let original = generate(&RandomCircuitSpec::new("sa_bad", 8, 3, 60));
        let unrelated = generate(&RandomCircuitSpec::new("sa_bad2", 8, 3, 60).with_seed(99));
        let locked = XorLock::new(4).with_seed(5).lock(&original).expect("lock");
        let oracle = SimOracle::new(unrelated);
        let result = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
        // Either the constraints become contradictory, or a "key" survives
        // that at least matches all queried patterns; both are acceptable
        // outcomes, but a crash or hang is not.
        assert!(matches!(
            result.status,
            SatAttackStatus::Inconsistent | SatAttackStatus::Success
        ));
    }

    #[test]
    fn time_limit_is_respected() {
        let original = generate(&RandomCircuitSpec::new("sa_to", 14, 2, 100));
        let locked = SfllHd::new(12, 0)
            .with_seed(7)
            .lock(&original)
            .expect("lock");
        let oracle = SimOracle::new(original);
        let config = SatAttackConfig::with_time_limit(Duration::from_millis(50));
        let result = sat_attack(&locked.locked, &oracle, &config);
        assert!(matches!(
            result.status,
            SatAttackStatus::TimedOut | SatAttackStatus::Success
        ));
        if result.status == SatAttackStatus::TimedOut {
            assert!(result.elapsed >= Duration::from_millis(50));
        }
    }
}
