//! The oracle-guided SAT attack (Subramanyan, Ray & Malik, HOST 2015).
//!
//! This is the baseline every SAT-resilient scheme is designed against and
//! the comparison point of Figures 5 and 6.  The attack iteratively finds
//! *distinguishing input patterns* — inputs on which two key classes produce
//! different outputs — queries the oracle, and constrains the key space with
//! the observed I/O pair, until no distinguishing input remains.

use std::time::{Duration, Instant};

use locking::Key;
use netlist::cnf::encode_any_difference;
use netlist::Netlist;
use sat::{SolveResult, Solver};

use crate::encode::{
    constrain_equal_const, instantiate, instantiate_sharing_inputs, instantiate_sharing_keys,
    model_key, model_values,
};
use crate::oracle::Oracle;

/// Configuration for the SAT attack.
#[derive(Clone, Debug)]
pub struct SatAttackConfig {
    /// Abort after this many distinguishing-input iterations.
    pub max_iterations: usize,
    /// Wall-clock time limit (the paper uses 1000 s).
    pub time_limit: Option<Duration>,
    /// Conflict budget per individual SAT call; `None` means unlimited.
    pub conflict_budget: Option<u64>,
}

impl Default for SatAttackConfig {
    fn default() -> SatAttackConfig {
        SatAttackConfig {
            max_iterations: 100_000,
            time_limit: Some(Duration::from_secs(1000)),
            conflict_budget: None,
        }
    }
}

impl SatAttackConfig {
    /// A configuration with the given wall-clock time limit.
    pub fn with_time_limit(limit: Duration) -> SatAttackConfig {
        SatAttackConfig {
            time_limit: Some(limit),
            ..SatAttackConfig::default()
        }
    }
}

/// Why the SAT attack stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatAttackStatus {
    /// No distinguishing input remains; the returned key is provably correct
    /// (relative to the oracle).
    Success,
    /// The time limit or conflict budget was exhausted first.
    TimedOut,
    /// The iteration cap was reached.
    IterationLimit,
    /// The key-consistency formula became unsatisfiable, which indicates the
    /// oracle does not correspond to the locked circuit.
    Inconsistent,
}

/// The outcome of a SAT attack run.
#[derive(Clone, Debug)]
pub struct SatAttackResult {
    /// The recovered key, if the attack completed.
    pub key: Option<Key>,
    /// Termination reason.
    pub status: SatAttackStatus,
    /// Number of distinguishing-input iterations performed.
    pub iterations: usize,
    /// Number of oracle queries issued.
    pub oracle_queries: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl SatAttackResult {
    /// Returns `true` if a provably correct key was produced.
    pub fn is_success(&self) -> bool {
        self.status == SatAttackStatus::Success && self.key.is_some()
    }
}

/// Runs the SAT attack against a locked netlist using an I/O oracle.
///
/// # Panics
///
/// Panics if the oracle input width differs from the locked circuit's.
pub fn sat_attack(
    locked: &Netlist,
    oracle: &dyn Oracle,
    config: &SatAttackConfig,
) -> SatAttackResult {
    assert_eq!(
        oracle.num_inputs(),
        locked.num_inputs(),
        "oracle width does not match the locked circuit"
    );
    let start = Instant::now();

    // Distinguishing-input solver: two copies sharing X, with differing outputs.
    let mut dis_solver = Solver::new();
    dis_solver.set_conflict_budget(config.conflict_budget);
    let copy1 = instantiate(locked, &mut dis_solver);
    let copy2 = instantiate_sharing_inputs(locked, &mut dis_solver, &copy1.inputs);
    let diff = encode_any_difference(&mut dis_solver, &copy1.outputs, &copy2.outputs);
    dis_solver.add_clause([diff]);

    // Key solver: accumulates C(Xd, K, Yd) constraints for the final key.
    let mut key_solver = Solver::new();
    key_solver.set_conflict_budget(config.conflict_budget);
    let key_copy = instantiate(locked, &mut key_solver);
    let key_lits = key_copy.keys.clone();

    let mut iterations = 0usize;
    let mut oracle_queries = 0usize;

    let timed_out = |start: &Instant| {
        config
            .time_limit
            .map_or(false, |limit| start.elapsed() >= limit)
    };

    loop {
        if iterations >= config.max_iterations {
            return SatAttackResult {
                key: None,
                status: SatAttackStatus::IterationLimit,
                iterations,
                oracle_queries,
                elapsed: start.elapsed(),
            };
        }
        if timed_out(&start) {
            return SatAttackResult {
                key: None,
                status: SatAttackStatus::TimedOut,
                iterations,
                oracle_queries,
                elapsed: start.elapsed(),
            };
        }
        match dis_solver.solve() {
            SolveResult::Unknown => {
                return SatAttackResult {
                    key: None,
                    status: SatAttackStatus::TimedOut,
                    iterations,
                    oracle_queries,
                    elapsed: start.elapsed(),
                }
            }
            SolveResult::Unsat => break,
            SolveResult::Sat => {}
        }
        iterations += 1;
        let distinguishing_input = model_values(&dis_solver, &copy1.inputs);
        let observed_output = oracle.query(&distinguishing_input);
        oracle_queries += 1;

        // Constrain both key copies of the distinguishing solver and the key
        // solver with the observed I/O behaviour.
        for keys in [&copy1.keys, &copy2.keys] {
            let constrained = instantiate_sharing_keys(locked, &mut dis_solver, keys);
            constrain_equal_const(&mut dis_solver, &constrained.inputs, &distinguishing_input);
            constrain_equal_const(&mut dis_solver, &constrained.outputs, &observed_output);
        }
        let key_constrained = instantiate_sharing_keys(locked, &mut key_solver, &key_lits);
        constrain_equal_const(&mut key_solver, &key_constrained.inputs, &distinguishing_input);
        constrain_equal_const(&mut key_solver, &key_constrained.outputs, &observed_output);
    }

    // No distinguishing input remains: any key satisfying the accumulated I/O
    // constraints is functionally correct.
    match key_solver.solve() {
        SolveResult::Sat => SatAttackResult {
            key: Some(model_key(&key_solver, &key_lits)),
            status: SatAttackStatus::Success,
            iterations,
            oracle_queries,
            elapsed: start.elapsed(),
        },
        SolveResult::Unsat => SatAttackResult {
            key: None,
            status: SatAttackStatus::Inconsistent,
            iterations,
            oracle_queries,
            elapsed: start.elapsed(),
        },
        SolveResult::Unknown => SatAttackResult {
            key: None,
            status: SatAttackStatus::TimedOut,
            iterations,
            oracle_queries,
            elapsed: start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CountingOracle, SimOracle};
    use locking::{LockingScheme, SfllHd, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;

    #[test]
    fn breaks_random_xor_locking() {
        let original = generate(&RandomCircuitSpec::new("sa_xor", 8, 3, 60));
        let locked = XorLock::new(8).with_seed(5).lock(&original).expect("lock");
        let oracle = CountingOracle::new(SimOracle::new(original.clone()));
        let result = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
        assert!(result.is_success(), "status {:?}", result.status);
        let key = result.key.expect("key");
        // The recovered key need not be bit-identical to the inserted one but
        // must be functionally correct.
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            assert_eq!(
                locked.locked.evaluate(&bits, key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
        assert_eq!(result.oracle_queries, result.iterations);
        assert!(result.oracle_queries > 0);
    }

    #[test]
    fn needs_many_iterations_on_sfll() {
        // SFLL-HD0 with a 10-bit key: each wrong key is ruled out one
        // distinguishing input at a time, so the SAT attack needs on the
        // order of 2^10 iterations — this is the resilience property.  With a
        // small iteration cap the attack must fail.
        let original = generate(&RandomCircuitSpec::new("sa_sfll", 12, 2, 80));
        let locked = SfllHd::new(10, 0).with_seed(3).lock(&original).expect("lock");
        let oracle = SimOracle::new(original);
        let config = SatAttackConfig {
            max_iterations: 20,
            time_limit: None,
            conflict_budget: None,
        };
        let result = sat_attack(&locked.locked, &oracle, &config);
        assert_eq!(result.status, SatAttackStatus::IterationLimit);
        assert!(result.key.is_none());
    }

    #[test]
    fn succeeds_on_small_sfll_instances_eventually() {
        // With a tiny key the SAT attack still wins — resilience is about
        // scaling, not impossibility.
        let original = generate(&RandomCircuitSpec::new("sa_small", 8, 2, 50));
        let locked = SfllHd::new(4, 0).with_seed(11).lock(&original).expect("lock");
        let oracle = SimOracle::new(original.clone());
        let result = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
        assert!(result.is_success());
        let key = result.key.expect("key");
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            assert_eq!(
                locked.locked.evaluate(&bits, key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }

    #[test]
    fn time_limit_is_respected() {
        let original = generate(&RandomCircuitSpec::new("sa_to", 14, 2, 100));
        let locked = SfllHd::new(12, 0).with_seed(7).lock(&original).expect("lock");
        let oracle = SimOracle::new(original);
        let config = SatAttackConfig::with_time_limit(Duration::from_millis(50));
        let result = sat_attack(&locked.locked, &oracle, &config);
        assert!(matches!(
            result.status,
            SatAttackStatus::TimedOut | SatAttackStatus::Success
        ));
        if result.status == SatAttackStatus::TimedOut {
            assert!(result.elapsed >= Duration::from_millis(50));
        }
    }
}
