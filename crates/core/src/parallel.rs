//! The parallel attack engine: partitioned key search on a worker pool and
//! solver portfolios.
//!
//! § VI-D of the paper observes that the key-confirmation predicate ϕ makes
//! the key space trivially partitionable: fixing the first `p` key bits
//! yields `2^p` *independent* regions, each a self-contained confirmation
//! problem.  This module dispatches those regions to a fixed pool of worker
//! threads; every **worker** owns one long-lived [`sat::Solver`]-backed
//! [`AttackSession`] for its whole lifetime — each region binds ϕ in a
//! retireable predicate generation ([`AttackSession::begin_predicate`]) that
//! is retired when the region concludes, so the circuit encodings and the
//! frame-independent learnt clauses carry over from region to region instead
//! of being rebuilt `2^p` times:
//!
//! * **Work queue, not static chunking** — regions are pulled from a shared
//!   atomic counter, so a worker that drew an easy (quickly-UNSAT) region
//!   immediately moves on while a skewed region keeps exactly one worker
//!   busy.
//! * **Shared oracle cache** — all workers query the activated chip through
//!   one [`CachingOracle`]: a sharded map that deduplicates concurrent
//!   queries, so the parallel attack issues (almost) no more real oracle
//!   queries than the serial one.  Real oracle access is the expensive,
//!   physically-limited resource in the threat model, so this matters more
//!   than raw CPU scaling.
//! * **Cancellation token** — the moment one worker confirms a key, every
//!   other solver observes the shared [`CancelToken`] at its next check
//!   point (mid-search, not just between queries) and backs out.
//!
//! [`portfolio_sat_attack`] applies the same pool to a different axis:
//! instead of splitting the key space it races N deliberately diverse
//! [`SolverConfig`]s (restart pacing, decay rates, phase polarity, random
//! branching — see [`SolverConfig::portfolio`]) on the *same* SAT-attack
//! instance and takes the first winner, the classic portfolio pattern of
//! parallel SAT solving.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use locking::Key;
use netlist::Netlist;
use sat::{SolverConfig, SolverStats};

use crate::key_confirmation::{key_confirmation_with_predicate_in, KeyConfirmationConfig};
use crate::oracle::Oracle;
use crate::sat_attack::{sat_attack_in, SatAttackConfig, SatAttackResult};
use crate::session::AttackSession;

/// A cloneable cancellation token shared by a group of workers.
///
/// Cancelling is sticky and idempotent.  Solvers observe the token through
/// [`AttackSession::set_interrupt`], so a long-running SAT query stops at its
/// next conflict/decision check point rather than at the next attack-loop
/// iteration.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation of every worker sharing this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Returns `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The shared flag, in the form [`AttackSession::set_interrupt`] expects.
    pub fn as_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// Number of independently-locked shards in a [`CachingOracle`].
const ORACLE_SHARDS: usize = 16;

/// How a [`CachingOracle`] holds the oracle it deduplicates.
enum OracleRef<'o> {
    /// Borrowed for the duration of one attack run (the worker-pool case:
    /// the oracle outlives the scoped threads).
    Borrowed(&'o (dyn Oracle + Sync)),
    /// Shared ownership, for long-lived holders like the session server's
    /// target pool where no enclosing scope outlives the cache.
    Owned(Arc<dyn Oracle + Send + Sync>),
}

/// A thread-safe, deduplicating adapter around an I/O oracle.
///
/// Queries are memoized in a map sharded by input-pattern hash, so workers
/// contend on a shard only when they race on *nearby* patterns; the shard
/// lock is held across the underlying query, which guarantees each distinct
/// pattern reaches the real oracle exactly once no matter how many workers
/// ask for it concurrently.
pub struct CachingOracle<'o> {
    inner: OracleRef<'o>,
    shards: [Mutex<HashMap<Vec<bool>, Vec<bool>>>; ORACLE_SHARDS],
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<'o> CachingOracle<'o> {
    /// Wraps a borrowed oracle in a fresh (empty) shared cache.
    pub fn new(inner: &'o (dyn Oracle + Sync)) -> CachingOracle<'o> {
        CachingOracle {
            inner: OracleRef::Borrowed(inner),
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Wraps a shared (reference-counted) oracle in a fresh cache.
    ///
    /// The resulting `CachingOracle<'static>` owns its oracle, so it can live
    /// in long-running structures — the session server keeps one per
    /// registered target so every job against that target deduplicates
    /// through the same cache — instead of being scoped to one attack run.
    pub fn shared(inner: Arc<dyn Oracle + Send + Sync>) -> CachingOracle<'static> {
        CachingOracle {
            inner: OracleRef::Owned(inner),
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The wrapped oracle, whichever way it is held.
    fn inner(&self) -> &(dyn Oracle + Sync) {
        match &self.inner {
            OracleRef::Borrowed(oracle) => *oracle,
            OracleRef::Owned(oracle) => oracle.as_ref(),
        }
    }

    /// Number of queries answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of distinct patterns forwarded to the underlying oracle.
    pub fn unique_queries(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    fn shard(&self, inputs: &[bool]) -> &Mutex<HashMap<Vec<bool>, Vec<bool>>> {
        let mut hasher = DefaultHasher::new();
        inputs.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % ORACLE_SHARDS]
    }
}

impl Oracle for CachingOracle<'_> {
    fn query(&self, inputs: &[bool]) -> Vec<bool> {
        let mut shard = self.shard(inputs).lock().expect("oracle shard poisoned");
        if let Some(outputs) = shard.get(inputs) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return outputs.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // A distinct phase from the attack loop's logical "oracle_query"
        // span: this one times only deduplicated access to the real oracle.
        let _span = crate::trace::span("oracle_miss");
        let outputs = self.inner().query(inputs);
        shard.insert(inputs.to_vec(), outputs.clone());
        outputs
    }

    /// Word-batched queries deduplicate *per pattern*: each of the
    /// `width * 64` patterns in the block resolves through the shard cache
    /// individually, so repeats — inside the block, across blocks, or
    /// against earlier scalar queries — never reach the real oracle twice
    /// and [`CachingOracle::unique_queries`] counts exactly the distinct
    /// patterns, whatever mix of transports the workers use.
    fn query_words(&self, inputs: &[u64], width: usize) -> Vec<u64> {
        assert!(width > 0, "batched query needs at least one word");
        assert_eq!(
            inputs.len(),
            self.num_inputs() * width,
            "batched stimulus width mismatch"
        );
        let n = self.num_inputs();
        let mut out = vec![0u64; self.num_outputs() * width];
        let mut bits = vec![false; n];
        for lane in 0..width {
            for bit in 0..64 {
                for (i, b) in bits.iter_mut().enumerate() {
                    *b = (inputs[i * width + lane] >> bit) & 1 == 1;
                }
                let outputs = self.query(&bits);
                for (o, &v) in outputs.iter().enumerate() {
                    out[o * width + lane] |= u64::from(v) << bit;
                }
            }
        }
        out
    }

    fn num_inputs(&self) -> usize {
        self.inner().num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner().num_outputs()
    }
}

/// A source of key-space region indices for a region-draining worker.
///
/// [`drain_regions`] pulls region indices from one of these until it is
/// exhausted, a key is found, or the run is cancelled.  The in-process
/// engine uses [`AtomicRegionSource`] (a shared atomic counter); the
/// multi-process farm in [`crate::dist`] implements the same trait over a
/// wire protocol, so the region-draining worker loop is written exactly once.
pub trait RegionSource: Sync {
    /// The next region to search, or `None` when the queue is drained (or
    /// the run is over).  May block — a distributed source waits on the
    /// supervisor's reply here.
    fn next_region(&self) -> Option<u64>;

    /// Acknowledges that `region` completed without a key.  A distributed
    /// source reports this to its supervisor so the lease can be retired;
    /// the in-process source needs no acknowledgement (regions are retired
    /// the moment they are handed out, because a thread cannot crash
    /// independently of the process).
    ///
    /// `stats` is the worker session's cumulative [`SolverStats`] snapshot at
    /// completion time.  A distributed source piggybacks it on the
    /// acknowledgement so the supervisor can maintain a farm-wide aggregate
    /// without an extra round trip; the in-process source ignores it (the
    /// pool absorbs each session's stats once, at thread exit).
    fn complete_region(&self, _region: u64, _iterations: usize, _stats: &SolverStats) {}
}

/// The in-process [`RegionSource`]: a shared atomic counter over the dense
/// region range `0..regions`.
#[derive(Debug)]
pub struct AtomicRegionSource {
    next: AtomicU64,
    regions: u64,
}

impl AtomicRegionSource {
    /// A source that deals out `0..regions` exactly once across all pullers.
    pub fn new(regions: u64) -> AtomicRegionSource {
        AtomicRegionSource {
            next: AtomicU64::new(0),
            regions,
        }
    }
}

impl RegionSource for AtomicRegionSource {
    fn next_region(&self) -> Option<u64> {
        let region = self.next.fetch_add(1, Ordering::Relaxed);
        (region < self.regions).then_some(region)
    }
}

/// Why a [`drain_regions`] call returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegionDrainOutcome {
    /// The source ran dry: every region this worker pulled completed and
    /// proved keyless.
    Drained,
    /// A region confirmed a key.
    Winner {
        /// The region whose constraints admitted the key.
        region: u64,
        /// The confirmed key.
        key: Key,
    },
    /// A region hit its iteration/time/conflict budget without concluding;
    /// mirroring the serial search, the whole run should abort as
    /// incomplete.
    Exhausted {
        /// The region whose search ran out of budget.
        region: u64,
    },
    /// The shared [`CancelToken`] fired (another worker won, or the caller
    /// aborted) before or during a region search.
    Cancelled,
}

/// What one worker did in a [`drain_regions`] call.
#[derive(Clone, Debug)]
pub struct RegionDrain {
    /// Why the drain ended.
    pub outcome: RegionDrainOutcome,
    /// Distinguishing-input iterations summed over all regions searched.
    pub iterations: usize,
    /// Regions this worker pulled (fully or partially searched).
    pub regions_searched: usize,
}

/// The region-draining worker loop, shared by the in-process pool and the
/// multi-process farm: pull regions from `source` and run key confirmation
/// for each on the worker's long-lived `session`, binding the region's
/// key-bit constraints in a retireable predicate generation.
///
/// Region `r` constrains key bit `b < partition_bits` to `(r >> b) & 1` —
/// the §VI-D partition, identical to
/// [`crate::key_confirmation::partitioned_key_search`].  Completed keyless
/// regions are acknowledged via [`RegionSource::complete_region`]; a winner
/// or a budget exhaustion ends the drain immediately (the *caller* decides
/// whether to cancel the rest of the pool).  The session must already be
/// primed and must not have a predicate generation in flight.
pub fn drain_regions(
    session: &mut AttackSession,
    oracle: &dyn Oracle,
    source: &dyn RegionSource,
    partition_bits: usize,
    config: &KeyConfirmationConfig,
    cancel: &CancelToken,
) -> RegionDrain {
    let mut iterations = 0;
    let mut regions_searched = 0;
    let outcome = loop {
        if cancel.is_cancelled() {
            break RegionDrainOutcome::Cancelled;
        }
        let Some(region) = source.next_region() else {
            break RegionDrainOutcome::Drained;
        };
        regions_searched += 1;
        let _region_span = crate::trace::span("region_drain");

        let result = key_confirmation_with_predicate_in(session, oracle, config, |s, keys| {
            for (bit, &lit) in keys.iter().enumerate().take(partition_bits) {
                let value = (region >> bit) & 1 == 1;
                s.add_clause([if value { lit } else { !lit }]);
            }
        });
        iterations += result.iterations;

        if let Some(key) = result.key {
            break RegionDrainOutcome::Winner { region, key };
        }
        if !result.completed {
            // Distinguish "the token fired and interrupted us" from a
            // genuine budget exhaustion.
            if cancel.is_cancelled() {
                break RegionDrainOutcome::Cancelled;
            }
            break RegionDrainOutcome::Exhausted { region };
        }
        let stats = session.stats();
        source.complete_region(region, result.iterations, &stats);
    };
    RegionDrain {
        outcome,
        iterations,
        regions_searched,
    }
}

/// The outcome of a [`parallel_partitioned_key_search`] run.
#[derive(Clone, Debug)]
pub struct ParallelSearchResult {
    /// The confirmed key, or `None` if no region contained one.
    pub key: Option<Key>,
    /// `true` if the search finished: either a key was confirmed or every
    /// region completed (proving no key exists).  `false` when a region hit
    /// its budgets or the partition was unenumerable.
    pub completed: bool,
    /// Distinguishing-input iterations summed across all workers.
    pub iterations: usize,
    /// Distinct patterns that reached the real oracle (cache misses).
    pub oracle_queries: usize,
    /// Oracle queries answered from the shared cache.
    pub cache_hits: usize,
    /// Regions fully or partially searched before the run ended.
    pub regions_searched: usize,
    /// Worker threads used.
    pub workers: usize,
    /// [`AttackSession`]s created over the whole run: one per worker (not one
    /// per region — regions reuse their worker's session via predicate
    /// generations).
    pub sessions_created: usize,
    /// Full circuit encodings built across all sessions: one per worker
    /// (each worker primes its session once at thread start), however many
    /// regions it went on to search.
    pub cone_encodings_built: usize,
    /// Clause-arena garbage collections summed across all worker solvers.
    pub gc_runs: u64,
    /// Per-generation Tseitin variables recycled, summed across all workers:
    /// the counter that keeps a long-lived worker's variable space bounded
    /// however many regions it searches.
    pub recycled_vars: u64,
    /// Largest end-of-run clause-arena size across the workers, in bytes.
    pub peak_arena_bytes: u64,
    /// Largest end-of-run wasted (tombstoned, not yet collected) byte count
    /// across the workers.
    pub peak_wasted_bytes: u64,
    /// End-of-run [`SolverStats`] absorbed across every worker session:
    /// conflicts/propagations, restarts by kind, reduction rounds, tier
    /// sizes, eliminated/resurrected variables, EMA snapshots — the full
    /// counter surface, for metric export and bench gating.
    pub solver_stats: SolverStats,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// Parallel version of [`crate::key_confirmation::partitioned_key_search`]:
/// the `2^partition_bits` key-space regions are pulled from a shared work
/// queue by `workers` threads, each running key confirmation on **one
/// long-lived [`AttackSession`] per worker** (ϕ is bound and retired per
/// region via predicate generations), with a shared deduplicating oracle
/// cache and first-winner cancellation.
///
/// Each worker primes its session (full circuit encoding, key-cone sweep) at
/// thread start, so the run performs exactly `workers` session creations and
/// full encodings — deterministically, whatever the scheduler does — instead
/// of one per region.  A region whose constraints turn out contradictory
/// poisons only its own generation; the worker retires it and takes the next
/// region.
///
/// `partition_bits` is clamped to the key width; ≥ 64 effective bits returns
/// `completed: false` immediately (see the serial version for why).  One
/// worker drains the queue in the serial region order on a single session.
pub fn parallel_partitioned_key_search(
    locked: &Netlist,
    oracle: &(dyn Oracle + Sync),
    partition_bits: usize,
    workers: usize,
    config: &KeyConfirmationConfig,
) -> ParallelSearchResult {
    let start = Instant::now();
    let workers = workers.max(1);
    let partition_bits = partition_bits.min(locked.num_key_inputs());
    let empty = |completed| ParallelSearchResult {
        key: None,
        completed,
        iterations: 0,
        oracle_queries: 0,
        cache_hits: 0,
        regions_searched: 0,
        workers,
        sessions_created: 0,
        cone_encodings_built: 0,
        gc_runs: 0,
        recycled_vars: 0,
        peak_arena_bytes: 0,
        peak_wasted_bytes: 0,
        solver_stats: SolverStats::default(),
        elapsed: start.elapsed(),
    };
    if partition_bits >= u64::BITS as usize {
        return empty(false);
    }
    let num_regions = 1u64 << partition_bits;

    let cache = CachingOracle::new(oracle);
    let cancel = CancelToken::new();
    let source = AtomicRegionSource::new(num_regions);
    let winner: Mutex<Option<Key>> = Mutex::new(None);
    let exhausted_budget = AtomicBool::new(false);
    let iterations = AtomicUsize::new(0);
    let regions_searched = AtomicUsize::new(0);
    let sessions_created = AtomicUsize::new(0);
    let cone_encodings_built = AtomicUsize::new(0);
    let gc_runs = AtomicU64::new(0);
    let recycled_vars = AtomicU64::new(0);
    let peak_arena_bytes = AtomicU64::new(0);
    let peak_wasted_bytes = AtomicU64::new(0);
    let pool_stats: Mutex<SolverStats> = Mutex::new(SolverStats::default());

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One session for this worker's whole lifetime, primed before
                // the first region so the encoding counters are deterministic.
                sessions_created.fetch_add(1, Ordering::Relaxed);
                let mut session = AttackSession::new(locked);
                session.set_interrupt(Some(cancel.as_flag()));
                session.prime();
                let drain = drain_regions(
                    &mut session,
                    &cache,
                    &source,
                    partition_bits,
                    config,
                    &cancel,
                );
                iterations.fetch_add(drain.iterations, Ordering::Relaxed);
                regions_searched.fetch_add(drain.regions_searched, Ordering::Relaxed);
                match drain.outcome {
                    RegionDrainOutcome::Winner { key, .. } => {
                        *winner.lock().expect("winner lock poisoned") = Some(key);
                        cancel.cancel();
                    }
                    RegionDrainOutcome::Exhausted { .. } => {
                        // Mirroring the serial search, a budget exhaustion
                        // anywhere aborts the whole run as incomplete.
                        exhausted_budget.store(true, Ordering::SeqCst);
                        cancel.cancel();
                    }
                    RegionDrainOutcome::Drained | RegionDrainOutcome::Cancelled => {}
                }
                cone_encodings_built
                    .fetch_add(session.cone_encodings_built() as usize, Ordering::Relaxed);
                let stats = session.stats();
                gc_runs.fetch_add(stats.gc_runs, Ordering::Relaxed);
                recycled_vars.fetch_add(stats.recycled_vars, Ordering::Relaxed);
                peak_arena_bytes.fetch_max(stats.arena_bytes, Ordering::Relaxed);
                peak_wasted_bytes.fetch_max(stats.wasted_bytes, Ordering::Relaxed);
                pool_stats
                    .lock()
                    .expect("pool stats lock poisoned")
                    .absorb(&stats);
            });
        }
    });

    let key = winner.into_inner().expect("winner lock poisoned");
    let searched = regions_searched.load(Ordering::Relaxed);
    let completed = key.is_some()
        || (!exhausted_budget.load(Ordering::SeqCst) && searched as u64 == num_regions);
    ParallelSearchResult {
        completed,
        key,
        iterations: iterations.load(Ordering::Relaxed),
        oracle_queries: cache.unique_queries(),
        cache_hits: cache.hits(),
        regions_searched: searched,
        workers,
        sessions_created: sessions_created.load(Ordering::Relaxed),
        cone_encodings_built: cone_encodings_built.load(Ordering::Relaxed),
        gc_runs: gc_runs.load(Ordering::Relaxed),
        recycled_vars: recycled_vars.load(Ordering::Relaxed),
        peak_arena_bytes: peak_arena_bytes.load(Ordering::Relaxed),
        peak_wasted_bytes: peak_wasted_bytes.load(Ordering::Relaxed),
        solver_stats: pool_stats.into_inner().expect("pool stats lock poisoned"),
        elapsed: start.elapsed(),
    }
}

/// The outcome of a [`portfolio_sat_attack`] run.
#[derive(Clone, Debug)]
pub struct PortfolioResult {
    /// The winning attack result (or, when nobody won, the first loser's).
    pub result: SatAttackResult,
    /// Index into the configuration slice of the racer that won.
    pub winner: Option<usize>,
    /// Racers launched.
    pub workers: usize,
    /// Distinct patterns that reached the real oracle (cache misses).
    pub oracle_queries: usize,
    /// Oracle queries answered from the shared cache.
    pub cache_hits: usize,
    /// Wall-clock time of the whole race.
    pub elapsed: Duration,
}

/// Races one SAT attack per [`SolverConfig`] on the same locked circuit and
/// returns the first success, cancelling the rest.
///
/// All racers share one [`CachingOracle`], so distinguishing inputs
/// discovered by one racer are free for the others — the portfolio costs CPU,
/// not oracle access.  When every racer fails (timeout, budget, inconsistent
/// oracle), the first failure recorded is returned with `winner: None`.
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn portfolio_sat_attack(
    locked: &Netlist,
    oracle: &(dyn Oracle + Sync),
    configs: &[SolverConfig],
    attack: &SatAttackConfig,
) -> PortfolioResult {
    assert!(!configs.is_empty(), "portfolio needs at least one config");
    let start = Instant::now();
    let cache = CachingOracle::new(oracle);
    let cancel = CancelToken::new();
    let outcome: Mutex<Option<(Option<usize>, SatAttackResult)>> = Mutex::new(None);

    thread::scope(|scope| {
        for (index, solver_config) in configs.iter().enumerate() {
            let (cache, cancel, outcome) = (&cache, &cancel, &outcome);
            scope.spawn(move || {
                let mut session = AttackSession::with_config(locked, solver_config.clone());
                session.set_interrupt(Some(cancel.as_flag()));
                let result = sat_attack_in(&mut session, cache, attack);
                let mut slot = outcome.lock().expect("outcome lock poisoned");
                if result.is_success() {
                    if !matches!(&*slot, Some((Some(_), _))) {
                        *slot = Some((Some(index), result));
                        cancel.cancel();
                    }
                } else if slot.is_none() && !cancel.is_cancelled() {
                    // Remember the first genuine failure as the fallback
                    // verdict; keep racing — someone else may still win.
                    *slot = Some((None, result));
                }
            });
        }
    });

    let (winner, result) = outcome
        .into_inner()
        .expect("outcome lock poisoned")
        .expect("every racer records an outcome");
    PortfolioResult {
        result,
        winner,
        workers: configs.len(),
        oracle_queries: cache.unique_queries(),
        cache_hits: cache.hits(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_confirmation::{partitioned_key_search, KeyConfirmationConfig};
    use crate::oracle::SimOracle;
    use crate::sat_attack::SatAttackStatus;
    use locking::{LockingScheme, SfllHd, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.flag.load(Ordering::SeqCst));
    }

    #[test]
    fn caching_oracle_deduplicates_queries() {
        let nl = generate(&RandomCircuitSpec::new("cache", 6, 2, 30));
        let sim = SimOracle::new(nl.clone());
        let cache = CachingOracle::new(&sim);
        let a = vec![true, false, true, false, true, false];
        let b = vec![false; 6];
        assert_eq!(cache.query(&a), nl.evaluate(&a, &[]));
        assert_eq!(cache.query(&b), nl.evaluate(&b, &[]));
        assert_eq!(cache.query(&a), nl.evaluate(&a, &[]));
        assert_eq!(cache.unique_queries(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.num_inputs(), 6);
        assert_eq!(cache.num_outputs(), 2);
    }

    #[test]
    fn caching_oracle_dedups_batched_queries_per_pattern() {
        let nl = generate(&RandomCircuitSpec::new("cache_w", 6, 2, 30));
        let sim = SimOracle::new(nl.clone());
        let counting = crate::oracle::CountingOracle::new(sim);
        let cache = CachingOracle::new(&counting);
        // Two lanes holding the same 64 patterns: the second lane and the
        // second call must be pure cache hits.
        let mut inputs = vec![0u64; 6 * 2];
        for (i, chunk) in inputs.chunks_mut(2).enumerate() {
            let word = 0xAAAA_5555_0F0F_3C3Cu64.rotate_left(i as u32 * 7);
            chunk[0] = word;
            chunk[1] = word;
        }
        let first = cache.query_words(&inputs, 2);
        assert_eq!(first, sim_reference(&nl, &inputs, 2));
        assert!(cache.unique_queries() <= 64);
        let unique_after_first = cache.unique_queries();
        let again = cache.query_words(&inputs, 2);
        assert_eq!(again, first);
        assert_eq!(cache.unique_queries(), unique_after_first);
        // Only the distinct patterns reached the real oracle.
        assert_eq!(counting.queries(), unique_after_first);
    }

    fn sim_reference(nl: &Netlist, inputs: &[u64], width: usize) -> Vec<u64> {
        let n = nl.num_inputs();
        let mut out = vec![0u64; nl.num_outputs() * width];
        for lane in 0..width {
            for bit in 0..64 {
                let bits: Vec<bool> = (0..n)
                    .map(|i| (inputs[i * width + lane] >> bit) & 1 == 1)
                    .collect();
                for (o, &v) in nl.evaluate(&bits, &[]).iter().enumerate() {
                    out[o * width + lane] |= u64::from(v) << bit;
                }
            }
        }
        out
    }

    #[test]
    fn caching_oracle_is_consistent_under_concurrency() {
        let nl = generate(&RandomCircuitSpec::new("cache_mt", 8, 2, 40));
        let sim = SimOracle::new(nl.clone());
        let cache = CachingOracle::new(&sim);
        thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                let nl = &nl;
                scope.spawn(move || {
                    for pattern in 0..32u64 {
                        let bits = netlist::sim::pattern_to_bits(pattern ^ t, 8);
                        assert_eq!(cache.query(&bits), nl.evaluate(&bits, &[]));
                    }
                });
            }
        });
        // 4 threads × 32 overlapping patterns, but ≤ 35 distinct ones.
        assert!(cache.unique_queries() <= 35, "{}", cache.unique_queries());
        assert_eq!(cache.hits() + cache.unique_queries(), 128);
    }

    #[test]
    fn parallel_search_agrees_with_serial_across_worker_counts() {
        let original = generate(&RandomCircuitSpec::new("par_kc", 8, 2, 50));
        let locked = SfllHd::new(5, 0)
            .with_seed(2)
            .lock(&original)
            .expect("lock");
        let oracle = SimOracle::new(original);
        let config = KeyConfirmationConfig::default();
        let serial = partitioned_key_search(&locked.locked, &oracle, 2, &config);
        assert!(serial.completed);
        for workers in 1..=4 {
            let parallel =
                parallel_partitioned_key_search(&locked.locked, &oracle, 2, workers, &config);
            assert!(parallel.completed, "{workers} workers");
            let key = parallel.key.as_ref().expect("key recovered");
            assert!(
                locked.key_is_functionally_correct(key, 200, 4),
                "{workers} workers"
            );
            assert_eq!(parallel.workers, workers);
            assert!(parallel.regions_searched as u64 <= 4);
            assert_eq!(
                parallel.sessions_created, workers,
                "one session per worker, not per region"
            );
            assert_eq!(
                parallel.cone_encodings_built, workers,
                "each worker encodes the circuit exactly once"
            );
            assert!(
                parallel.peak_arena_bytes > 0,
                "{workers} workers: arena footprint is reported"
            );
            assert!(
                parallel.recycled_vars > 0,
                "{workers} workers: retired generations recycle their variables"
            );
        }
    }

    #[test]
    fn parallel_search_reports_exhausted_key_space() {
        // An oracle for an unrelated circuit: no key in any region works.
        let original = generate(&RandomCircuitSpec::new("par_none", 8, 2, 50));
        let unrelated = generate(&RandomCircuitSpec::new("par_none2", 8, 2, 50).with_seed(7));
        let locked = XorLock::new(4).with_seed(3).lock(&original).expect("lock");
        let oracle = SimOracle::new(unrelated);
        let result = parallel_partitioned_key_search(
            &locked.locked,
            &oracle,
            2,
            2,
            &KeyConfirmationConfig::default(),
        );
        assert!(result.completed);
        assert_eq!(result.key, None);
        assert_eq!(result.regions_searched, 4);
    }

    #[test]
    fn parallel_search_guards_unenumerable_partitions() {
        let (locked, original) = crate::test_fixtures::wide_key_circuit_and_original();
        let oracle = SimOracle::new(original);
        let result = parallel_partitioned_key_search(
            &locked,
            &oracle,
            usize::MAX,
            4,
            &KeyConfirmationConfig::default(),
        );
        assert!(!result.completed);
        assert_eq!(result.key, None);
        assert_eq!(result.regions_searched, 0);
    }

    #[test]
    fn portfolio_first_winner_takes_it() {
        let original = generate(&RandomCircuitSpec::new("pf", 8, 3, 60));
        let locked = XorLock::new(6).with_seed(5).lock(&original).expect("lock");
        let oracle = SimOracle::new(original.clone());
        let outcome = portfolio_sat_attack(
            &locked.locked,
            &oracle,
            &SolverConfig::portfolio(3),
            &SatAttackConfig::default(),
        );
        assert!(outcome.result.is_success(), "{:?}", outcome.result.status);
        assert!(outcome.winner.is_some());
        assert_eq!(outcome.workers, 3);
        let key = outcome.result.key.expect("key");
        for pattern in 0..256u64 {
            let bits = netlist::sim::pattern_to_bits(pattern, 8);
            assert_eq!(
                locked.locked.evaluate(&bits, key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }

    #[test]
    fn portfolio_reports_failure_when_nobody_wins() {
        let original = generate(&RandomCircuitSpec::new("pf_fail", 10, 2, 70));
        let locked = SfllHd::new(9, 0)
            .with_seed(3)
            .lock(&original)
            .expect("lock");
        let oracle = SimOracle::new(original);
        let attack = SatAttackConfig {
            max_iterations: 3,
            time_limit: None,
            conflict_budget: None,
        };
        let outcome = portfolio_sat_attack(
            &locked.locked,
            &oracle,
            &SolverConfig::portfolio(2),
            &attack,
        );
        assert!(outcome.winner.is_none());
        assert_eq!(outcome.result.status, SatAttackStatus::IterationLimit);
    }
}
