//! Distance2H (Algorithm 3, Lemma 2): attack on SFLL-HDh for `4h <= m`.
//!
//! Like SlidingWindow, this finds two satisfying assignments of the candidate
//! at Hamming distance `2h`; agreeing positions reveal key bits.  The
//! remaining bits are obtained with a *single* additional SAT query that asks
//! for another distance-`2h` pair that agrees on all previously disagreeing
//! positions, instead of one query per bit.

use std::collections::BTreeMap;

use netlist::{Netlist, NodeId};
use sat::SolveResult;

use super::pair::build_hd_query;
use super::prefilter::satisfying_within_distance;
use super::CubeAssignment;
use crate::session::AttackSession;

/// Runs the Distance2H analysis on a candidate node using a throwaway
/// session.  Prefer [`distance_2h_in`] when analysing several candidates of
/// the same netlist.
pub fn distance_2h(netlist: &Netlist, candidate: NodeId, h: usize) -> Option<CubeAssignment> {
    let mut session = AttackSession::new(netlist);
    distance_2h_in(&mut session, candidate, h)
}

/// Runs the Distance2H analysis on a candidate node through a shared attack
/// session.
///
/// `h` is the SFLL-HD parameter.  The analysis is complete only when
/// `4h <= m` (otherwise the second query may be unsatisfiable for the real
/// stripper as well); callers should consult
/// [`super::Analysis::applicable`].
pub fn distance_2h_in(
    session: &mut AttackSession<'_>,
    candidate: NodeId,
    h: usize,
) -> Option<CubeAssignment> {
    let query = build_hd_query(session, candidate, 2 * h)?;
    let netlist = session.netlist();
    let within = {
        let (sim, stats) = session.wide_sim_parts();
        satisfying_within_distance(netlist, candidate, &query.inputs, 2 * h, sim, stats)
    };
    if !within {
        return None;
    }
    if session.check_cone_property(&query.base) != SolveResult::Sat {
        return None;
    }
    let m1: Vec<bool> = query
        .x1
        .iter()
        .map(|&l| session.value(l).expect("model"))
        .collect();
    let m2: Vec<bool> = query
        .x2
        .iter()
        .map(|&l| session.value(l).expect("model"))
        .collect();

    let mut keys: BTreeMap<NodeId, bool> = BTreeMap::new();
    let mut disagreeing: Vec<usize> = Vec::new();
    for i in 0..query.inputs.len() {
        if m1[i] == m2[i] {
            keys.insert(query.inputs[i], m1[i]);
        } else {
            disagreeing.push(i);
        }
    }

    if !disagreeing.is_empty() {
        // Second query: force all previously disagreeing positions to agree.
        let mut assumptions = query.base.clone();
        assumptions.extend(disagreeing.iter().map(|&i| query.eq[i]));
        if session.check_cone_property(&assumptions) != SolveResult::Sat {
            return None;
        }
        for i in 0..query.inputs.len() {
            let v1 = session.value(query.x1[i]).expect("model");
            let v2 = session.value(query.x2[i]).expect("model");
            if v1 == v2 {
                keys.entry(query.inputs[i]).or_insert(v1);
            }
        }
    }

    if keys.len() != query.inputs.len() {
        return None;
    }
    Some(keys.into_iter().collect())
}

/// Convenience wrapper running [`distance_2h`] on several candidates through
/// one shared session.
pub fn distance_2h_all(
    netlist: &Netlist,
    candidates: &[NodeId],
    h: usize,
) -> Vec<(NodeId, Option<CubeAssignment>)> {
    let mut session = AttackSession::new(netlist);
    candidates
        .iter()
        .map(|&c| (c, distance_2h_in(&mut session, c, h)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::hamming::hamming_distance_equals_const;
    use netlist::sim::pattern_to_bits;
    use netlist::strash::strash;
    use netlist::{GateKind, Netlist};

    fn stripper(m: usize, cube: u64, h: usize) -> (Netlist, NodeId, Vec<NodeId>) {
        let mut nl = Netlist::new("strip");
        let xs: Vec<NodeId> = (0..m).map(|i| nl.add_input(format!("x{i}"))).collect();
        let cube_bits = pattern_to_bits(cube, m);
        let out = hamming_distance_equals_const(&mut nl, &xs, &cube_bits, h);
        nl.add_output("strip", out);
        (nl, out, xs)
    }

    fn expected(xs: &[NodeId], cube: u64) -> CubeAssignment {
        xs.iter()
            .enumerate()
            .map(|(i, &id)| (id, (cube >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn recovers_cube_when_4h_le_m() {
        for (m, cube, h) in [
            (8usize, 0b1011_0101u64, 1usize),
            (8, 0b0110_1100, 2),
            (12, 0xABC, 3),
        ] {
            let (nl, out, xs) = stripper(m, cube, h);
            let got = distance_2h(&nl, out, h).expect("cube recovered");
            assert_eq!(got, expected(&xs, cube), "m={m} cube={cube:b} h={h}");
        }
    }

    #[test]
    fn recovers_cube_after_strash() {
        let (nl, _, _) = stripper(8, 0b1100_1010, 2);
        let optimized = strash(&nl);
        let out = optimized.outputs()[0].1;
        let got = distance_2h(&optimized, out, 2).expect("cube recovered");
        let values: Vec<bool> = got.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, pattern_to_bits(0b1100_1010, 8));
    }

    #[test]
    fn agrees_with_sliding_window_on_the_stripper() {
        let (nl, out, _) = stripper(10, 0b10_1101_0011, 2);
        let a = distance_2h(&nl, out, 2).expect("distance2h");
        let b = super::super::sliding_window(&nl, out, 2).expect("sliding window");
        assert_eq!(a, b);
    }

    #[test]
    fn constant_false_candidate_is_rejected() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let na = nl.add_gate("na", GateKind::Not, &[a]);
        let f = nl.add_gate("f", GateKind::And, &[a, na]);
        nl.add_output("f", f);
        assert!(distance_2h(&nl, f, 1).is_none());
    }

    #[test]
    fn h_zero_returns_the_unique_satisfying_cube() {
        let (nl, out, xs) = stripper(6, 0b011010, 0);
        let got = distance_2h(&nl, out, 0).expect("cube recovered");
        assert_eq!(got, expected(&xs, 0b011010));
    }

    #[test]
    fn batch_helper_reports_per_candidate() {
        let (nl, out, _) = stripper(8, 0b00101100, 1);
        let results = distance_2h_all(&nl, &[out], 1);
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_some());
    }
}
