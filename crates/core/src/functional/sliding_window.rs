//! SlidingWindow (Algorithm 2, Lemmas 2 and 3): attack on SFLL-HDh for
//! `2h < m`.
//!
//! Two satisfying assignments of the cube stripping function at Hamming
//! distance `2h` must agree with the protected cube on every position where
//! they agree with each other (Lemma 2).  Positions where the first model
//! pair disagrees are resolved one by one with the Lemma 3 satisfiability
//! query: `F ∧ (x_j = x'_j) ∧ (x_j = b)` is satisfiable iff `b = k_j`.

use netlist::{Netlist, NodeId};
use sat::SolveResult;

use super::pair::build_hd_query;
use super::prefilter::satisfying_within_distance;
use super::CubeAssignment;
use crate::session::AttackSession;

/// Runs the SlidingWindow analysis on a candidate node using a throwaway
/// session.  Prefer [`sliding_window_in`] when analysing several candidates
/// of the same netlist.
pub fn sliding_window(netlist: &Netlist, candidate: NodeId, h: usize) -> Option<CubeAssignment> {
    let mut session = AttackSession::new(netlist);
    sliding_window_in(&mut session, candidate, h)
}

/// Runs the SlidingWindow analysis on a candidate node through a shared
/// attack session.
///
/// `h` is the SFLL-HD parameter the adversary knows (§ II-A).  Returns the
/// suspected protected cube, or `None` (⊥) if the node cannot be the cube
/// stripping function.
pub fn sliding_window_in(
    session: &mut AttackSession<'_>,
    candidate: NodeId,
    h: usize,
) -> Option<CubeAssignment> {
    let query = build_hd_query(session, candidate, 2 * h)?;
    // Word-parallel pre-filter: two satisfying assignments further than 2h
    // apart prove the candidate is not a radius-h sphere function.
    let netlist = session.netlist();
    let within = {
        let (sim, stats) = session.wide_sim_parts();
        satisfying_within_distance(netlist, candidate, &query.inputs, 2 * h, sim, stats)
    };
    if !within {
        return None;
    }
    if session.check_cone_property(&query.base) != SolveResult::Sat {
        return None;
    }
    let m1: Vec<bool> = query
        .x1
        .iter()
        .map(|&l| session.value(l).expect("model"))
        .collect();
    let m2: Vec<bool> = query
        .x2
        .iter()
        .map(|&l| session.value(l).expect("model"))
        .collect();

    let mut assignment: CubeAssignment = Vec::with_capacity(query.inputs.len());
    for i in 0..query.inputs.len() {
        let xi = query.inputs[i];
        if m1[i] == m2[i] {
            assignment.push((xi, m1[i]));
            continue;
        }
        // Lemma 3 query for both possible values of the disagreeing bit.
        let value_lit = |value: bool| if value { query.x2[i] } else { !query.x2[i] };
        let solve_pinned = |session: &mut AttackSession<'_>, value: bool| {
            let mut assumptions = query.base.clone();
            assumptions.push(query.eq[i]);
            assumptions.push(value_lit(value));
            session.check_cone_property(&assumptions) == SolveResult::Sat
        };
        let sat_with_m1 = solve_pinned(session, m1[i]);
        let sat_with_m2 = solve_pinned(session, m2[i]);
        match (sat_with_m1, sat_with_m2) {
            (true, false) => assignment.push((xi, m1[i])),
            (false, true) => assignment.push((xi, m2[i])),
            _ => return None,
        }
    }
    Some(assignment)
}

/// Convenience wrapper running [`sliding_window`] on several candidates
/// through one shared session and returning the per-candidate results.
pub fn sliding_window_all(
    netlist: &Netlist,
    candidates: &[NodeId],
    h: usize,
) -> Vec<(NodeId, Option<CubeAssignment>)> {
    let mut session = AttackSession::new(netlist);
    candidates
        .iter()
        .map(|&c| (c, sliding_window_in(&mut session, c, h)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::hamming::hamming_distance_equals_const;
    use netlist::sim::pattern_to_bits;
    use netlist::strash::strash;
    use netlist::{GateKind, Netlist};

    /// Builds a bare cube-stripping circuit `strip_h(cube)(X)` for testing.
    fn stripper(m: usize, cube: u64, h: usize) -> (Netlist, NodeId, Vec<NodeId>) {
        let mut nl = Netlist::new("strip");
        let xs: Vec<NodeId> = (0..m).map(|i| nl.add_input(format!("x{i}"))).collect();
        let cube_bits = pattern_to_bits(cube, m);
        let out = hamming_distance_equals_const(&mut nl, &xs, &cube_bits, h);
        nl.add_output("strip", out);
        (nl, out, xs)
    }

    #[test]
    fn recovers_cube_for_various_h() {
        for (m, cube, h) in [
            (6usize, 0b101101u64, 1usize),
            (6, 0b010011, 2),
            (8, 0xA5, 2),
        ] {
            let (nl, out, xs) = stripper(m, cube, h);
            let got = sliding_window(&nl, out, h).expect("cube recovered");
            let expected: CubeAssignment = xs
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, (cube >> i) & 1 == 1))
                .collect();
            assert_eq!(got, expected, "m={m} cube={cube:b} h={h}");
        }
    }

    #[test]
    fn recovers_cube_after_strash() {
        let (nl, _, _) = stripper(6, 0b110010, 1);
        let optimized = strash(&nl);
        let out = optimized.outputs()[0].1;
        let got = sliding_window(&optimized, out, 1).expect("cube recovered");
        let values: Vec<bool> = got.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, pattern_to_bits(0b110010, 6));
    }

    #[test]
    fn h_zero_degenerates_to_the_cube_itself() {
        let (nl, out, xs) = stripper(5, 0b10110, 0);
        let got = sliding_window(&nl, out, 0).expect("cube recovered");
        let expected: CubeAssignment = xs
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, (0b10110 >> i) & 1 == 1))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn rejects_functions_without_distance_2h_pairs() {
        // A constant-false node has no satisfying assignment at all.
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let na = nl.add_gate("na", GateKind::Not, &[a]);
        let f = nl.add_gate("f", GateKind::And, &[a, na]);
        nl.add_output("f", f);
        assert!(sliding_window(&nl, f, 1).is_none());
    }

    #[test]
    fn rejects_parity_like_functions() {
        // XOR of all inputs is satisfied at every odd-weight pattern; the
        // sliding-window queries cannot pin unique bit values, so ⊥ results.
        let mut nl = Netlist::new("parity");
        let xs: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("x{i}"))).collect();
        let f = nl.add_gate("f", GateKind::Xor, &xs);
        nl.add_output("f", f);
        assert!(sliding_window(&nl, f, 1).is_none());
    }

    #[test]
    fn batch_helper_reports_per_candidate() {
        let (nl, out, _) = stripper(5, 0b00111, 1);
        let results = sliding_window_all(&nl, &[out], 1);
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_some());
    }
}
