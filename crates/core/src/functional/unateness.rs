//! AnalyzeUnateness (Algorithm 1, Lemma 1): attack on TTLock / SFLL-HD0.
//!
//! The cube stripping function of TTLock is a single cube, which is unate in
//! every variable: positive unate in `x_i` iff the protected cube has
//! `k_i = 1`, negative unate iff `k_i = 0`.
//!
//! The session-based implementation encodes the candidate cone **once** per
//! input space (memoized across candidates by [`AttackSession`]) and checks
//! each cofactor pair with a pure assumption query: copy 1 plays
//! `f(x_i = 0)`, copy 2 plays `f(x_i = 1)`, all other support inputs are
//! forced pairwise equal through the session's shared difference vector.
//! A 64-way random-simulation pre-filter first rules out polarities (or the
//! whole candidate) whenever a concrete monotonicity violation exists, which
//! skips the corresponding SAT queries without changing any result.

use netlist::analysis::{input_positions, support};
use netlist::{Netlist, NodeId};
use sat::{Lit, SolveResult};

use super::prefilter::unateness_polarities;
use super::CubeAssignment;
use crate::session::AttackSession;

/// Runs the unateness analysis on a candidate node using a throwaway
/// session.  Prefer [`analyze_unateness_in`] when analysing several
/// candidates of the same netlist.
pub fn analyze_unateness(netlist: &Netlist, candidate: NodeId) -> Option<CubeAssignment> {
    let mut session = AttackSession::new(netlist);
    analyze_unateness_in(&mut session, candidate)
}

/// Runs the unateness analysis on a candidate node through a shared attack
/// session.
///
/// Returns the suspected protected cube (one value per support input, sorted
/// by node id) if the node is unate in every support variable, or `None` (⊥)
/// otherwise.
///
/// Variables the function does not actually depend on are reported as
/// positive unate (value 1), mirroring the order of checks in Algorithm 1.
pub fn analyze_unateness_in(
    session: &mut AttackSession<'_>,
    candidate: NodeId,
) -> Option<CubeAssignment> {
    let netlist = session.netlist();
    let sup = support(netlist, candidate);
    if !sup.keys.is_empty() || sup.primary.is_empty() {
        return None;
    }
    let inputs: Vec<NodeId> = sup.primary.iter().copied().collect();
    let positions = input_positions(netlist, &inputs);

    // Word-parallel pre-filter: polarities refuted by an explicit witness
    // need no SAT query; a candidate refuted in both polarities of any
    // variable is rejected outright.
    let polarities = {
        let (sim, stats) = session.wide_sim_parts();
        unateness_polarities(netlist, candidate, &inputs, sim, stats)
    };
    if polarities.iter().any(|&(p, n)| !p && !n) {
        return None;
    }

    let (root1, root2) = session.cone_pair(candidate);
    let mut assignment: CubeAssignment = Vec::with_capacity(inputs.len());
    for (slot, &xi) in inputs.iter().enumerate() {
        let (may_pos, may_neg) = polarities[slot];
        // Cofactor assumptions: x_i = 0 in copy 1, x_i = 1 in copy 2, every
        // other support input pairwise equal.
        let (x1, x2) = session.input_pair(positions[slot]);
        let mut base: Vec<Lit> = Vec::with_capacity(inputs.len() + 3);
        for (other, &position) in positions.iter().enumerate() {
            if other != slot {
                base.push(session.input_eq(position));
            }
        }
        base.push(!x1);
        base.push(x2);

        // Positive unate: f(x_i = 0) <= f(x_i = 1), i.e. f0 & !f1 unsatisfiable.
        let positive = may_pos && {
            let mut q = base.clone();
            q.push(root1);
            q.push(!root2);
            session.check_cone_property(&q) == SolveResult::Unsat
        };
        if positive {
            assignment.push((xi, true));
            continue;
        }
        let negative = may_neg && {
            let mut q = base;
            q.push(!root1);
            q.push(root2);
            session.check_cone_property(&q) == SolveResult::Unsat
        };
        if negative {
            assignment.push((xi, false));
        } else {
            return None;
        }
    }
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::{LockingScheme, TtLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::strash::strash;
    use netlist::GateKind;

    #[test]
    fn recovers_the_cube_of_an_explicit_and_gate() {
        // F = a & !b & !c & d  (the paper's protected cube 1001).
        let mut nl = Netlist::new("cube");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let nb = nl.add_gate("nb", GateKind::Not, &[b]);
        let nc = nl.add_gate("nc", GateKind::Not, &[c]);
        let f = nl.add_gate("f", GateKind::And, &[a, nb, nc, d]);
        nl.add_output("f", f);

        let cube = analyze_unateness(&nl, f).expect("cube found");
        assert_eq!(cube, vec![(a, true), (b, false), (c, false), (d, true)]);
    }

    #[test]
    fn rejects_non_unate_functions() {
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let f = nl.add_gate("f", GateKind::Xor, &[a, b]);
        nl.add_output("f", f);
        assert!(analyze_unateness(&nl, f).is_none());
    }

    #[test]
    fn or_gate_is_unate_all_positive() {
        let mut nl = Netlist::new("or");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let f = nl.add_gate("f", GateKind::Or, &[a, b]);
        nl.add_output("f", f);
        assert_eq!(analyze_unateness(&nl, f), Some(vec![(a, true), (b, true)]));
    }

    #[test]
    fn shared_session_analyses_agree_with_standalone_ones() {
        let mut nl = Netlist::new("multi");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let nb = nl.add_gate("nb", GateKind::Not, &[b]);
        let f = nl.add_gate("f", GateKind::And, &[a, nb, c]);
        let g = nl.add_gate("g", GateKind::Or, &[a, b]);
        let h = nl.add_gate("h", GateKind::Xor, &[a, c]);
        nl.add_output("f", f);
        nl.add_output("g", g);
        nl.add_output("h", h);

        let mut session = AttackSession::new(&nl);
        for candidate in [f, g, h] {
            assert_eq!(
                analyze_unateness_in(&mut session, candidate),
                analyze_unateness(&nl, candidate),
                "candidate {candidate:?}"
            );
        }
    }

    #[test]
    fn recovers_the_ttlock_protected_cube_after_strash() {
        let original = generate(&RandomCircuitSpec::new("unate_tt", 8, 2, 40));
        let locked = TtLock::new(6).with_seed(77).lock(&original).expect("lock");
        let optimized = strash(&locked.locked);

        // Use the structural stages to find the cube stripper candidates.
        let comparators = crate::structural::find_comparators(&optimized);
        let candidates = crate::structural::find_candidates(&optimized, &comparators);
        let mut session = AttackSession::new(&optimized);
        let mut recovered = None;
        for &cand in &candidates.candidates {
            if let Some(cube) = analyze_unateness_in(&mut session, cand) {
                recovered = Some(cube);
                break;
            }
        }
        let recovered = recovered.expect("some candidate is unate");
        // Map the recovered cube back to key bits through the comparator pairing.
        let mut key_bits = vec![false; 6];
        for (&input, &key) in candidates
            .protected_inputs
            .iter()
            .zip(&candidates.paired_keys)
        {
            let value = recovered
                .iter()
                .find(|(id, _)| *id == input)
                .map(|&(_, v)| v)
                .expect("assignment covers the input");
            let key_index = optimized
                .key_inputs()
                .iter()
                .position(|&k| k == key)
                .expect("key input");
            key_bits[key_index] = value;
        }
        assert_eq!(key_bits, locked.key.bits());
    }

    #[test]
    fn nodes_depending_on_key_inputs_are_rejected() {
        let mut nl = Netlist::new("keydep");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k0");
        let f = nl.add_gate("f", GateKind::And, &[a, k]);
        nl.add_output("f", f);
        assert!(analyze_unateness(&nl, f).is_none());
    }
}
