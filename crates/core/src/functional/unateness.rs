//! AnalyzeUnateness (Algorithm 1, Lemma 1): attack on TTLock / SFLL-HD0.
//!
//! The cube stripping function of TTLock is a single cube, which is unate in
//! every variable: positive unate in `x_i` iff the protected cube has
//! `k_i = 1`, negative unate iff `k_i = 0`.  Checking unateness per variable
//! needs two SAT queries over two cofactor copies of the candidate cone.

use netlist::analysis::support;
use netlist::cnf::{encode_cones, PinBinding};
use netlist::{Netlist, NodeId};
use sat::{Lit, SolveResult, Solver};

use super::CubeAssignment;

/// Runs the unateness analysis on a candidate node.
///
/// Returns the suspected protected cube (one value per support input, sorted
/// by node id) if the node is unate in every support variable, or `None` (⊥)
/// otherwise.
///
/// Variables the function does not actually depend on are reported as
/// positive unate (value 1), mirroring the order of checks in Algorithm 1.
pub fn analyze_unateness(netlist: &Netlist, candidate: NodeId) -> Option<CubeAssignment> {
    let sup = support(netlist, candidate);
    if !sup.keys.is_empty() || sup.primary.is_empty() {
        return None;
    }
    let inputs: Vec<NodeId> = sup.primary.iter().copied().collect();

    let mut solver = Solver::new();
    let mut assignment = Vec::with_capacity(inputs.len());
    for &xi in &inputs {
        let (f0, f1) = encode_cofactor_pair(netlist, &mut solver, candidate, xi);
        // Positive unate: f(x_i = 0) <= f(x_i = 1), i.e. f0 & !f1 unsatisfiable.
        let positive = solver.solve_with(&[f0, !f1]) == SolveResult::Unsat;
        if positive {
            assignment.push((xi, true));
            continue;
        }
        let negative = solver.solve_with(&[!f0, f1]) == SolveResult::Unsat;
        if negative {
            assignment.push((xi, false));
        } else {
            return None;
        }
    }
    Some(assignment)
}

/// Encodes two copies of the candidate cone that share every input except
/// `xi`, which is fixed to 0 in the first copy and to 1 in the second.
/// Returns the two root literals.
fn encode_cofactor_pair(
    netlist: &Netlist,
    solver: &mut Solver,
    candidate: NodeId,
    xi: NodeId,
) -> (Lit, Lit) {
    let shared: Vec<Lit> = (0..netlist.num_inputs())
        .map(|_| Lit::positive(solver.new_var()))
        .collect();
    let keys: Vec<Lit> = (0..netlist.num_key_inputs())
        .map(|_| Lit::positive(solver.new_var()))
        .collect();
    let position = netlist
        .inputs()
        .iter()
        .position(|&id| id == xi)
        .expect("xi is a primary input");

    let mut low_inputs = shared.clone();
    let low_pin = Lit::positive(solver.new_var());
    solver.add_clause([!low_pin]);
    low_inputs[position] = low_pin;

    let mut high_inputs = shared;
    let high_pin = Lit::positive(solver.new_var());
    solver.add_clause([high_pin]);
    high_inputs[position] = high_pin;

    let low = encode_cones(
        netlist,
        solver,
        &[candidate],
        &PinBinding {
            inputs: Some(low_inputs),
            keys: Some(keys.clone()),
        },
    );
    let high = encode_cones(
        netlist,
        solver,
        &[candidate],
        &PinBinding {
            inputs: Some(high_inputs),
            keys: Some(keys),
        },
    );
    (low.lit(candidate), high.lit(candidate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::{LockingScheme, TtLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::strash::strash;
    use netlist::GateKind;

    #[test]
    fn recovers_the_cube_of_an_explicit_and_gate() {
        // F = a & !b & !c & d  (the paper's protected cube 1001).
        let mut nl = Netlist::new("cube");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let nb = nl.add_gate("nb", GateKind::Not, &[b]);
        let nc = nl.add_gate("nc", GateKind::Not, &[c]);
        let f = nl.add_gate("f", GateKind::And, &[a, nb, nc, d]);
        nl.add_output("f", f);

        let cube = analyze_unateness(&nl, f).expect("cube found");
        assert_eq!(
            cube,
            vec![(a, true), (b, false), (c, false), (d, true)]
        );
    }

    #[test]
    fn rejects_non_unate_functions() {
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let f = nl.add_gate("f", GateKind::Xor, &[a, b]);
        nl.add_output("f", f);
        assert!(analyze_unateness(&nl, f).is_none());
    }

    #[test]
    fn or_gate_is_unate_all_positive() {
        let mut nl = Netlist::new("or");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let f = nl.add_gate("f", GateKind::Or, &[a, b]);
        nl.add_output("f", f);
        assert_eq!(
            analyze_unateness(&nl, f),
            Some(vec![(a, true), (b, true)])
        );
    }

    #[test]
    fn recovers_the_ttlock_protected_cube_after_strash() {
        let original = generate(&RandomCircuitSpec::new("unate_tt", 8, 2, 40));
        let locked = TtLock::new(6).with_seed(77).lock(&original).expect("lock");
        let optimized = strash(&locked.locked);

        // Use the structural stages to find the cube stripper candidates.
        let comparators = crate::structural::find_comparators(&optimized);
        let candidates = crate::structural::find_candidates(&optimized, &comparators);
        let mut recovered = None;
        for &cand in &candidates.candidates {
            if let Some(cube) = analyze_unateness(&optimized, cand) {
                recovered = Some(cube);
                break;
            }
        }
        let recovered = recovered.expect("some candidate is unate");
        // Map the recovered cube back to key bits through the comparator pairing.
        let mut key_bits = vec![false; 6];
        for (pos, (&input, &key)) in candidates
            .protected_inputs
            .iter()
            .zip(&candidates.paired_keys)
            .enumerate()
        {
            let value = recovered
                .iter()
                .find(|(id, _)| *id == input)
                .map(|&(_, v)| v)
                .expect("assignment covers the input");
            let key_index = optimized
                .key_inputs()
                .iter()
                .position(|&k| k == key)
                .expect("key input");
            key_bits[key_index] = value;
            let _ = pos;
        }
        assert_eq!(key_bits, locked.key.bits());
    }

    #[test]
    fn nodes_depending_on_key_inputs_are_rejected() {
        let mut nl = Netlist::new("keydep");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k0");
        let f = nl.add_gate("f", GateKind::And, &[a, k]);
        nl.add_output("f", f);
        assert!(analyze_unateness(&nl, f).is_none());
    }
}
