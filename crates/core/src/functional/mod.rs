//! Functional analyses (§ IV): extracting suspected protected cubes from
//! candidate cube-stripper nodes.
//!
//! Each analysis takes a candidate node `c` and returns the assignment of the
//! node's support inputs that (if `c` really is the cube stripper) equals the
//! protected cube — and therefore the correct key.  `None` plays the role of
//! the paper's ⊥.

mod constraints;
mod distance_2h;
mod pair;
mod prefilter;
mod sliding_window;
mod unateness;

pub use constraints::{
    and2_lit, equal_lit, popcount_equals_lit, popcount_lits, require_popcount_equals, xor2_lit,
};
pub use distance_2h::{distance_2h, distance_2h_all, distance_2h_in};
pub use prefilter::PrefilterStats;
pub use sliding_window::{sliding_window, sliding_window_all, sliding_window_in};
pub use unateness::{analyze_unateness, analyze_unateness_in};

use netlist::NodeId;

/// A suspected protected-cube assignment: one Boolean per support input of
/// the candidate node, sorted by node id.
pub type CubeAssignment = Vec<(NodeId, bool)>;

/// Which functional analysis produced a result (used in reports and the
/// Figure 5 harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Analysis {
    /// [`analyze_unateness`] (Algorithm 1) — TTLock / SFLL-HD0.
    Unateness,
    /// [`sliding_window`] (Algorithm 2) — SFLL-HDh with `2h < m`.
    SlidingWindow,
    /// [`distance_2h`] (Algorithm 3) — SFLL-HDh with `4h <= m`.
    Distance2H,
}

impl Analysis {
    /// Returns the analyses applicable for a given `h` and key width `m`, in
    /// the order the combined attack tries them.
    pub fn applicable(h: usize, m: usize) -> Vec<Analysis> {
        if h == 0 {
            vec![
                Analysis::Unateness,
                Analysis::SlidingWindow,
                Analysis::Distance2H,
            ]
        } else {
            let mut v = Vec::new();
            if 4 * h <= m {
                v.push(Analysis::Distance2H);
            }
            if 2 * h < m {
                v.push(Analysis::SlidingWindow);
            }
            v
        }
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Analysis::Unateness => "AnalyzeUnateness",
            Analysis::SlidingWindow => "SlidingWindow",
            Analysis::Distance2H => "Distance2H",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_follows_the_paper() {
        // h = 0: unateness applies (and the HD analyses degenerate gracefully).
        assert!(Analysis::applicable(0, 8).contains(&Analysis::Unateness));
        // 4h <= m: Distance2H applies.
        assert!(Analysis::applicable(2, 8).contains(&Analysis::Distance2H));
        // 4h > m but 2h < m: only SlidingWindow.
        let a = Analysis::applicable(3, 8);
        assert!(!a.contains(&Analysis::Distance2H));
        assert!(a.contains(&Analysis::SlidingWindow));
        // 2h >= m: nothing applies.
        assert!(Analysis::applicable(4, 8).is_empty());
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Analysis::Unateness.name(), "AnalyzeUnateness");
        assert_eq!(Analysis::SlidingWindow.name(), "SlidingWindow");
        assert_eq!(Analysis::Distance2H.name(), "Distance2H");
    }
}
