//! Shared machinery for the Hamming-distance analyses: a solver preloaded
//! with two copies of a candidate cone constrained to be simultaneously true
//! at a fixed Hamming distance.

use netlist::analysis::support;
use netlist::cnf::{encode_cones, PinBinding};
use netlist::{Netlist, NodeId};
use sat::{Lit, Solver};

use super::constraints::{require_popcount_equals, xor2_lit};

/// Two constrained copies of a candidate cone, ready for the SlidingWindow
/// and Distance2H queries.
pub(crate) struct HdPair {
    /// Solver containing the formula `F` of Algorithms 2 and 3.
    pub solver: Solver,
    /// The support inputs of the candidate, sorted by node id.
    pub inputs: Vec<NodeId>,
    /// Literals of the support inputs in the first copy.
    pub x1: Vec<Lit>,
    /// Literals of the support inputs in the second copy.
    pub x2: Vec<Lit>,
    /// `eq[i]` is true iff `x1[i] == x2[i]`.
    pub eq: Vec<Lit>,
}

/// Builds the formula `F = c(X1) ∧ c(X2) ∧ HD(X1, X2) = distance`.
///
/// Returns `None` if the candidate depends on key inputs, has an empty
/// support, or the requested distance exceeds the support size.
pub(crate) fn build_hd_pair(
    netlist: &Netlist,
    candidate: NodeId,
    distance: usize,
) -> Option<HdPair> {
    let sup = support(netlist, candidate);
    if !sup.keys.is_empty() || sup.primary.is_empty() {
        return None;
    }
    let inputs: Vec<NodeId> = sup.primary.iter().copied().collect();
    if distance > inputs.len() {
        return None;
    }

    let mut solver = Solver::new();
    let copy1 = encode_cones(netlist, &mut solver, &[candidate], &PinBinding::default());
    let copy2 = encode_cones(netlist, &mut solver, &[candidate], &PinBinding::default());
    solver.add_clause([copy1.lit(candidate)]);
    solver.add_clause([copy2.lit(candidate)]);

    // Positions of the support inputs within the primary-input vector.
    let positions: Vec<usize> = inputs
        .iter()
        .map(|&id| {
            netlist
                .inputs()
                .iter()
                .position(|&x| x == id)
                .expect("support input is a primary input")
        })
        .collect();
    let x1: Vec<Lit> = positions.iter().map(|&p| copy1.inputs[p]).collect();
    let x2: Vec<Lit> = positions.iter().map(|&p| copy2.inputs[p]).collect();

    let diffs: Vec<Lit> = x1
        .iter()
        .zip(&x2)
        .map(|(&a, &b)| xor2_lit(&mut solver, a, b))
        .collect();
    require_popcount_equals(&mut solver, &diffs, distance);
    let eq: Vec<Lit> = diffs.iter().map(|&d| !d).collect();

    Some(HdPair {
        solver,
        inputs,
        x1,
        x2,
        eq,
    })
}
