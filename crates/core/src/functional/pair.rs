//! Shared machinery for the Hamming-distance analyses: an assumption-query
//! view of "two copies of a candidate cone, simultaneously true, at a fixed
//! Hamming distance".
//!
//! The legacy implementation built a dedicated solver per candidate with the
//! constraint set added as clauses.  The session version reuses the shared
//! cone encodings and the **single** session-wide popcount network: the
//! formula `F = c(X1) ∧ c(X2) ∧ HD(X1, X2) = d` is expressed purely as
//! assumptions (`root1`, `root2`, the memoized `HD == d` literal, and
//! pairwise-equality literals for every input outside the candidate's
//! support), so building a query for a new candidate adds no clauses once
//! the shared structure exists.

use netlist::analysis::{input_positions, support};
use netlist::NodeId;
use sat::Lit;

use crate::session::AttackSession;

/// An assumption-query for `c(X1) ∧ c(X2) ∧ HD(X1, X2) = distance`.
pub(crate) struct HdPairQuery {
    /// The support inputs of the candidate, sorted by node id.
    pub inputs: Vec<NodeId>,
    /// Base assumptions encoding the formula `F` of Algorithms 2 and 3.
    pub base: Vec<Lit>,
    /// Literals of the support inputs in the first copy.
    pub x1: Vec<Lit>,
    /// Literals of the support inputs in the second copy.
    pub x2: Vec<Lit>,
    /// `eq[i]` is true iff `x1[i] == x2[i]`.
    pub eq: Vec<Lit>,
}

/// Builds the assumption query for a candidate at a given distance.
///
/// Returns `None` if the candidate depends on key inputs, has an empty
/// support, or the requested distance exceeds the support size.
pub(crate) fn build_hd_query(
    session: &mut AttackSession<'_>,
    candidate: NodeId,
    distance: usize,
) -> Option<HdPairQuery> {
    let netlist = session.netlist();
    let sup = support(netlist, candidate);
    if !sup.keys.is_empty() || sup.primary.is_empty() {
        return None;
    }
    let inputs: Vec<NodeId> = sup.primary.iter().copied().collect();
    if distance > inputs.len() {
        return None;
    }
    let positions = input_positions(netlist, &inputs);

    let (root1, root2) = session.cone_pair(candidate);
    let hd = session.hd_equals(distance);

    let mut base: Vec<Lit> = vec![root1, root2, hd];
    // Restrict the session-wide distance to the support: every position
    // outside it is forced pairwise equal and contributes zero.
    let mut in_support = vec![false; session.netlist().num_inputs()];
    for &position in &positions {
        in_support[position] = true;
    }
    for (position, &covered) in in_support.iter().enumerate() {
        if !covered {
            base.push(session.input_eq(position));
        }
    }

    let mut x1 = Vec::with_capacity(positions.len());
    let mut x2 = Vec::with_capacity(positions.len());
    let mut eq = Vec::with_capacity(positions.len());
    for &position in &positions {
        let (a, b) = session.input_pair(position);
        x1.push(a);
        x2.push(b);
        eq.push(session.input_eq(position));
    }

    Some(HdPairQuery {
        inputs,
        base,
        x1,
        x2,
        eq,
    })
}
