//! Word-parallel simulation pre-filters for the functional analyses.
//!
//! Before issuing SAT queries, candidates are screened with the wide
//! multi-word simulator ([`netlist::WideSim`]): a few hundred random
//! patterns often produce a concrete *witness* that rules a candidate (or
//! one polarity of a variable) out.  All rejections are backed by explicit
//! counterexamples, never by absence of evidence, so a **true cube
//! stripper is never rejected** and recovered cubes are unchanged.  Spurious
//! candidates (non-strippers that the unfiltered Hamming-distance analyses
//! might still have turned into junk cubes for the equivalence check to
//! discard) can additionally be filtered out here — a strict improvement,
//! but not bit-for-bit identical shortlists when the equivalence check is
//! disabled.
//!
//! Both filters operate on whole wide blocks of the caller's reusable
//! [`WideSim`] scratch (the session owns one, see
//! [`crate::session::AttackSession::wide_sim_parts`]): one netlist sweep
//! evaluates `width * 64` patterns, lane words are scanned with bitwise
//! masks and `count_ones`, and the per-block scan exits early once a
//! refutation witness is found.  Every decision is tallied in
//! [`PrefilterStats`], which the attack surfaces on its result.

use netlist::analysis::input_positions;
use netlist::{Netlist, NodeId, WideSim};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fixed seed: the filters are part of deterministic analyses.
const SEED: u64 = 0xFA11_F17E;

/// `SolverStats`-style counters for the word-parallel prefilter path,
/// accumulated per session and surfaced on
/// [`crate::attack::FallAttackResult`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Unateness polarities refuted by an explicit monotonicity-violation
    /// witness (each skips one SAT query).
    pub polarities_refuted: u64,
    /// Candidates rejected outright before any SAT query: unateness found a
    /// variable refuted in both polarities, or the distance filter found two
    /// satisfying assignments too far apart.
    pub candidates_refuted: u64,
    /// Patterns pushed through the wide simulator by the filters
    /// (`width * 64` per sweep).
    pub patterns_simulated: u64,
    /// Wide netlist sweeps performed.
    pub sweeps: u64,
}

impl PrefilterStats {
    /// Accumulates `other` into `self` (used when merging per-worker
    /// sessions of the parallel analysis stage).
    pub fn merge(&mut self, other: &PrefilterStats) {
        self.polarities_refuted += other.polarities_refuted;
        self.candidates_refuted += other.candidates_refuted;
        self.patterns_simulated += other.patterns_simulated;
        self.sweeps += other.sweeps;
    }

    /// Total prefilter refutations (polarity- plus candidate-level), the
    /// headline counter tracked by bench-smoke.
    pub fn total_refuted(&self) -> u64 {
        self.polarities_refuted + self.candidates_refuted
    }
}

/// For every support input of `candidate`, tests both unateness polarities on
/// random patterns and reports which are still possible:
/// `(may_be_positive, may_be_negative)`.
///
/// `false` entries are backed by an explicit monotonicity-violation witness,
/// so the corresponding SAT query is guaranteed to come back satisfiable and
/// can be skipped.  `(false, false)` for any variable proves the candidate is
/// not unate at all.
///
/// Each support variable costs two wide sweeps (both cofactors over
/// `sim.width() * 64` shared random patterns); the lane scan exits early
/// once both polarities are refuted.
pub(crate) fn unateness_polarities(
    netlist: &Netlist,
    candidate: NodeId,
    support: &[NodeId],
    sim: &mut WideSim,
    stats: &mut PrefilterStats,
) -> Vec<(bool, bool)> {
    let _span = crate::trace::span("prefilter_sweep");
    let positions = input_positions(netlist, support);
    let w = sim.width();
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let mut result = vec![(true, true); support.len()];

    let base: Vec<u64> = (0..netlist.num_inputs() * w).map(|_| rng.gen()).collect();
    let keys: Vec<u64> = (0..netlist.num_key_inputs() * w)
        .map(|_| rng.gen())
        .collect();
    let mut probe = base.clone();
    let mut f0 = vec![0u64; w];
    for (slot, &position) in positions.iter().enumerate() {
        // Cofactor x_i = 0 across every lane, then x_i = 1; all other pins
        // keep the shared random block.
        probe[position * w..][..w].fill(0);
        sim.run(netlist, &probe, &keys)
            .expect("widths are consistent");
        f0.copy_from_slice(sim.node(candidate));
        probe[position * w..][..w].fill(!0u64);
        sim.run(netlist, &probe, &keys)
            .expect("widths are consistent");
        let f1 = sim.node(candidate);
        probe[position * w..][..w].copy_from_slice(&base[position * w..][..w]);
        stats.sweeps += 2;
        stats.patterns_simulated += 2 * (w as u64) * 64;

        // A pattern with f(x_i=0) > f(x_i=1) refutes positive unateness;
        // the mirror image refutes negative unateness.
        let (mut may_pos, mut may_neg) = (true, true);
        for (lane, &lo) in f0.iter().enumerate() {
            let hi = f1[lane];
            may_pos &= lo & !hi == 0;
            may_neg &= !lo & hi == 0;
            if !may_pos && !may_neg {
                break;
            }
        }
        if !may_pos {
            stats.polarities_refuted += 1;
            result[slot].0 = false;
        }
        if !may_neg {
            stats.polarities_refuted += 1;
            result[slot].1 = false;
        }
    }
    if result.iter().any(|&(p, n)| !p && !n) {
        stats.candidates_refuted += 1;
    }
    result
}

/// Tests whether random satisfying assignments of `candidate` stay within
/// Hamming distance `max_distance` of each other over the support positions.
///
/// A cube-stripping function `HD(X, cube) == h` is satisfied only on the
/// radius-`h` sphere around the cube, so any two satisfying assignments are
/// within distance `2h`.  Finding two satisfying patterns further apart is a
/// sound proof that the candidate is not the stripper for the assumed `h`.
///
/// One wide sweep evaluates the whole probe block; satisfying lanes are
/// harvested with trailing-zeros scans, pairwise distances are plain
/// `count_ones` on packed support bits, and the first witness pair exits.
///
/// Returns `false` only when such a witness pair was found.  Supports wider
/// than 64 bits skip the filter (returns `true`).
pub(crate) fn satisfying_within_distance(
    netlist: &Netlist,
    candidate: NodeId,
    support: &[NodeId],
    max_distance: usize,
    sim: &mut WideSim,
    stats: &mut PrefilterStats,
) -> bool {
    if support.len() > 64 || max_distance >= support.len() {
        return true;
    }
    let _span = crate::trace::span("prefilter_sweep");
    let positions = input_positions(netlist, support);
    let w = sim.width();
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x5EA9_C0DE);
    let inputs: Vec<u64> = (0..netlist.num_inputs() * w).map(|_| rng.gen()).collect();
    let keys: Vec<u64> = (0..netlist.num_key_inputs() * w)
        .map(|_| rng.gen())
        .collect();
    sim.run(netlist, &inputs, &keys)
        .expect("widths are consistent");
    stats.sweeps += 1;
    stats.patterns_simulated += (w as u64) * 64;

    let mut witnesses: Vec<u64> = Vec::new();
    for lane in 0..w {
        let mut satisfied = sim.node(candidate)[lane];
        while satisfied != 0 {
            let bit = satisfied.trailing_zeros();
            satisfied &= satisfied - 1;
            let mut pattern = 0u64;
            for (slot, &position) in positions.iter().enumerate() {
                pattern |= ((inputs[position * w + lane] >> bit) & 1) << slot;
            }
            for &earlier in &witnesses {
                if (earlier ^ pattern).count_ones() as usize > max_distance {
                    stats.candidates_refuted += 1;
                    return false;
                }
            }
            if witnesses.len() < 256 && !witnesses.contains(&pattern) {
                witnesses.push(pattern);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::hamming::hamming_distance_equals_const;
    use netlist::sim::pattern_to_bits;
    use netlist::{GateKind, DEFAULT_WIDE_WORDS};

    fn filter_parts(nl: &Netlist) -> (WideSim, PrefilterStats) {
        (
            WideSim::new(nl, DEFAULT_WIDE_WORDS),
            PrefilterStats::default(),
        )
    }

    #[test]
    fn xor_is_rejected_in_both_polarities() {
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let f = nl.add_gate("f", GateKind::Xor, &[a, b]);
        nl.add_output("f", f);
        let (mut sim, mut stats) = filter_parts(&nl);
        let polarities = unateness_polarities(&nl, f, &[a, b], &mut sim, &mut stats);
        assert_eq!(polarities, vec![(false, false); 2]);
        assert_eq!(stats.polarities_refuted, 4);
        assert_eq!(stats.candidates_refuted, 1);
        assert_eq!(stats.sweeps, 4);
        assert_eq!(
            stats.patterns_simulated,
            stats.sweeps * DEFAULT_WIDE_WORDS as u64 * 64
        );
    }

    #[test]
    fn and_keeps_only_the_positive_polarity() {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let f = nl.add_gate("f", GateKind::And, &[a, b]);
        nl.add_output("f", f);
        let (mut sim, mut stats) = filter_parts(&nl);
        let polarities = unateness_polarities(&nl, f, &[a, b], &mut sim, &mut stats);
        for (may_pos, may_neg) in polarities {
            assert!(may_pos, "AND is positive unate in every input");
            assert!(!may_neg, "random patterns must witness the violation");
        }
        assert_eq!(stats.polarities_refuted, 2);
        assert_eq!(stats.candidates_refuted, 0, "AND is still unate");
    }

    #[test]
    fn stripper_satisfying_assignments_stay_on_the_sphere() {
        let mut nl = Netlist::new("strip");
        let xs: Vec<NodeId> = (0..6).map(|i| nl.add_input(format!("x{i}"))).collect();
        let cube = pattern_to_bits(0b101100, 6);
        let out = hamming_distance_equals_const(&mut nl, &xs, &cube, 1);
        nl.add_output("strip", out);
        let (mut sim, mut stats) = filter_parts(&nl);
        assert!(satisfying_within_distance(
            &nl, out, &xs, 2, &mut sim, &mut stats
        ));
        assert_eq!(stats.candidates_refuted, 0);
        assert_eq!(stats.sweeps, 1);
    }

    #[test]
    fn wide_satisfiable_functions_are_rejected_for_small_h() {
        // OR of six inputs is satisfied almost everywhere; random patterns
        // easily find two satisfying assignments far apart.
        let mut nl = Netlist::new("or");
        let xs: Vec<NodeId> = (0..6).map(|i| nl.add_input(format!("x{i}"))).collect();
        let f = nl.add_gate("f", GateKind::Or, &xs);
        nl.add_output("f", f);
        let (mut sim, mut stats) = filter_parts(&nl);
        assert!(!satisfying_within_distance(
            &nl, f, &xs, 2, &mut sim, &mut stats
        ));
        assert_eq!(stats.candidates_refuted, 1);
    }

    #[test]
    fn filters_agree_across_widths() {
        // The refutation *verdicts* are width-independent for decisive
        // functions (witnesses abound), even though the sampled patterns
        // differ per width.
        let mut nl = Netlist::new("zoo");
        let xs: Vec<NodeId> = (0..5).map(|i| nl.add_input(format!("x{i}"))).collect();
        let orf = nl.add_gate("orf", GateKind::Or, &xs);
        let xorf = nl.add_gate("xorf", GateKind::Xor, &xs);
        nl.add_output("orf", orf);
        nl.add_output("xorf", xorf);
        for width in [1usize, 2, 4, 8] {
            let mut sim = WideSim::new(&nl, width);
            let mut stats = PrefilterStats::default();
            assert!(
                !satisfying_within_distance(&nl, orf, &xs, 2, &mut sim, &mut stats),
                "width {width}"
            );
            let p = unateness_polarities(&nl, xorf, &xs, &mut sim, &mut stats);
            assert_eq!(p, vec![(false, false); 5], "width {width}");
        }
    }
}
