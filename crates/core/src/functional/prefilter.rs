//! Word-parallel simulation pre-filters for the functional analyses.
//!
//! Before issuing SAT queries, candidates are screened with the 64-way
//! word-parallel simulator ([`netlist::Netlist::node_words`]): a few hundred
//! random patterns often produce a concrete *witness* that rules a candidate
//! (or one polarity of a variable) out.  All rejections are backed by
//! explicit counterexamples, never by absence of evidence, so a **true cube
//! stripper is never rejected** and recovered cubes are unchanged.  Spurious
//! candidates (non-strippers that the unfiltered Hamming-distance analyses
//! might still have turned into junk cubes for the equivalence check to
//! discard) can additionally be filtered out here — a strict improvement,
//! but not bit-for-bit identical shortlists when the equivalence check is
//! disabled.

use netlist::analysis::input_positions;
use netlist::{Netlist, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of 64-pattern words simulated per filter (256 patterns).
const WORDS: usize = 4;

/// Fixed seed: the filters are part of deterministic analyses.
const SEED: u64 = 0xFA11_F17E;

/// For every support input of `candidate`, tests both unateness polarities on
/// random patterns and reports which are still possible:
/// `(may_be_positive, may_be_negative)`.
///
/// `false` entries are backed by an explicit monotonicity-violation witness,
/// so the corresponding SAT query is guaranteed to come back satisfiable and
/// can be skipped.  `(false, false)` for any variable proves the candidate is
/// not unate at all.
pub(crate) fn unateness_polarities(
    netlist: &Netlist,
    candidate: NodeId,
    support: &[NodeId],
) -> Vec<(bool, bool)> {
    let positions = input_positions(netlist, support);
    let num_inputs = netlist.num_inputs();
    let num_keys = netlist.num_key_inputs();
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let mut result = vec![(true, true); support.len()];

    for _ in 0..WORDS {
        let base: Vec<u64> = (0..num_inputs).map(|_| rng.gen()).collect();
        let keys: Vec<u64> = (0..num_keys).map(|_| rng.gen()).collect();
        for (slot, &position) in positions.iter().enumerate() {
            let (may_pos, may_neg) = result[slot];
            if !may_pos && !may_neg {
                continue;
            }
            let mut low = base.clone();
            low[position] = 0;
            let mut high = base.clone();
            high[position] = !0u64;
            let f0 = netlist
                .node_words(&low, &keys)
                .expect("widths are consistent")[candidate.index()];
            let f1 = netlist
                .node_words(&high, &keys)
                .expect("widths are consistent")[candidate.index()];
            // A pattern with f(x_i=0) > f(x_i=1) refutes positive unateness;
            // the mirror image refutes negative unateness.
            if f0 & !f1 != 0 {
                result[slot].0 = false;
            }
            if !f0 & f1 != 0 {
                result[slot].1 = false;
            }
        }
    }
    result
}

/// Tests whether random satisfying assignments of `candidate` stay within
/// Hamming distance `max_distance` of each other over the support positions.
///
/// A cube-stripping function `HD(X, cube) == h` is satisfied only on the
/// radius-`h` sphere around the cube, so any two satisfying assignments are
/// within distance `2h`.  Finding two satisfying patterns further apart is a
/// sound proof that the candidate is not the stripper for the assumed `h`.
///
/// Returns `false` only when such a witness pair was found.  Supports wider
/// than 64 bits skip the filter (returns `true`).
pub(crate) fn satisfying_within_distance(
    netlist: &Netlist,
    candidate: NodeId,
    support: &[NodeId],
    max_distance: usize,
) -> bool {
    if support.len() > 64 || max_distance >= support.len() {
        return true;
    }
    let positions = input_positions(netlist, support);
    let num_inputs = netlist.num_inputs();
    let num_keys = netlist.num_key_inputs();
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x5EA9_C0DE);
    let mut witnesses: Vec<u64> = Vec::new();

    for _ in 0..WORDS {
        let inputs: Vec<u64> = (0..num_inputs).map(|_| rng.gen()).collect();
        let keys: Vec<u64> = (0..num_keys).map(|_| rng.gen()).collect();
        let values = netlist
            .node_words(&inputs, &keys)
            .expect("widths are consistent");
        let mut satisfied = values[candidate.index()];
        while satisfied != 0 {
            let bit = satisfied.trailing_zeros();
            satisfied &= satisfied - 1;
            let mut pattern = 0u64;
            for (slot, &position) in positions.iter().enumerate() {
                pattern |= ((inputs[position] >> bit) & 1) << slot;
            }
            for &earlier in &witnesses {
                if (earlier ^ pattern).count_ones() as usize > max_distance {
                    return false;
                }
            }
            if witnesses.len() < 256 && !witnesses.contains(&pattern) {
                witnesses.push(pattern);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::hamming::hamming_distance_equals_const;
    use netlist::sim::pattern_to_bits;
    use netlist::GateKind;

    #[test]
    fn xor_is_rejected_in_both_polarities() {
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let f = nl.add_gate("f", GateKind::Xor, &[a, b]);
        nl.add_output("f", f);
        let polarities = unateness_polarities(&nl, f, &[a, b]);
        assert_eq!(polarities, vec![(false, false); 2]);
    }

    #[test]
    fn and_keeps_only_the_positive_polarity() {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let f = nl.add_gate("f", GateKind::And, &[a, b]);
        nl.add_output("f", f);
        let polarities = unateness_polarities(&nl, f, &[a, b]);
        for (may_pos, may_neg) in polarities {
            assert!(may_pos, "AND is positive unate in every input");
            assert!(!may_neg, "random patterns must witness the violation");
        }
    }

    #[test]
    fn stripper_satisfying_assignments_stay_on_the_sphere() {
        let mut nl = Netlist::new("strip");
        let xs: Vec<NodeId> = (0..6).map(|i| nl.add_input(format!("x{i}"))).collect();
        let cube = pattern_to_bits(0b101100, 6);
        let out = hamming_distance_equals_const(&mut nl, &xs, &cube, 1);
        nl.add_output("strip", out);
        assert!(satisfying_within_distance(&nl, out, &xs, 2));
    }

    #[test]
    fn wide_satisfiable_functions_are_rejected_for_small_h() {
        // OR of six inputs is satisfied almost everywhere; random patterns
        // easily find two satisfying assignments far apart.
        let mut nl = Netlist::new("or");
        let xs: Vec<NodeId> = (0..6).map(|i| nl.add_input(format!("x{i}"))).collect();
        let f = nl.add_gate("f", GateKind::Or, &xs);
        nl.add_output("f", f);
        assert!(!satisfying_within_distance(&nl, f, &xs, 2));
    }
}
