//! CNF-level cardinality helpers used by the Hamming-distance analyses.

use sat::{Lit, Solver};

/// Returns a fresh literal equivalent to `a XOR b`.
pub fn xor2_lit(solver: &mut Solver, a: Lit, b: Lit) -> Lit {
    let y = Lit::positive(solver.new_var());
    solver.add_clause([!a, !b, !y]);
    solver.add_clause([a, b, !y]);
    solver.add_clause([a, !b, y]);
    solver.add_clause([!a, b, y]);
    y
}

/// Returns a fresh literal equivalent to `a AND b`.
pub fn and2_lit(solver: &mut Solver, a: Lit, b: Lit) -> Lit {
    let y = Lit::positive(solver.new_var());
    solver.add_clause([!y, a]);
    solver.add_clause([!y, b]);
    solver.add_clause([!a, !b, y]);
    y
}

/// Returns a fresh literal equivalent to `a == b` (XNOR).
pub fn equal_lit(solver: &mut Solver, a: Lit, b: Lit) -> Lit {
    !xor2_lit(solver, a, b)
}

/// Returns a literal that is constantly false.
pub fn const_false_lit(solver: &mut Solver) -> Lit {
    let lit = Lit::positive(solver.new_var());
    solver.add_clause([!lit]);
    lit
}

/// Builds a binary counter over `bits` and returns the sum literals,
/// least-significant first.
pub fn popcount_lits(solver: &mut Solver, bits: &[Lit]) -> Vec<Lit> {
    let width = (usize::BITS as usize - bits.len().leading_zeros() as usize).max(1);
    let zero = const_false_lit(solver);
    let mut sum = vec![zero; width];
    for &bit in bits {
        let mut carry = bit;
        for s in sum.iter_mut() {
            let new_s = xor2_lit(solver, *s, carry);
            let new_c = and2_lit(solver, *s, carry);
            *s = new_s;
            carry = new_c;
        }
    }
    sum
}

/// Adds clauses forcing the popcount of `bits` to equal `value`.
///
/// # Panics
///
/// Panics if `value > bits.len()` (the constraint would be trivially
/// unsatisfiable, which almost always indicates a caller bug).
pub fn require_popcount_equals(solver: &mut Solver, bits: &[Lit], value: usize) {
    assert!(
        value <= bits.len(),
        "cannot have {value} ones among {} bits",
        bits.len()
    );
    let sum = popcount_lits(solver, bits);
    for (i, &s) in sum.iter().enumerate() {
        let bit = (value >> i) & 1 == 1;
        solver.add_clause([if bit { s } else { !s }]);
    }
}

/// Returns a literal that is true iff the popcount of `bits` equals `value`.
pub fn popcount_equals_lit(solver: &mut Solver, bits: &[Lit], value: usize) -> Lit {
    if value > bits.len() {
        return const_false_lit(solver);
    }
    let sum = popcount_lits(solver, bits);
    // AND over per-bit agreement with the constant.
    let mut acc: Option<Lit> = None;
    for (i, &s) in sum.iter().enumerate() {
        let bit = (value >> i) & 1 == 1;
        let term = if bit { s } else { !s };
        acc = Some(match acc {
            None => term,
            Some(prev) => and2_lit(solver, prev, term),
        });
    }
    acc.unwrap_or_else(|| !const_false_lit(solver))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::SolveResult;

    fn fresh_bits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::positive(solver.new_var())).collect()
    }

    fn force(solver: &mut Solver, lits: &[Lit], pattern: u64) {
        for (i, &lit) in lits.iter().enumerate() {
            let bit = (pattern >> i) & 1 == 1;
            solver.add_clause([if bit { lit } else { !lit }]);
        }
    }

    #[test]
    fn popcount_counts_correctly() {
        for pattern in 0..32u64 {
            let mut solver = Solver::new();
            let bits = fresh_bits(&mut solver, 5);
            let sum = popcount_lits(&mut solver, &bits);
            force(&mut solver, &bits, pattern);
            assert_eq!(solver.solve(), SolveResult::Sat);
            let got: u32 = sum
                .iter()
                .enumerate()
                .map(|(i, &s)| (solver.value(s).unwrap() as u32) << i)
                .sum();
            assert_eq!(got, pattern.count_ones());
        }
    }

    #[test]
    fn require_popcount_filters_models() {
        let mut solver = Solver::new();
        let bits = fresh_bits(&mut solver, 6);
        require_popcount_equals(&mut solver, &bits, 2);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let ones = bits.iter().filter(|&&b| solver.value(b).unwrap()).count();
        assert_eq!(ones, 2);
        // Forcing three bits true makes it unsatisfiable.
        solver.add_clause([bits[0]]);
        solver.add_clause([bits[1]]);
        solver.add_clause([bits[2]]);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn popcount_equals_lit_is_reified() {
        for target in 0..=4usize {
            for pattern in 0..16u64 {
                let mut solver = Solver::new();
                let bits = fresh_bits(&mut solver, 4);
                let eq = popcount_equals_lit(&mut solver, &bits, target);
                force(&mut solver, &bits, pattern);
                assert_eq!(solver.solve(), SolveResult::Sat);
                assert_eq!(
                    solver.value(eq),
                    Some(pattern.count_ones() as usize == target),
                    "target {target} pattern {pattern:04b}"
                );
            }
        }
    }

    #[test]
    fn impossible_count_is_const_false() {
        let mut solver = Solver::new();
        let bits = fresh_bits(&mut solver, 3);
        let eq = popcount_equals_lit(&mut solver, &bits, 7);
        solver.add_clause([eq]);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    #[should_panic(expected = "cannot have")]
    fn require_impossible_count_panics() {
        let mut solver = Solver::new();
        let bits = fresh_bits(&mut solver, 3);
        require_popcount_equals(&mut solver, &bits, 4);
    }
}
