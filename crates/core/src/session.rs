//! The incremental attack session: one persistent solver plus cached circuit
//! encodings shared by every attack stage.
//!
//! Every attack in this crate used to allocate a fresh [`sat::Solver`] and
//! re-encode the locked netlist for each query.  Modern CDCL solvers win
//! precisely by keeping learnt clauses, variable activities and saved phases
//! alive across related queries, so [`AttackSession`] centralises all SAT
//! interaction behind one persistent solver per attack run:
//!
//! * **DIP machinery** — the two shared-input circuit copies of the SAT
//!   attack are encoded **once**; the "outputs differ" constraint lives in an
//!   activation frame so it can be switched off (for key extraction and the
//!   key-confirmation candidate query) or retired without losing learnt
//!   clauses.  Each observed I/O pair is added through
//!   [`netlist::cnf::encode_with_fixed_inputs`], which constant-folds all
//!   key-independent logic, so the distinguishing-input loop performs **zero
//!   solver allocations** and encodes only the key cone per iteration.
//! * **Cone machinery** — the functional analyses (unateness, sliding
//!   window, distance-2h) and the equivalence check all operate on candidate
//!   cones over two input spaces `X1`/`X2`.  The session memoizes cone
//!   encodings across queries (overlapping cones are encoded once, via
//!   [`netlist::cnf::IncrementalEncoder`]), plus one global per-position
//!   difference vector and **one** shared popcount network whose
//!   "count = k" literals serve every Hamming-distance query.  All analysis
//!   queries are pure assumption queries: after the shared structure exists,
//!   a cofactor or HD-pair check adds no clauses at all.
//! * **Predicate generations** — a key-confirmation predicate ϕ and the I/O
//!   constraints observed while it is live are scoped to a retireable
//!   *generation* ([`AttackSession::begin_predicate`] /
//!   [`AttackSession::retire_predicate`]).  Retiring a generation detaches ϕ
//!   and its I/O pairs while the circuit encodings, the `Kϕ` literal pool and
//!   every frame-independent learnt clause stay: one long-lived session can
//!   confirm an unbounded sequence of predicates — this is what lets the
//!   parallel engine keep **one session per worker** instead of one per
//!   key-space region.  A contradictory generation (an I/O pair no key can
//!   reproduce) poisons only its own frames, so a worker that draws an
//!   impossible region survives to take the next one.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use locking::Key;
use netlist::cnf::{encode_any_difference, encode_key_cone, KeyCone, Signal};
use netlist::cnf::{IncrementalEncoder, PinBinding};
use netlist::{Netlist, NodeId, WideSim, DEFAULT_WIDE_WORDS};
use sat::{FrameId, Lit, SolveResult, Solver, SolverConfig, SolverStats};

use crate::encode::{
    assumptions_for, instantiate, instantiate_sharing_inputs, model_key, model_values, CircuitCopy,
};
use crate::functional::{and2_lit, popcount_lits, xor2_lit, PrefilterStats};

/// The flight-recorder phase name of a solver maintenance checkpoint.
fn checkpoint_phase(checkpoint: sat::Checkpoint) -> &'static str {
    match checkpoint {
        sat::Checkpoint::Gc => "sat_gc",
        sat::Checkpoint::ReduceDb => "sat_reduce_db",
        sat::Checkpoint::Simplify => "sat_simplify",
        sat::Checkpoint::Eliminate => "sat_eliminate",
        sat::Checkpoint::Restart => "sat_restart",
    }
}

/// Which of the session's key-literal vectors an I/O constraint applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyVector {
    /// The first key copy `K1` of the two-copy DIP formula.
    A,
    /// The second key copy `K2` of the two-copy DIP formula.
    B,
    /// The standalone predicate key vector used by key confirmation
    /// (created by [`AttackSession::begin_predicate`]).
    Predicate,
}

/// The two shared-input circuit copies plus the scoped difference constraint.
struct DipParts {
    inputs: Vec<Lit>,
    key_a: Vec<Lit>,
    key_b: Vec<Lit>,
    /// Literal asserting "the two output vectors differ".
    diff_lit: Lit,
    /// Frame scoping the difference constraint; re-armed after retirement so
    /// a session stays usable for further DIP queries.
    diff_frame: FrameId,
    /// Frame scoping the I/O constraints on `K1`.  The SAT attack's queries
    /// activate it; the key-confirmation `Q` query must not — there `K1` is
    /// pinned to an unvetted candidate, and a leftover I/O clause would turn
    /// "candidate contradicts old observations" into a spurious Unsat, i.e.
    /// a wrong key reported as confirmed.
    io_a_frame: FrameId,
}

/// One predicate generation: the retireable scope of a confirmation run.
///
/// Everything a key-confirmation run adds — ϕ itself and the I/O-pair
/// constraints observed while the generation is live — lands in one of these
/// two frames, so [`AttackSession::retire_predicate`] detaches the whole run
/// in O(1) and [`sat::Solver::simplify`] reclaims the clauses, while the
/// permanent machinery (circuit copies, `Kϕ` pool, cone encodings, popcount,
/// miters) and every frame-independent learnt clause survive into the next
/// generation.
struct PredicateGeneration {
    /// Scope of ϕ plus the `K2`/`Kϕ` I/O constraints of this generation.
    phi_frame: FrameId,
    /// Scope of the `K1` I/O constraints of this generation (kept separate
    /// from `phi_frame` for the same reason [`DipParts::io_a_frame`] exists:
    /// the `Q` query must leave `K1`'s I/O history dormant).
    io_a_frame: FrameId,
}

/// Dual cone-analysis input spaces with shared difference/popcount networks.
struct ConeParts {
    enc1: IncrementalEncoder,
    enc2: IncrementalEncoder,
    /// `diff[i] = X1_i XOR X2_i`, built lazily per input position.
    diff: Vec<Option<Lit>>,
    /// Binary-counter sum over *all* input differences, built on first use.
    popcount: Option<Vec<Lit>>,
    /// Memoized `popcount == k` literals.
    hd_equals: BTreeMap<usize, Lit>,
    /// Memoized XOR miters keyed by normalised literal pair.
    miters: BTreeMap<(Lit, Lit), Lit>,
    /// A literal fixed to false, for degenerate constant queries.
    const_false: Option<Lit>,
}

/// One persistent solver and its cached encodings for a whole attack run.
///
/// See the [module documentation](self) for the design; see
/// [`crate::sat_attack::sat_attack`], [`mod@crate::key_confirmation`],
/// [`crate::equivalence`] and [`crate::functional`] for the attacks that run
/// through it.
pub struct AttackSession<'n> {
    netlist: &'n Netlist,
    solver: Solver,
    dip: Option<DipParts>,
    cones: Option<ConeParts>,
    /// Key-dependent node set, computed once on the first I/O constraint and
    /// reused by every later [`AttackSession::constrain_key_with_io`] /
    /// [`AttackSession::force_dip`] call.
    key_cone: Option<KeyCone>,
    /// The active predicate generation, if any.
    generation: Option<PredicateGeneration>,
    /// The `Kϕ` literal pool, allocated by the first generation and reused by
    /// every later one (all constraints on it are generation-scoped, so the
    /// variables are clean again after each retirement).
    phi_key_pool: Option<Vec<Lit>>,
    /// Number of full circuit encodings this session has built (the two-copy
    /// DIP formula and the dual cone input spaces count one each).
    full_encodings: u64,
    clauses_at_last_simplify: usize,
    /// Reusable wide-simulation scratch for the analysis prefilters,
    /// allocated on first use ([`AttackSession::wide_sim_parts`]).
    wide: Option<WideSim>,
    /// Prefilter decision counters accumulated by every analysis run through
    /// this session.
    prefilter_stats: PrefilterStats,
}

impl<'n> AttackSession<'n> {
    /// Creates an empty session for a locked netlist.  Nothing is encoded
    /// until the first query arrives.
    pub fn new(netlist: &'n Netlist) -> AttackSession<'n> {
        AttackSession::with_config(netlist, SolverConfig::default())
    }

    /// Creates an empty session whose solver uses the given search
    /// configuration (the portfolio entry point: each racer gets its own
    /// deliberately diverse configuration).
    pub fn with_config(netlist: &'n Netlist, config: SolverConfig) -> AttackSession<'n> {
        let mut solver = Solver::with_config(config);
        // Forward the solver's maintenance checkpoints (GC, reduction,
        // simplification, elimination, restarts) into the flight recorder.
        // `record_duration` is a no-op while tracing is disabled, and the
        // solver never reads a clock for search decisions, so the hook is
        // trajectory-neutral either way.
        solver.set_checkpoint_hook(Some(Box::new(|checkpoint, duration| {
            crate::trace::record_duration(checkpoint_phase(checkpoint), duration);
        })));
        AttackSession {
            netlist,
            solver,
            dip: None,
            cones: None,
            key_cone: None,
            generation: None,
            phi_key_pool: None,
            full_encodings: 0,
            clauses_at_last_simplify: 0,
            wide: None,
            prefilter_stats: PrefilterStats::default(),
        }
    }

    /// Eagerly builds the session's permanent DIP machinery: the two-copy
    /// circuit encoding and the key-dependent node set.
    ///
    /// Everything is built lazily on first use anyway; priming exists so a
    /// worker can pay the one-off encoding cost at a deterministic point
    /// (thread start) before pulling work from a queue — which also makes the
    /// [`AttackSession::cone_encodings_built`] counter deterministic for the
    /// benchmark-regression gate.
    pub fn prime(&mut self) {
        self.ensure_dip();
        if self.key_cone.is_none() {
            self.key_cone = Some(KeyCone::of(self.netlist));
        }
    }

    /// Number of full circuit encodings this session has performed: at most
    /// one two-copy DIP encoding plus one dual cone-space encoding per
    /// session, however many queries or predicate generations ran through it.
    pub fn cone_encodings_built(&self) -> u64 {
        self.full_encodings
    }

    /// Installs (or clears) a shared interrupt flag on the underlying solver.
    ///
    /// While the flag reads `true`, every SAT query returns
    /// [`SolveResult::Unknown`] at its next check point, which the attack
    /// loops surface as an unfinished (`completed: false`) result.  The
    /// parallel engine uses this to stop all workers the moment one confirms
    /// a key.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.solver.set_interrupt(flag);
    }

    /// The netlist this session attacks.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Work counters of the underlying solver, including the clause-arena
    /// footprint (`arena_bytes`/`wasted_bytes`/`gc_runs`) and the number of
    /// per-generation Tseitin variables reclaimed so far (`recycled_vars`).
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// The session's reusable wide-simulation scratch
    /// ([`DEFAULT_WIDE_WORDS`] words, allocated on first use) together with
    /// the prefilter counters — split-borrowed so an analysis can hold both
    /// while reading the netlist through the independent `&'n` reference of
    /// [`AttackSession::netlist`].
    pub fn wide_sim_parts(&mut self) -> (&mut WideSim, &mut PrefilterStats) {
        let wide = self
            .wide
            .get_or_insert_with(|| WideSim::new(self.netlist, DEFAULT_WIDE_WORDS));
        (wide, &mut self.prefilter_stats)
    }

    /// Prefilter decision counters accumulated by every analysis that ran
    /// through this session.
    pub fn prefilter_stats(&self) -> PrefilterStats {
        self.prefilter_stats
    }

    /// Number of solver variables this session has allocated.  Bounded across
    /// predicate generations: retirement releases a generation's Tseitin
    /// variables back to the solver's free list, so generation `n + 1` reuses
    /// the variables of generation `n` instead of growing the space.
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Forwards to [`Solver::set_conflict_budget`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.solver.set_conflict_budget(budget);
    }

    /// Direct access to the underlying solver, for callers that add their own
    /// **permanent** clauses.  Clauses must only be added between queries (at
    /// decision level 0).
    ///
    /// Do *not* add a key-confirmation predicate ϕ this way: clauses added
    /// through the raw solver bypass the generation's frame routing, survive
    /// [`AttackSession::retire_predicate`], and would silently conjoin with
    /// every later generation's ϕ.  Use
    /// [`AttackSession::add_predicate_clauses`] for anything predicate-scoped.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Model value of a literal after a successful query.
    pub fn value(&self, lit: Lit) -> Option<bool> {
        self.solver.value(lit)
    }

    // ------------------------------------------------------------------
    // DIP machinery (SAT attack and key confirmation).
    // ------------------------------------------------------------------

    /// Marks literals as solver interface: the session references them across
    /// [`Solver::simplify`] checkpoints (models, assumptions, new clauses),
    /// so bounded variable elimination must never resolve them out.
    fn freeze_all(&mut self, lits: &[Lit]) {
        for lit in lits {
            self.solver.set_frozen(lit.var(), true);
        }
    }

    fn ensure_dip(&mut self) {
        if self.dip.is_some() {
            return;
        }
        self.full_encodings += 1;
        let copy_a: CircuitCopy = instantiate(self.netlist, &mut self.solver);
        let copy_b = instantiate_sharing_inputs(self.netlist, &mut self.solver, &copy_a.inputs);
        let diff = encode_any_difference(&mut self.solver, &copy_a.outputs, &copy_b.outputs);
        // The session's permanent interface: inputs and both key copies are
        // read from models and constrained by every later I/O pair, and the
        // difference literal is re-armed after each extract_key.
        self.freeze_all(&copy_a.inputs);
        self.freeze_all(&copy_a.keys);
        self.freeze_all(&copy_b.keys);
        self.freeze_all(&[diff]);
        let diff_frame = self.solver.push_frame();
        self.solver.add_clause_in(diff_frame, [diff]);
        let io_a_frame = self.solver.push_frame();
        self.dip = Some(DipParts {
            inputs: copy_a.inputs,
            key_a: copy_a.keys,
            key_b: copy_b.keys,
            diff_lit: diff,
            diff_frame,
            io_a_frame,
        });
    }

    /// The frame holding the difference constraint, re-arming it in a fresh
    /// frame if a previous [`AttackSession::extract_key`] retired it.
    fn diff_frame(&mut self) -> FrameId {
        let dip = self.dip.as_ref().expect("ensured by caller");
        if !self.solver.frame_retired(dip.diff_frame) {
            return dip.diff_frame;
        }
        let diff = dip.diff_lit;
        let frame = self.solver.push_frame();
        self.solver.add_clause_in(frame, [diff]);
        self.dip.as_mut().expect("ensured by caller").diff_frame = frame;
        frame
    }

    /// Literals of the first key copy `K1`.
    pub fn key_a_lits(&mut self) -> Vec<Lit> {
        self.ensure_dip();
        self.dip.as_ref().expect("just ensured").key_a.clone()
    }

    /// Opens a predicate generation and returns the `Kϕ` key vector it
    /// constrains.
    ///
    /// Key confirmation constrains `Kϕ` with ϕ and the observed I/O pairs;
    /// it is not tied to either DIP circuit copy.  Everything the generation
    /// adds — ϕ clauses ([`AttackSession::add_predicate_clauses`]) and I/O
    /// constraints ([`AttackSession::constrain_key_with_io`], on *any* key
    /// vector) — is scoped to the generation's frames and detached by
    /// [`AttackSession::retire_predicate`], after which the session is clean
    /// for the next predicate.  The `Kϕ` literals themselves are allocated
    /// once and reused by every generation.
    ///
    /// A session supports one predicate *at a time*: two live predicates
    /// would silently conjoin and could reject a shortlist containing the
    /// correct key.
    ///
    /// # Panics
    ///
    /// Panics if a generation is already active (retire it first).
    pub fn begin_predicate(&mut self) -> Vec<Lit> {
        self.ensure_dip();
        assert!(
            self.generation.is_none(),
            "a session supports one active key-confirmation predicate; \
             call retire_predicate() before beginning the next one"
        );
        if self.phi_key_pool.is_none() {
            let keys: Vec<Lit> = (0..self.netlist.num_key_inputs())
                .map(|_| Lit::positive(self.solver.new_var()))
                .collect();
            // The pool outlives every generation; keep it out of elimination.
            self.freeze_all(&keys);
            self.phi_key_pool = Some(keys);
        }
        let phi_frame = self.solver.push_frame();
        let io_a_frame = self.solver.push_frame();
        self.generation = Some(PredicateGeneration {
            phi_frame,
            io_a_frame,
        });
        self.phi_key_pool.clone().expect("just ensured")
    }

    /// Concludes the active predicate generation: retires its frames,
    /// reclaims the clause database — the retired frames' clauses become
    /// arena tombstones and a garbage collection compacts them away once
    /// enough bytes are wasted — recycles the generation's Tseitin variables
    /// (every variable allocated while a generation frame was the default
    /// clause frame returns to the solver's free list), and leaves the
    /// session ready for the next [`AttackSession::begin_predicate`].
    ///
    /// This also recovers from a *poisoned* generation (one whose I/O pairs
    /// no key can reproduce): the contradiction lives in the retired frames,
    /// so the session stays satisfiable — a parallel worker that drew a
    /// contradictory region survives to take the next one.
    ///
    /// A no-op when no generation is active.
    pub fn retire_predicate(&mut self) {
        if let Some(generation) = self.generation.take() {
            self.solver.retire_frame(generation.phi_frame);
            self.solver.retire_frame(generation.io_a_frame);
            self.solver.simplify();
            self.clauses_at_last_simplify = self.solver.num_clauses();
        }
    }

    /// Returns `true` while a predicate generation is active.
    pub fn has_active_predicate(&self) -> bool {
        self.generation.is_some()
    }

    /// Adds ϕ clauses scoped to the active generation.
    ///
    /// The closure receives the solver with the generation's ϕ frame
    /// installed as the default clause frame, plus the `Kϕ` literals — so
    /// predicate builders written against the plain [`Solver::add_clause`]
    /// API (shortlist encodings, region pinnings) are scoped without knowing
    /// about frames.  Auxiliary variables the closure allocates (shortlist
    /// selectors and the like) are tagged to the ϕ frame and *recycled* when
    /// the generation retires — do not hold on to them across
    /// [`AttackSession::retire_predicate`]: a later generation's encoding may
    /// reuse the same variable index.
    ///
    /// # Panics
    ///
    /// Panics if no generation is active.
    pub fn add_predicate_clauses<F>(&mut self, add_phi: F)
    where
        F: FnOnce(&mut Solver, &[Lit]),
    {
        let frame = self
            .generation
            .as_ref()
            .expect("begin_predicate() must be called first")
            .phi_frame;
        let keys = self.phi_key_pool.clone().expect("pool exists");
        self.solver.set_default_frame(Some(frame));
        add_phi(&mut self.solver, &keys);
        self.solver.set_default_frame(None);
    }

    fn phi_keys(&self) -> Vec<Lit> {
        assert!(
            self.generation.is_some(),
            "begin_predicate() must be called first"
        );
        self.phi_key_pool.clone().expect("pool exists")
    }

    /// Searches for a distinguishing input: shared inputs `X`, two free key
    /// copies, outputs forced to differ.  An active predicate generation's
    /// constraints (ϕ and its I/O pairs) participate in the search.
    pub fn find_dip(&mut self) -> SolveResult {
        self.ensure_dip();
        let diff = self.diff_frame();
        let io_a = self.dip.as_ref().expect("just ensured").io_a_frame;
        let mut frames = vec![diff, io_a];
        if let Some(generation) = &self.generation {
            frames.push(generation.io_a_frame);
            frames.push(generation.phi_frame);
        }
        let _span = crate::trace::span("solve");
        self.solver.solve_in(&frames, &[])
    }

    /// Searches for a distinguishing input with `K1` pinned to a candidate
    /// key (the key-confirmation `Q` query).
    ///
    /// Any I/O constraints placed on `K1` — by a previous SAT-attack run or
    /// during the current predicate generation — stay dormant here: the
    /// candidate must be judged purely against the other key copy's
    /// consistency with the observed pairs, otherwise a candidate
    /// contradicting `K1`'s old observations would be spuriously "confirmed".
    /// The generation's `K2`/`Kϕ` constraints *are* active.
    ///
    /// # Panics
    ///
    /// Panics if the key width does not match the circuit.
    pub fn find_dip_against(&mut self, candidate: &Key) -> SolveResult {
        self.ensure_dip();
        let diff = self.diff_frame();
        let key_a = self.dip.as_ref().expect("just ensured").key_a.clone();
        let assumptions = assumptions_for(&key_a, candidate.bits());
        let mut frames = vec![diff];
        if let Some(generation) = &self.generation {
            frames.push(generation.phi_frame);
        }
        let _span = crate::trace::span("solve");
        self.solver.solve_in(&frames, &assumptions)
    }

    /// The distinguishing input found by the last successful
    /// [`AttackSession::find_dip`]/[`AttackSession::find_dip_against`] call.
    ///
    /// # Panics
    ///
    /// Panics if the last query was not satisfiable.
    pub fn dip_inputs(&self) -> Vec<bool> {
        let dip = self.dip.as_ref().expect("find_dip must be called first");
        model_values(&self.solver, &dip.inputs)
    }

    /// Simulates the key-free portion of the circuit for one input pattern
    /// (key bits are irrelevant outside the key cone) and memoizes the
    /// key-dependent node set on first use.
    fn simulate_key_free(&mut self, inputs: &[bool]) -> Vec<bool> {
        if self.key_cone.is_none() {
            self.key_cone = Some(KeyCone::of(self.netlist));
        }
        let zero_keys = vec![false; self.netlist.num_key_inputs()];
        self.netlist
            .node_values(inputs, &zero_keys)
            .expect("input width mismatch")
    }

    /// Adds the observed I/O pair `C(x̂, K, ŷ)` as a constraint on one key
    /// vector.
    ///
    /// Scoping: while a predicate generation is active, the constraint —
    /// including its cone encoding — lands in the generation's frames
    /// (`K1` in the generation's I/O frame, `K2`/`Kϕ` in the ϕ frame) and is
    /// detached by [`AttackSession::retire_predicate`].  Outside a
    /// generation, `K1` constraints are scoped to the session's `K1` I/O
    /// frame (see [`AttackSession::find_dip_against`] for why) and `K2`
    /// constraints are permanent; `Kϕ` requires an active generation.
    ///
    /// Only the session's precomputed key-dependent cone is encoded
    /// ([`netlist::cnf::encode_key_cone`]); every key-free wire is read from
    /// one simulator pass instead of being re-derived by constant folding
    /// over the whole netlist.  If an output bit is key-independent and
    /// contradicts the observation, the constrained formula becomes
    /// unsatisfiable (the locked circuit cannot produce the observed
    /// behaviour under any key) — within a generation the contradiction is
    /// confined to the generation's frame.
    pub fn constrain_key_with_io(&mut self, which: KeyVector, inputs: &[bool], outputs: &[bool]) {
        let node_values = self.simulate_key_free(inputs);
        self.constrain_key_with_io_presimulated(which, &node_values, outputs);
        self.maybe_simplify();
    }

    /// Inner constraint step over an existing simulation pass, so
    /// [`AttackSession::force_dip`] folds the key cone twice but simulates
    /// only once.
    fn constrain_key_with_io_presimulated(
        &mut self,
        which: KeyVector,
        node_values: &[bool],
        outputs: &[bool],
    ) {
        self.ensure_dip();
        let dip = self.dip.as_ref().expect("just ensured");
        let (keys, frame) = match which {
            KeyVector::A => (
                dip.key_a.clone(),
                Some(match &self.generation {
                    Some(generation) => generation.io_a_frame,
                    None => dip.io_a_frame,
                }),
            ),
            KeyVector::B => (
                dip.key_b.clone(),
                self.generation.as_ref().map(|g| g.phi_frame),
            ),
            KeyVector::Predicate => (self.phi_keys(), {
                let generation = self
                    .generation
                    .as_ref()
                    .expect("begin_predicate() must be called first");
                Some(generation.phi_frame)
            }),
        };
        let cone = self.key_cone.as_ref().expect("ensured by caller");
        // Route the whole encoding — Tseitin definitions and forcing units —
        // into the chosen frame, so retirement reclaims all of it.  An
        // impossible observation becomes the frame-scoped empty clause,
        // poisoning the frame instead of the solver.
        self.solver.set_default_frame(frame);
        let signals = encode_key_cone(self.netlist, &mut self.solver, cone, node_values, &keys);
        assert_eq!(signals.len(), outputs.len(), "output width mismatch");
        for (signal, &want) in signals.iter().zip(outputs) {
            match signal {
                Signal::Const(have) if *have == want => {}
                Signal::Const(_) => {
                    // No key can reproduce the observation.
                    self.solver.add_clause([]);
                    break;
                }
                Signal::Lit(l) => self.solver.add_clause([if want { *l } else { !*l }]),
            }
        }
        self.solver.set_default_frame(None);
    }

    /// Classic SAT-attack bookkeeping: constrains both DIP key copies with
    /// the observed I/O pair.  The key-free logic is simulated once and
    /// shared by both constraint passes.
    pub fn force_dip(&mut self, inputs: &[bool], outputs: &[bool]) {
        let node_values = self.simulate_key_free(inputs);
        self.constrain_key_with_io_presimulated(KeyVector::A, &node_values, outputs);
        self.constrain_key_with_io_presimulated(KeyVector::B, &node_values, outputs);
        self.maybe_simplify();
    }

    /// Solves the predicate formula (difference constraint and `K1` I/O
    /// history dormant, generation's ϕ and I/O pairs active) and returns a
    /// candidate key from the `Kϕ` model.
    ///
    /// # Panics
    ///
    /// Panics if no predicate generation is active.
    pub fn candidate_key(&mut self) -> (SolveResult, Option<Key>) {
        let phi = self.phi_keys();
        let phi_frame = self
            .generation
            .as_ref()
            .expect("checked by phi_keys")
            .phi_frame;
        let _span = crate::trace::span("solve");
        let result = self.solver.solve_in(&[phi_frame], &[]);
        let key = (result == SolveResult::Sat).then(|| model_key(&self.solver, &phi));
        (result, key)
    }

    /// Concludes the DIP loop: retires the difference constraint, reclaims
    /// the clause database, and extracts a key consistent with every observed
    /// I/O pair from the `K1` model.
    ///
    /// The session remains usable afterwards: the next DIP query transparently
    /// re-arms the difference constraint in a fresh frame.
    ///
    /// Returns `(Unsat, None)` when the accumulated constraints are
    /// contradictory (the oracle does not match the locked circuit).
    pub fn extract_key(&mut self) -> (SolveResult, Option<Key>) {
        self.ensure_dip();
        let dip = self.dip.as_ref().expect("just ensured");
        let (frame, io_a, key_a) = (dip.diff_frame, dip.io_a_frame, dip.key_a.clone());
        if !self.solver.frame_retired(frame) {
            self.solver.retire_frame(frame);
            self.solver.simplify();
        }
        let mut frames = vec![io_a];
        if let Some(generation) = &self.generation {
            frames.push(generation.io_a_frame);
            frames.push(generation.phi_frame);
        }
        let _span = crate::trace::span("solve");
        let result = self.solver.solve_in(&frames, &[]);
        let key = (result == SolveResult::Sat).then(|| model_key(&self.solver, &key_a));
        (result, key)
    }

    fn maybe_simplify(&mut self) {
        let n = self.solver.num_clauses();
        if n > 2_000 && n > 2 * self.clauses_at_last_simplify {
            self.solver.simplify();
            self.clauses_at_last_simplify = self.solver.num_clauses();
        }
    }

    // ------------------------------------------------------------------
    // Cone machinery (functional analyses and equivalence checking).
    // ------------------------------------------------------------------

    fn ensure_cones(&mut self) {
        if self.cones.is_some() {
            return;
        }
        self.full_encodings += 1;
        let enc1 = IncrementalEncoder::new(self.netlist, &mut self.solver, &PinBinding::default());
        // The second input space is fresh; the key space is shared with the
        // first copy (analysis candidates never depend on key inputs, but a
        // shared binding keeps cone pairs aligned if they ever do).
        let enc2 = IncrementalEncoder::new(
            self.netlist,
            &mut self.solver,
            &PinBinding {
                inputs: None,
                keys: Some(enc1.keys().to_vec()),
            },
        );
        // Input and key pins of both spaces are referenced by every later
        // analysis query; the internal cone-node literals are *not* frozen —
        // elimination may chew through them, and a later re-reference pays a
        // transparent resurrection instead.
        self.freeze_all(enc1.inputs());
        self.freeze_all(enc2.inputs());
        self.freeze_all(enc1.keys());
        self.cones = Some(ConeParts {
            enc1,
            enc2,
            diff: vec![None; self.netlist.num_inputs()],
            popcount: None,
            hd_equals: BTreeMap::new(),
            miters: BTreeMap::new(),
            const_false: None,
        });
    }

    /// Encodes (memoized) the candidate cone in the first input space and
    /// returns its root literal.
    pub fn cone_lit(&mut self, root: NodeId) -> Lit {
        self.ensure_cones();
        let cones = self.cones.as_mut().expect("just ensured");
        let lit = cones.enc1.encode_cone(self.netlist, &mut self.solver, root);
        // Root literals escape to callers (assumptions, miters); freeze them.
        self.solver.set_frozen(lit.var(), true);
        lit
    }

    /// Encodes (memoized) the candidate cone in both input spaces and
    /// returns the two root literals.
    pub fn cone_pair(&mut self, root: NodeId) -> (Lit, Lit) {
        self.ensure_cones();
        let cones = self.cones.as_mut().expect("just ensured");
        let l1 = cones.enc1.encode_cone(self.netlist, &mut self.solver, root);
        let l2 = cones.enc2.encode_cone(self.netlist, &mut self.solver, root);
        self.solver.set_frozen(l1.var(), true);
        self.solver.set_frozen(l2.var(), true);
        (l1, l2)
    }

    /// The literals of primary input `position` in the two input spaces.
    pub fn input_pair(&mut self, position: usize) -> (Lit, Lit) {
        self.ensure_cones();
        let cones = self.cones.as_ref().expect("just ensured");
        (cones.enc1.inputs()[position], cones.enc2.inputs()[position])
    }

    /// A literal equivalent to `X1[position] XOR X2[position]` (memoized).
    pub fn input_diff(&mut self, position: usize) -> Lit {
        self.ensure_cones();
        let cones = self.cones.as_mut().expect("just ensured");
        if let Some(lit) = cones.diff[position] {
            return lit;
        }
        let a = cones.enc1.inputs()[position];
        let b = cones.enc2.inputs()[position];
        let lit = xor2_lit(&mut self.solver, a, b);
        self.solver.set_frozen(lit.var(), true);
        cones.diff[position] = Some(lit);
        lit
    }

    /// A literal equivalent to `X1[position] == X2[position]` (memoized).
    pub fn input_eq(&mut self, position: usize) -> Lit {
        !self.input_diff(position)
    }

    /// A literal equivalent to `HD(X1, X2) == k` over **all** primary input
    /// positions (memoized; the popcount network is built once per session
    /// and shared by every Hamming-distance query).
    ///
    /// Callers restrict the distance to a support set by assuming
    /// [`AttackSession::input_eq`] for every position outside it.
    pub fn hd_equals(&mut self, k: usize) -> Lit {
        self.ensure_cones();
        if k > self.netlist.num_inputs() {
            return self.cone_const_false();
        }
        if let Some(&lit) = self.cones.as_ref().expect("just ensured").hd_equals.get(&k) {
            return lit;
        }
        if self
            .cones
            .as_ref()
            .expect("just ensured")
            .popcount
            .is_none()
        {
            let diffs: Vec<Lit> = (0..self.netlist.num_inputs())
                .map(|i| self.input_diff(i))
                .collect();
            let sum = popcount_lits(&mut self.solver, &diffs);
            // The counter bits feed every later `HD == k` literal.
            self.freeze_all(&sum);
            self.cones.as_mut().expect("just ensured").popcount = Some(sum);
        }
        let cones = self.cones.as_mut().expect("just ensured");
        let sum = cones.popcount.clone().expect("just built");
        // AND over per-bit agreement of the counter with the constant k.
        let mut acc: Option<Lit> = None;
        for (i, &s) in sum.iter().enumerate() {
            let term = if (k >> i) & 1 == 1 { s } else { !s };
            acc = Some(match acc {
                None => term,
                Some(prev) => and2_lit(&mut self.solver, prev, term),
            });
        }
        let lit = acc.expect("popcount has at least one bit");
        self.solver.set_frozen(lit.var(), true);
        self.cones
            .as_mut()
            .expect("just ensured")
            .hd_equals
            .insert(k, lit);
        lit
    }

    /// A literal equivalent to `a XOR b` (memoized miter).
    pub fn miter(&mut self, a: Lit, b: Lit) -> Lit {
        self.ensure_cones();
        let key = if a.code() <= b.code() { (a, b) } else { (b, a) };
        if let Some(&lit) = self.cones.as_ref().expect("just ensured").miters.get(&key) {
            return lit;
        }
        let lit = xor2_lit(&mut self.solver, a, b);
        self.solver.set_frozen(lit.var(), true);
        self.cones
            .as_mut()
            .expect("just ensured")
            .miters
            .insert(key, lit);
        lit
    }

    /// Decides a cone property under assumptions — the generic analysis
    /// query.  All shared structure (cones, difference vector, popcount) is
    /// reused; the query itself adds no clauses.
    pub fn check_cone_property(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solver.solve_with(assumptions)
    }

    fn cone_const_false(&mut self) -> Lit {
        let cones = self.cones.as_mut().expect("ensured by caller");
        if let Some(lit) = cones.const_false {
            return lit;
        }
        let lit = Lit::positive(self.solver.new_var());
        self.solver.set_frozen(lit.var(), true);
        self.solver.add_clause([!lit]);
        cones.const_false = Some(lit);
        lit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::{LockingScheme, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;
    use netlist::GateKind;

    #[test]
    fn dip_loop_is_allocation_free_and_concludes() {
        let original = generate(&RandomCircuitSpec::new("sess_dip", 6, 2, 40));
        let locked = XorLock::new(4).with_seed(3).lock(&original).expect("lock");
        let mut session = AttackSession::new(&locked.locked);

        let mut iterations = 0;
        loop {
            match session.find_dip() {
                SolveResult::Sat => {}
                SolveResult::Unsat => break,
                SolveResult::Unknown => panic!("no budget set"),
            }
            let x = session.dip_inputs();
            let y = original.evaluate(&x, &[]);
            session.force_dip(&x, &y);
            iterations += 1;
            assert!(iterations < 100, "XOR locking must converge quickly");
        }
        let (result, key) = session.extract_key();
        assert_eq!(result, SolveResult::Sat);
        let key = key.expect("sat result carries a key");
        for pattern in 0..64u64 {
            let bits = pattern_to_bits(pattern, 6);
            assert_eq!(
                locked.locked.evaluate(&bits, key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }

    #[test]
    fn session_survives_extract_key_and_supports_further_dip_queries() {
        // Regression: extract_key retires the difference frame; a later DIP
        // query (e.g. chaining sat_attack then key_confirmation on one
        // session) must transparently re-arm it instead of panicking.
        let original = generate(&RandomCircuitSpec::new("sess_chain", 6, 2, 40));
        let locked = XorLock::new(4).with_seed(7).lock(&original).expect("lock");
        let oracle = crate::oracle::SimOracle::new(original.clone());

        let mut session = AttackSession::new(&locked.locked);
        let first = crate::sat_attack::sat_attack_in(
            &mut session,
            &oracle,
            &crate::sat_attack::SatAttackConfig::default(),
        );
        assert!(first.is_success(), "{:?}", first.status);
        let recovered = first.key.expect("key");

        // The same session can now run key confirmation: its DIP queries
        // re-arm the retired difference constraint.
        let confirmation = crate::key_confirmation::key_confirmation_in(
            &mut session,
            &oracle,
            &[recovered.clone(), recovered.complement()],
            &crate::key_confirmation::KeyConfirmationConfig::default(),
        );
        assert!(confirmation.completed);
        let confirmed = confirmation.key.expect("a correct key is in the shortlist");
        assert!(locked.key_is_functionally_correct(&confirmed, 128, 1));

        // Soundness of the chained confirmation: a shortlist containing only
        // a wrong key must be rejected even though the session's K1 carries
        // I/O constraints from the earlier SAT attack (those must stay
        // dormant in the Q query, not masquerade as "no distinguishing
        // input").
        let mut session2 = AttackSession::new(&locked.locked);
        let first2 = crate::sat_attack::sat_attack_in(
            &mut session2,
            &oracle,
            &crate::sat_attack::SatAttackConfig::default(),
        );
        let recovered2 = first2.key.expect("key");
        let wrong = recovered2.complement();
        assert!(!locked.key_is_functionally_correct(&wrong, 128, 1));
        let rejection = crate::key_confirmation::key_confirmation_in(
            &mut session2,
            &oracle,
            &[wrong],
            &crate::key_confirmation::KeyConfirmationConfig::default(),
        );
        assert!(rejection.completed);
        assert_eq!(
            rejection.key, None,
            "a wrong-only shortlist must be rejected"
        );
    }

    #[test]
    #[should_panic(expected = "retire_predicate")]
    fn overlapping_predicate_generations_are_rejected() {
        let original = generate(&RandomCircuitSpec::new("sess_phi", 6, 2, 40));
        let locked = XorLock::new(4).with_seed(7).lock(&original).expect("lock");
        let mut session = AttackSession::new(&locked.locked);
        let _first = session.begin_predicate();
        let _second = session.begin_predicate();
    }

    #[test]
    fn retired_generations_rebind_and_reuse_the_phi_pool() {
        let original = generate(&RandomCircuitSpec::new("sess_gen", 6, 2, 40));
        let locked = XorLock::new(4).with_seed(7).lock(&original).expect("lock");
        let mut session = AttackSession::new(&locked.locked);

        let first = session.begin_predicate();
        assert!(session.has_active_predicate());
        session.retire_predicate();
        assert!(!session.has_active_predicate());
        let second = session.begin_predicate();
        assert_eq!(first, second, "the Kϕ literal pool is reused");
        // Retiring twice is a no-op.
        session.retire_predicate();
        session.retire_predicate();
        // Generations never re-encode the circuit.
        assert_eq!(session.cone_encodings_built(), 1);
    }

    #[test]
    fn contradictory_predicate_generations_alternate_with_clean_ones() {
        // A pinned predicate that contradicts ϕ-frame I/O pairs must make the
        // candidate query Unsat for this generation only.
        let original = generate(&RandomCircuitSpec::new("sess_pin", 6, 2, 40));
        let locked = XorLock::new(4).with_seed(9).lock(&original).expect("lock");
        let mut session = AttackSession::new(&locked.locked);

        for round in 0..3 {
            // Contradictory generation: Kϕ[0] pinned both ways.
            let keys = session.begin_predicate();
            let k0 = keys[0];
            session.add_predicate_clauses(|solver, _| {
                solver.add_clause([k0]);
                solver.add_clause([!k0]);
            });
            let (result, key) = session.candidate_key();
            assert_eq!(result, SolveResult::Unsat, "round {round}");
            assert!(key.is_none());
            session.retire_predicate();

            // Clean generation on the same session: satisfiable again.
            let keys = session.begin_predicate();
            let k0 = keys[0];
            session.add_predicate_clauses(|solver, _| solver.add_clause([k0]));
            let (result, key) = session.candidate_key();
            assert_eq!(result, SolveResult::Sat, "round {round}");
            assert!(key.expect("sat carries a key").bits()[0]);
            session.retire_predicate();
        }
    }

    #[test]
    fn constrain_with_impossible_io_poisons_the_session() {
        // A circuit whose output ignores the key entirely.
        let mut nl = netlist::Netlist::new("const_out");
        let a = nl.add_input("a");
        let _k = nl.add_key_input("k");
        let g = nl.add_gate("g", GateKind::Buf, &[a]);
        nl.add_output("g", g);

        let mut session = AttackSession::new(&nl);
        // Claim the output is 1 when the input is 0: impossible for any key.
        session.constrain_key_with_io(KeyVector::A, &[false], &[true]);
        let (result, key) = session.extract_key();
        assert_eq!(result, SolveResult::Unsat);
        assert!(key.is_none());
    }

    #[test]
    fn retiring_a_poisoned_generation_unpoisons_the_session() {
        // Regression for the parallel engine's worker reuse: a generation
        // whose I/O pair is impossible (key-independent contradiction) must
        // poison only its own frames — after retire_predicate the same
        // session must serve further generations and DIP queries.
        let mut nl = netlist::Netlist::new("const_out_gen");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k");
        let g = nl.add_gate("g", GateKind::Buf, &[a]);
        let keyed = nl.add_gate("keyed", GateKind::Xor, &[a, k]);
        nl.add_output("g", g);
        nl.add_output("keyed", keyed);

        let mut session = AttackSession::new(&nl);
        let _phi = session.begin_predicate();
        // Output "g" ignores the key; claiming g(0) == 1 is impossible.
        session.constrain_key_with_io(KeyVector::Predicate, &[false], &[true, false]);
        let (result, key) = session.candidate_key();
        assert_eq!(result, SolveResult::Unsat, "poisoned generation is ⊥");
        assert!(key.is_none());
        session.retire_predicate();

        // The session survives: a clean generation with a possible pair
        // confirms a candidate, and the DIP machinery still works.
        let _phi = session.begin_predicate();
        session.constrain_key_with_io(KeyVector::Predicate, &[false], &[false, true]);
        let (result, key) = session.candidate_key();
        assert_eq!(result, SolveResult::Sat, "session must recover");
        let key = key.expect("sat carries a key");
        assert_eq!(key.bits(), &[true], "keyed(0) == 1 forces k == 1");
        session.retire_predicate();
        assert_eq!(
            session.find_dip(),
            SolveResult::Sat,
            "the xor output still distinguishes the two key copies"
        );
    }

    #[test]
    fn hd_equals_restricted_by_eq_assumptions() {
        let mut nl = netlist::Netlist::new("hd");
        for i in 0..4 {
            let x = nl.add_input(format!("x{i}"));
            nl.add_output(format!("y{i}"), x);
        }
        let mut session = AttackSession::new(&nl);
        let hd1 = session.hd_equals(1);
        // Restrict to positions {0, 1} by forcing equality elsewhere.
        let eq2 = session.input_eq(2);
        let eq3 = session.input_eq(3);
        let (x1_0, x2_0) = session.input_pair(0);
        let (x1_1, x2_1) = session.input_pair(1);
        // Exactly one difference among positions 0 and 1: force both pairs
        // equal -> contradiction with HD == 1.
        let eq0 = session.input_eq(0);
        let eq1 = session.input_eq(1);
        assert_eq!(
            session.check_cone_property(&[hd1, eq2, eq3, eq0, eq1]),
            SolveResult::Unsat
        );
        // One pair differing is satisfiable.
        assert_eq!(
            session.check_cone_property(&[hd1, eq2, eq3, eq0]),
            SolveResult::Sat
        );
        let v1 = session.value(x1_1).unwrap();
        let v2 = session.value(x2_1).unwrap();
        assert_ne!(v1, v2, "the difference must be at the free position");
        let w1 = session.value(x1_0).unwrap();
        let w2 = session.value(x2_0).unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn hd_equals_beyond_width_is_false() {
        let mut nl = netlist::Netlist::new("tiny");
        let a = nl.add_input("a");
        nl.add_output("y", a);
        let mut session = AttackSession::new(&nl);
        let impossible = session.hd_equals(5);
        assert_eq!(
            session.check_cone_property(&[impossible]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn cone_pair_memoizes_and_miters_are_cached() {
        let mut nl = netlist::Netlist::new("cones");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, &[a, b]);
        let h = nl.add_gate("h", GateKind::Or, &[g, a]);
        nl.add_output("h", h);

        let mut session = AttackSession::new(&nl);
        let (g1, g2) = session.cone_pair(g);
        let (h1, h2) = session.cone_pair(h);
        assert_eq!(session.cone_pair(g), (g1, g2));
        assert_eq!(session.cone_pair(h), (h1, h2));
        let m = session.miter(g1, h1);
        assert_eq!(session.miter(h1, g1), m, "miters are symmetric and cached");
    }
}
