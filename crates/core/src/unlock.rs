//! Turning a recovered key back into an unlocked netlist.
//!
//! Once the FALL attack (or key confirmation) has produced a key, the
//! adversary's end goal is the *original* design: a netlist with no key
//! inputs that can be pirated or overproduced.  [`apply_key`] substitutes the
//! key constants into the locked netlist and lets structural hashing sweep
//! the now-constant restoration logic away — the "removal" step that makes
//! the attack practically complete.

use locking::Key;
use netlist::strash::strash;
use netlist::{GateKind, Netlist, NodeId, NodeKind};

/// Substitutes concrete key values for the key inputs of a locked netlist and
/// returns an equivalent key-free netlist.
///
/// The result is structurally hashed, so constants propagate through the
/// restoration unit and most of the locking logic disappears.
///
/// # Panics
///
/// Panics if the key width does not match the number of key inputs.
pub fn apply_key(locked: &Netlist, key: &Key) -> Netlist {
    assert_eq!(
        key.len(),
        locked.num_key_inputs(),
        "key width does not match the locked circuit"
    );
    let mut unlocked = Netlist::new(format!("{}_unlocked", locked.name()));
    let mut map: Vec<NodeId> = Vec::with_capacity(locked.num_nodes());
    // Lazily created constant drivers.
    let mut const0: Option<NodeId> = None;
    let mut const1: Option<NodeId> = None;

    for (id, node) in locked.iter() {
        let new_id = match node.kind() {
            NodeKind::Input => unlocked.add_input(node.name()),
            NodeKind::KeyInput => {
                let position = locked
                    .key_inputs()
                    .iter()
                    .position(|&k| k == id)
                    .expect("key input is registered");
                if key.bit(position) {
                    *const1.get_or_insert_with(|| {
                        let name = unlocked.fresh_name("_key_const1_");
                        unlocked.add_gate(name, GateKind::Const1, &[])
                    })
                } else {
                    *const0.get_or_insert_with(|| {
                        let name = unlocked.fresh_name("_key_const0_");
                        unlocked.add_gate(name, GateKind::Const0, &[])
                    })
                }
            }
            NodeKind::Gate { kind, fanins } => {
                let mapped: Vec<NodeId> = fanins.iter().map(|f| map[f.index()]).collect();
                unlocked.add_gate(node.name(), *kind, &mapped)
            }
        };
        map.push(new_id);
    }
    for (name, driver) in locked.outputs() {
        unlocked.add_output(name.clone(), map[driver.index()]);
    }
    strash(&unlocked)
}

/// Checks by exhaustive or sampled simulation that `unlocked` matches
/// `reference` on `samples` input patterns (exhaustive when the input count
/// is at most 16).
///
/// # Panics
///
/// Panics if the two circuits have different interface widths.
pub fn equivalent_to(unlocked: &Netlist, reference: &Netlist, samples: usize, seed: u64) -> bool {
    assert_eq!(
        unlocked.num_inputs(),
        reference.num_inputs(),
        "input widths differ"
    );
    assert_eq!(
        unlocked.num_outputs(),
        reference.num_outputs(),
        "output widths differ"
    );
    assert_eq!(
        unlocked.num_key_inputs(),
        0,
        "unlocked circuit still has key inputs"
    );
    let n = unlocked.num_inputs();
    if n <= 16 {
        (0..(1u64 << n)).all(|pattern| {
            let bits = netlist::sim::pattern_to_bits(pattern, n);
            unlocked.evaluate(&bits, &[]) == reference.evaluate(&bits, &[])
        })
    } else {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..samples).all(|_| {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            unlocked.evaluate(&bits, &[]) == reference.evaluate(&bits, &[])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{fall_attack, FallAttackConfig};
    use locking::{LockingScheme, SfllHd, TtLock, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};

    #[test]
    fn applying_the_correct_key_recovers_the_original_function() {
        let original = generate(&RandomCircuitSpec::new("unlock", 12, 3, 90));
        for h in [0usize, 1, 2] {
            let locked = SfllHd::new(8, h)
                .with_seed(4)
                .lock(&original)
                .expect("lock");
            let unlocked = apply_key(&locked.locked, &locked.key);
            assert_eq!(unlocked.num_key_inputs(), 0);
            assert!(equivalent_to(&unlocked, &original, 256, 0), "h = {h}");
        }
    }

    #[test]
    fn unlocking_shrinks_the_restoration_logic() {
        let original = generate(&RandomCircuitSpec::new("unlock_size", 12, 3, 90));
        let locked = SfllHd::new(10, 1)
            .with_seed(6)
            .lock(&original)
            .expect("lock")
            .optimized();
        let unlocked = apply_key(&locked.locked, &locked.key);
        assert!(
            unlocked.num_gates() < locked.locked.num_gates(),
            "constants should sweep away part of the restoration unit ({} vs {})",
            unlocked.num_gates(),
            locked.locked.num_gates()
        );
    }

    #[test]
    fn applying_a_wrong_key_does_not_recover_the_original() {
        let original = generate(&RandomCircuitSpec::new("unlock_wrong", 10, 2, 70));
        let locked = TtLock::new(10).with_seed(8).lock(&original).expect("lock");
        let unlocked = apply_key(&locked.locked, &locked.key.complement());
        assert!(!equivalent_to(&unlocked, &original, 1024, 1));
    }

    #[test]
    fn end_to_end_attack_then_unlock() {
        let original = generate(&RandomCircuitSpec::new("unlock_e2e", 14, 3, 110));
        let locked = SfllHd::new(10, 1)
            .with_seed(12)
            .lock(&original)
            .expect("lock")
            .optimized();
        let result = fall_attack(&locked.locked, None, &FallAttackConfig::for_h(1));
        let key = result.best_key().expect("attack recovered a key");
        let unlocked = apply_key(&locked.locked, key);
        assert!(equivalent_to(&unlocked, &original, 2048, 2));
    }

    #[test]
    fn works_for_xor_locking_too() {
        let original = generate(&RandomCircuitSpec::new("unlock_xor", 10, 2, 60));
        let locked = XorLock::new(8).with_seed(3).lock(&original).expect("lock");
        let unlocked = apply_key(&locked.locked, &locked.key);
        assert!(equivalent_to(&unlocked, &original, 1024, 3));
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn key_width_is_validated() {
        let original = generate(&RandomCircuitSpec::new("unlock_bad", 8, 2, 40));
        let locked = TtLock::new(6).with_seed(1).lock(&original).expect("lock");
        let _ = apply_key(&locked.locked, &Key::zeros(3));
    }
}
