//! Equivalence checking (§ IV-C).
//!
//! Lemmas 1–3 give *necessary* conditions only; a candidate that produced a
//! suspected cube must still be checked against the actual cube stripping
//! function `strip_h(Kc)`.  This module builds the reference function over
//! the same inputs and proves (un)equivalence with a miter and one SAT call.

use netlist::analysis::{input_positions, support};
use netlist::{Netlist, NodeId};
use sat::{Lit, SolveResult};

use crate::functional::CubeAssignment;
use crate::session::AttackSession;

/// Checks whether the candidate node computes exactly
/// `strip_h(Kc)(X) = (HD(X, Kc) == h)` for the suspected cube `Kc`, using a
/// throwaway session.  Prefer [`candidate_equals_strip_in`] when checking
/// several suspects of the same netlist.
pub fn candidate_equals_strip(
    netlist: &Netlist,
    candidate: NodeId,
    cube: &CubeAssignment,
    h: usize,
) -> bool {
    let mut session = AttackSession::new(netlist);
    candidate_equals_strip_in(&mut session, candidate, cube, h)
}

/// Session-based equivalence check.
///
/// Returns `true` iff the two functions are equivalent for *all* inputs (the
/// miter is unsatisfiable).  Returns `false` when the candidate depends on
/// key inputs or the cube does not cover its support.
///
/// The reference function `HD(X1, Kc) == h` is expressed through the
/// session's shared machinery: the second input space `X2` carries the cube
/// constants (by assumption), positions outside the candidate's support are
/// forced pairwise equal, and the memoized session popcount provides the
/// distance test — so repeated checks re-encode nothing but the (memoized)
/// candidate cone.
pub fn candidate_equals_strip_in(
    session: &mut AttackSession<'_>,
    candidate: NodeId,
    cube: &CubeAssignment,
    h: usize,
) -> bool {
    let netlist = session.netlist();
    let sup = support(netlist, candidate);
    if !sup.keys.is_empty() || sup.primary.is_empty() {
        return false;
    }
    let inputs: Vec<NodeId> = sup.primary.iter().copied().collect();
    // The cube must assign every support input (order-insensitive lookup).
    let cube_value = |id: NodeId| cube.iter().find(|&&(cid, _)| cid == id).map(|&(_, v)| v);
    if inputs.iter().any(|&id| cube_value(id).is_none()) {
        return false;
    }
    if h > inputs.len() {
        return false;
    }
    let positions = input_positions(netlist, &inputs);
    let mut slot_of: Vec<Option<usize>> = vec![None; netlist.num_inputs()];
    for (slot, &position) in positions.iter().enumerate() {
        slot_of[position] = Some(slot);
    }

    let candidate_lit = session.cone_lit(candidate);
    let reference_lit = session.hd_equals(h);
    let miter = session.miter(candidate_lit, reference_lit);

    // Assumptions: X2 carries the cube over the support; everything outside
    // the support contributes zero distance.
    let mut assumptions: Vec<Lit> = Vec::with_capacity(netlist.num_inputs() + 1);
    for (position, &slot) in slot_of.iter().enumerate() {
        if let Some(slot) = slot {
            let (_, x2) = session.input_pair(position);
            let bit = cube_value(inputs[slot]).expect("checked above");
            assumptions.push(if bit { x2 } else { !x2 });
        } else {
            assumptions.push(session.input_eq(position));
        }
    }
    assumptions.push(miter);
    session.check_cone_property(&assumptions) == SolveResult::Unsat
}

/// Filters a list of `(candidate, suspected cube)` pairs down to those whose
/// candidate is provably the strip function for that cube, sharing one
/// session across all checks.
pub fn filter_by_equivalence(
    netlist: &Netlist,
    suspects: &[(NodeId, CubeAssignment)],
    h: usize,
) -> Vec<(NodeId, CubeAssignment)> {
    let mut session = AttackSession::new(netlist);
    suspects
        .iter()
        .filter(|(candidate, cube)| candidate_equals_strip_in(&mut session, *candidate, cube, h))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::hamming::hamming_distance_equals_const;
    use netlist::sim::pattern_to_bits;
    use netlist::strash::strash;
    use netlist::GateKind;

    fn stripper(m: usize, cube: u64, h: usize) -> (Netlist, NodeId, Vec<NodeId>) {
        let mut nl = Netlist::new("strip");
        let xs: Vec<NodeId> = (0..m).map(|i| nl.add_input(format!("x{i}"))).collect();
        let cube_bits = pattern_to_bits(cube, m);
        let out = hamming_distance_equals_const(&mut nl, &xs, &cube_bits, h);
        nl.add_output("strip", out);
        (nl, out, xs)
    }

    fn assignment(xs: &[NodeId], cube: u64) -> CubeAssignment {
        xs.iter()
            .enumerate()
            .map(|(i, &id)| (id, (cube >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn accepts_the_true_cube_and_rejects_others() {
        let (nl, out, xs) = stripper(6, 0b101100, 1);
        assert!(candidate_equals_strip(
            &nl,
            out,
            &assignment(&xs, 0b101100),
            1
        ));
        assert!(!candidate_equals_strip(
            &nl,
            out,
            &assignment(&xs, 0b101101),
            1
        ));
        assert!(!candidate_equals_strip(
            &nl,
            out,
            &assignment(&xs, 0b101100),
            2
        ));
    }

    #[test]
    fn works_after_strash() {
        let (nl, _, _) = stripper(6, 0b010011, 2);
        let optimized = strash(&nl);
        let out = optimized.outputs()[0].1;
        let xs: Vec<NodeId> = optimized.inputs().to_vec();
        assert!(candidate_equals_strip(
            &optimized,
            out,
            &assignment(&xs, 0b010011),
            2
        ));
        assert!(!candidate_equals_strip(
            &optimized,
            out,
            &assignment(&xs, 0b110011),
            2
        ));
    }

    #[test]
    fn rejects_nodes_that_are_not_strip_functions() {
        let mut nl = Netlist::new("not_strip");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::Or, &[a, b]);
        nl.add_output("g", g);
        let cube = vec![(a, true), (b, false)];
        assert!(!candidate_equals_strip(&nl, g, &cube, 0));
    }

    #[test]
    fn incomplete_cubes_are_rejected() {
        let (nl, out, xs) = stripper(4, 0b1010, 1);
        let partial = vec![(xs[0], false)];
        assert!(!candidate_equals_strip(&nl, out, &partial, 1));
    }

    #[test]
    fn filter_keeps_only_equivalent_pairs() {
        let (nl, out, xs) = stripper(5, 0b11001, 1);
        let good = (out, assignment(&xs, 0b11001));
        let bad = (out, assignment(&xs, 0b00110));
        let kept = filter_by_equivalence(&nl, &[good.clone(), bad], 1);
        assert_eq!(kept, vec![good]);
    }
}
