//! Multi-tenant attack-as-a-service session pool.
//!
//! This module is the engine behind the `fall-serve` binary: a pool of
//! long-lived, primed [`AttackSession`]s keyed by registered target, fed by a
//! bounded job queue with per-client fairness, per-job deadlines and typed
//! overload responses.  It is deliberately transport-free — `fall-serve`
//! layers the line-delimited JSON protocol on top, and the test-suites drive
//! the pool directly.
//!
//! # Why a *session* pool
//!
//! The entire point of the persistent-session architecture (see
//! `ARCHITECTURE.md`) is that solver state is worth keeping: cone encodings,
//! learnt clauses and recycled variables all accumulate across queries.  A
//! service that built a fresh solver per request would throw that away.  Here
//! each registered target owns `workers_per_target` OS threads, and each
//! thread owns **one** [`AttackSession`] for its whole life.  Every job
//! executed against that target reuses the session, so clause learning
//! compounds across jobs: constraints derived from oracle observations
//! (distinguishing inputs, confirmation counterexamples) are sound for every
//! later job on the same target because they all share the same oracle.
//!
//! # Admission control and fairness
//!
//! Each target has a bounded queue (`queue_capacity`).  A submission to a
//! full queue fails *immediately* with [`SubmitError::Busy`] — the caller
//! gets a typed overload signal instead of unbounded latency (graceful
//! degradation).  Within a queue, jobs are organised per client and drained
//! round-robin: a client that submits fifty jobs cannot starve a client that
//! submits one, because workers take one job per client per rotation turn.
//!
//! # Deadlines and cancellation
//!
//! Every job carries a [`CancelToken`] plus a cancellation-reason cell.  A
//! reaper thread scans the active-job registry on a short interval and
//! cancels tokens whose deadline has passed; client disconnects and service
//! shutdown cancel through the same mechanism with their own reason codes.
//! The solver observes the token at its conflict/decision check points, so
//! cancellation lands mid-solve, the worker maps the incomplete result to
//! [`JobStatus::Timeout`] or [`JobStatus::Cancelled`], and — crucially — the
//! session *survives*: an interrupted solve poisons nothing, and the worker
//! immediately serves the next queued job with all its accumulated state.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use locking::Key;
use netlist::Netlist;
use sat::SolverStats;

use crate::attack::{fall_attack, FallAttackConfig};
use crate::functional::PrefilterStats;
use crate::key_confirmation::{key_confirmation_in, KeyConfirmationConfig};
use crate::oracle::Oracle;
use crate::parallel::{CachingOracle, CancelToken};
use crate::sat_attack::{sat_attack_in, SatAttackConfig, SatAttackStatus};
use crate::session::AttackSession;

/// Identifies one client across every queue of the service.  Handed out by
/// [`AttackService::next_client`]; the transport layer allocates one per
/// connection.
pub type ClientId = u64;

/// Pool sizing and scheduling knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Maximum number of queued (not yet running) jobs per target; above it
    /// submissions fail fast with [`SubmitError::Busy`].
    pub queue_capacity: usize,
    /// Worker threads — equivalently, long-lived primed sessions — per
    /// registered target.
    pub workers_per_target: usize,
    /// Maximum number of registered targets; above it registration fails
    /// with [`RegisterError::PoolFull`].
    pub max_targets: usize,
    /// Deadline applied to jobs that do not request one.
    pub default_timeout: Duration,
    /// Upper bound on any requested deadline (a client cannot pin a worker
    /// for longer than this).
    pub max_timeout: Duration,
    /// How often the reaper thread scans active jobs for expired deadlines;
    /// effectively the cancellation latency granularity.
    pub reaper_interval: Duration,
    /// Latency samples retained for the p50/p99 gauges.  Up to this many
    /// completed jobs the percentiles are exact; past it the samples are a
    /// uniform reservoir over the service lifetime (see
    /// [`LatencyReservoir`]), so memory stays flat no matter how many jobs
    /// a long-lived server completes.
    pub latency_reservoir: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            queue_capacity: 64,
            workers_per_target: 2,
            max_targets: 8,
            default_timeout: Duration::from_secs(30),
            max_timeout: Duration::from_secs(300),
            reaper_interval: Duration::from_millis(10),
            latency_reservoir: 4096,
        }
    }
}

/// Fixed-capacity uniform sample of job latencies (Algorithm R).
///
/// The first `capacity` recorded values are kept verbatim, so percentiles
/// over the reservoir are *exact* until the cap is reached.  From then on
/// each new value replaces a random slot with probability `capacity / seen`,
/// which keeps the retained set a uniform random sample of everything ever
/// recorded — percentiles become estimates with bounded memory instead of
/// an unbounded `Vec` on a server completing millions of jobs.  The
/// replacement choices come from a deterministic splitmix64 stream, so a
/// given record sequence always retains the same sample.
pub struct LatencyReservoir {
    samples: Vec<u64>,
    seen: u64,
    capacity: usize,
    rng: u64,
}

impl LatencyReservoir {
    /// An empty reservoir holding at most `capacity` samples (clamped to a
    /// minimum of one).
    pub fn new(capacity: usize) -> LatencyReservoir {
        let capacity = capacity.max(1);
        LatencyReservoir {
            samples: Vec::new(),
            seen: 0,
            capacity,
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Records one value, evicting a uniformly-chosen retained sample if the
    /// reservoir is full.
    pub fn record(&mut self, value: u64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(value);
            return;
        }
        // splitmix64 step; uniform slot choice over everything seen so far.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let slot = z % self.seen;
        if (slot as usize) < self.capacity {
            self.samples[slot as usize] = value;
        }
    }

    /// The retained samples, in arrival order (exact history below
    /// capacity, uniform sample above).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Total values ever recorded (≥ `samples().len()`).
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// The attack a job requests against its target.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// The baseline oracle-guided SAT attack ([`mod@crate::sat_attack`]).
    SatAttack,
    /// The full FALL pipeline ([`crate::attack::fall_attack`]).
    Fall {
        /// The Hamming-distance parameter the adversary assumes; `None`
        /// takes the `h` the target was registered with.
        h: Option<usize>,
    },
    /// Key confirmation ([`mod@crate::key_confirmation`]) over a client-supplied
    /// shortlist of suspected keys.
    Confirm {
        /// The suspected keys; must be non-empty and match the target's key
        /// width.
        shortlist: Vec<Key>,
    },
}

/// One job submission.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// What to run.
    pub kind: JobKind,
    /// Per-job deadline; `None` takes [`ServiceConfig::default_timeout`].
    /// Clamped to [`ServiceConfig::max_timeout`].
    pub timeout: Option<Duration>,
    /// Opaque caller token echoed back in the [`JobReport`], so a transport
    /// can correlate reports with its own request identifiers without a side
    /// table.
    pub tag: u64,
}

/// How a job concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The attack produced a key (proven for SAT/confirm jobs, best
    /// candidate for FALL jobs).
    KeyFound,
    /// The attack completed and proved no key (or produced no candidate).
    NoKey,
    /// The per-job deadline cancelled the attack mid-run.
    Timeout,
    /// The client disconnected or the service shut down before the job
    /// finished.
    Cancelled,
    /// The attack stopped on a non-deadline budget (e.g. iteration cap)
    /// without a verdict.
    Failed,
}

impl JobStatus {
    /// Stable lower-case wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::KeyFound => "key_found",
            JobStatus::NoKey => "no_key",
            JobStatus::Timeout => "timeout",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        }
    }
}

/// The result of one finished (or cancelled) job, delivered on the reply
/// channel passed to [`AttackService::submit`].
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The identifier [`AttackService::submit`] returned.
    pub job_id: u64,
    /// The caller token from [`JobSpec::tag`], echoed verbatim.
    pub tag: u64,
    /// How the job concluded.
    pub status: JobStatus,
    /// The recovered key, when `status` is [`JobStatus::KeyFound`].
    pub key: Option<Key>,
    /// For FALL jobs, every key that survived the functional analyses.
    pub shortlist: Vec<Key>,
    /// Distinguishing-input iterations (SAT and confirm jobs; `0` for FALL).
    pub iterations: usize,
    /// Oracle queries issued by this job (SAT and confirm jobs; `0` for
    /// FALL, whose oracle traffic shows up in the target's cache counters).
    pub oracle_queries: usize,
    /// Time the job spent queued before a worker picked it up.
    pub queued: Duration,
    /// Time the job spent running on a worker.
    pub elapsed: Duration,
}

/// Why a submission was not accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The target's queue is at capacity; retry later.  This is the typed
    /// graceful-degradation signal — the service sheds load instead of
    /// queuing without bound.
    Busy {
        /// Jobs currently queued for the target.
        queued: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// No target with the given name is registered.
    UnknownTarget,
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The job is malformed for the target (empty shortlist, key-width
    /// mismatch, out-of-range `h`, …).
    BadRequest(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { queued, capacity } => {
                write!(f, "queue full ({queued}/{capacity}); retry later")
            }
            SubmitError::UnknownTarget => write!(f, "unknown target"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::BadRequest(reason) => write!(f, "bad request: {reason}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a target registration was not accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegisterError {
    /// A target with this name is already registered.
    Exists,
    /// The pool is at [`ServiceConfig::max_targets`].
    PoolFull,
    /// The service is shutting down.
    ShuttingDown,
    /// The netlists are unusable (width mismatch, no key inputs, oracle
    /// netlist still keyed, …).
    BadTarget(String),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::Exists => write!(f, "target already registered"),
            RegisterError::PoolFull => write!(f, "target pool is full"),
            RegisterError::ShuttingDown => write!(f, "service is shutting down"),
            RegisterError::BadTarget(reason) => write!(f, "bad target: {reason}"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// Static facts about a registered target.
#[derive(Clone, Debug)]
pub struct TargetInfo {
    /// The name jobs address the target by.
    pub name: String,
    /// Free-form scheme label supplied at registration (e.g. `"sfll-hd"`).
    pub scheme: String,
    /// Circuit inputs of the locked netlist.
    pub inputs: usize,
    /// Circuit outputs of the locked netlist.
    pub outputs: usize,
    /// Key inputs of the locked netlist.
    pub key_width: usize,
    /// Worker sessions dedicated to this target.
    pub workers: usize,
}

/// One named point (counter or gauge) of the service's `/metrics` surface,
/// in the dialect of `fall-bench`'s `MetricReport`: a flat name, a numeric
/// value and an orientation flag.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Flat metric name (e.g. `serve_jobs_completed`).
    pub name: String,
    /// Current value.
    pub value: f64,
    /// Whether larger values are better (only true for cache hit rates
    /// here; counts and latencies are informational or lower-is-better).
    pub higher_is_better: bool,
}

/// Cancellation reasons, recorded in each job's reason cell before its token
/// is cancelled so the worker can label the incomplete result.
const REASON_NONE: u8 = 0;
const REASON_TIMEOUT: u8 = 1;
const REASON_DISCONNECT: u8 = 2;
const REASON_SHUTDOWN: u8 = 3;

/// A job sitting in a target queue.
struct QueuedJob {
    job_id: u64,
    client: ClientId,
    tag: u64,
    kind: JobKind,
    timeout: Duration,
    token: CancelToken,
    reason: Arc<AtomicU8>,
    submitted: Instant,
    reply: Sender<JobReport>,
}

/// Per-target queue: jobs bucketed per client, drained round-robin.
#[derive(Default)]
struct QueueState {
    /// Pending jobs per client, FIFO within a client.
    per_client: BTreeMap<ClientId, VecDeque<QueuedJob>>,
    /// Clients with pending jobs, in service order.  A worker pops the front
    /// client, takes **one** of its jobs, and re-queues the client at the
    /// back if it still has jobs — so queue share per rotation turn is equal
    /// across clients regardless of how many jobs each has piled up.
    rotation: VecDeque<ClientId>,
    /// Total jobs across `per_client` (the admission-control count).
    queued: usize,
    /// Set once; wakes and terminates the target's workers.
    shutdown: bool,
}

impl QueueState {
    /// Takes the next job in round-robin client order.
    fn pop_fair(&mut self) -> Option<QueuedJob> {
        while let Some(client) = self.rotation.pop_front() {
            let Some(jobs) = self.per_client.get_mut(&client) else {
                continue;
            };
            let Some(job) = jobs.pop_front() else {
                self.per_client.remove(&client);
                continue;
            };
            if jobs.is_empty() {
                self.per_client.remove(&client);
            } else {
                self.rotation.push_back(client);
            }
            self.queued -= 1;
            return Some(job);
        }
        None
    }
}

/// A registered target: the circuits, the shared oracle cache, and the queue
/// its dedicated workers drain.
struct Target {
    info: TargetInfo,
    h: usize,
    netlist: Arc<Netlist>,
    oracle: Arc<CachingOracle<'static>>,
    queue: Mutex<QueueState>,
    available: Condvar,
}

/// A job currently running on a worker, visible to the reaper.
struct ActiveJob {
    job_id: u64,
    client: ClientId,
    deadline: Instant,
    token: CancelToken,
    reason: Arc<AtomicU8>,
}

/// Service-wide counters (all monotone; gauges are computed at snapshot
/// time).
#[derive(Default)]
struct Counters {
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_key_found: AtomicU64,
    jobs_no_key: AtomicU64,
    jobs_busy: AtomicU64,
    jobs_timeout: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_failed: AtomicU64,
    /// Jobs that actually ran on a worker session, by kind (busy-rejected
    /// and cancelled-while-queued jobs never reach a session and are not
    /// counted here).
    jobs_sat: AtomicU64,
    jobs_fall: AtomicU64,
    jobs_confirm: AtomicU64,
    sessions_created: AtomicU64,
}

/// State shared between the service handle, workers and the reaper.
struct Shared {
    config: ServiceConfig,
    /// When the pool started, for the `serve_uptime_s` gauge.
    started: Instant,
    shutting_down: AtomicBool,
    /// Jobs currently running on workers, scanned by the reaper.
    active: Mutex<Vec<ActiveJob>>,
    reaper_stop: Mutex<bool>,
    reaper_wake: Condvar,
    counters: Counters,
    /// Latest [`SolverStats`] snapshot per worker session, indexed by the
    /// worker's pool-wide slot.
    worker_stats: Mutex<Vec<SolverStats>>,
    /// Word-parallel prefilter counters accumulated from FALL jobs.
    prefilter: Mutex<PrefilterStats>,
    /// End-to-end (queue + run) job latencies in microseconds, for the
    /// p50/p99 gauges — a bounded reservoir, not a full history.
    latencies: Mutex<LatencyReservoir>,
}

/// The session pool.  See the module docs for the architecture.
///
/// Dropping the service shuts it down: queued jobs are reported as
/// [`JobStatus::Cancelled`], active jobs are cancelled through their tokens,
/// and all worker threads are joined.
pub struct AttackService {
    shared: Arc<Shared>,
    targets: Mutex<BTreeMap<String, Arc<Target>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    reaper: Mutex<Option<JoinHandle<()>>>,
    next_job_id: AtomicU64,
    next_client_id: AtomicU64,
}

impl AttackService {
    /// Starts an empty pool (plus its reaper thread) with the given sizing.
    pub fn new(config: ServiceConfig) -> AttackService {
        let config_reservoir = config.latency_reservoir;
        let shared = Arc::new(Shared {
            config,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            active: Mutex::new(Vec::new()),
            reaper_stop: Mutex::new(false),
            reaper_wake: Condvar::new(),
            counters: Counters::default(),
            worker_stats: Mutex::new(Vec::new()),
            prefilter: Mutex::new(PrefilterStats::default()),
            latencies: Mutex::new(LatencyReservoir::new(config_reservoir)),
        });
        let reaper = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reaper_loop(&shared))
        };
        AttackService {
            shared,
            targets: Mutex::new(BTreeMap::new()),
            workers: Mutex::new(Vec::new()),
            reaper: Mutex::new(Some(reaper)),
            next_job_id: AtomicU64::new(1),
            next_client_id: AtomicU64::new(1),
        }
    }

    /// Allocates a fresh client identity (one per transport connection).
    pub fn next_client(&self) -> ClientId {
        self.next_client_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a target and spawns its dedicated worker sessions.
    ///
    /// `locked` is the circuit under attack; `oracle` answers I/O queries
    /// for it (for a simulation oracle this is the original netlist — it
    /// must not have key inputs).  `h` is the SFLL-HD parameter assumed by
    /// FALL jobs against this target; `scheme` is a free-form label echoed
    /// in [`TargetInfo`].
    ///
    /// Each worker thread creates **one** [`AttackSession`] over the locked
    /// netlist, primes it, and keeps it for the lifetime of the service; the
    /// oracle is wrapped in a shared [`CachingOracle`] so duplicate queries
    /// across jobs and workers hit the cache.
    pub fn register_target(
        &self,
        name: &str,
        scheme: &str,
        h: usize,
        locked: Netlist,
        oracle: Arc<dyn Oracle + Send + Sync>,
    ) -> Result<TargetInfo, RegisterError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(RegisterError::ShuttingDown);
        }
        if name.is_empty() {
            return Err(RegisterError::BadTarget("empty target name".into()));
        }
        if locked.num_key_inputs() == 0 {
            return Err(RegisterError::BadTarget(
                "locked netlist has no key inputs".into(),
            ));
        }
        if oracle.num_inputs() != locked.num_inputs()
            || oracle.num_outputs() != locked.num_outputs()
        {
            return Err(RegisterError::BadTarget(format!(
                "oracle is {}→{} but the locked circuit is {}→{}",
                oracle.num_inputs(),
                oracle.num_outputs(),
                locked.num_inputs(),
                locked.num_outputs(),
            )));
        }
        let workers = self.shared.config.workers_per_target.max(1);
        let info = TargetInfo {
            name: name.to_string(),
            scheme: scheme.to_string(),
            inputs: locked.num_inputs(),
            outputs: locked.num_outputs(),
            key_width: locked.num_key_inputs(),
            workers,
        };
        let target = Arc::new(Target {
            info: info.clone(),
            h,
            netlist: Arc::new(locked),
            oracle: Arc::new(CachingOracle::shared(oracle)),
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
        });

        let mut targets = self.targets.lock().expect("targets lock");
        if targets.contains_key(name) {
            return Err(RegisterError::Exists);
        }
        if targets.len() >= self.shared.config.max_targets {
            return Err(RegisterError::PoolFull);
        }
        targets.insert(name.to_string(), Arc::clone(&target));
        drop(targets);

        let mut handles = self.workers.lock().expect("workers lock");
        for _ in 0..workers {
            let slot = {
                let mut stats = self.shared.worker_stats.lock().expect("stats lock");
                stats.push(SolverStats::default());
                stats.len() - 1
            };
            let target = Arc::clone(&target);
            let shared = Arc::clone(&self.shared);
            handles.push(std::thread::spawn(move || {
                worker_loop(&target, &shared, slot)
            }));
        }
        Ok(info)
    }

    /// Returns the static facts about a registered target, if any.
    pub fn target_info(&self, name: &str) -> Option<TargetInfo> {
        self.targets
            .lock()
            .expect("targets lock")
            .get(name)
            .map(|t| t.info.clone())
    }

    /// Lists every registered target.
    pub fn targets(&self) -> Vec<TargetInfo> {
        self.targets
            .lock()
            .expect("targets lock")
            .values()
            .map(|t| t.info.clone())
            .collect()
    }

    /// Submits a job for `client` against `target`.
    ///
    /// Validation (shortlist width, `h` range) happens here, before the job
    /// consumes queue capacity.  On success the job is queued and its id is
    /// returned; the eventual [`JobReport`] arrives on `reply` (a dropped
    /// receiver is fine — the report is discarded).
    pub fn submit(
        &self,
        target: &str,
        client: ClientId,
        spec: JobSpec,
        reply: Sender<JobReport>,
    ) -> Result<u64, SubmitError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let target = self
            .targets
            .lock()
            .expect("targets lock")
            .get(target)
            .cloned()
            .ok_or(SubmitError::UnknownTarget)?;

        match &spec.kind {
            JobKind::SatAttack => {}
            JobKind::Fall { h } => {
                let h = h.unwrap_or(target.h);
                if h > target.info.key_width {
                    return Err(SubmitError::BadRequest(format!(
                        "h = {h} exceeds the key width {}",
                        target.info.key_width
                    )));
                }
            }
            JobKind::Confirm { shortlist } => {
                if shortlist.is_empty() {
                    return Err(SubmitError::BadRequest("empty shortlist".into()));
                }
                if let Some(bad) = shortlist
                    .iter()
                    .find(|key| key.len() != target.info.key_width)
                {
                    return Err(SubmitError::BadRequest(format!(
                        "shortlist key has {} bits but the target key width is {}",
                        bad.len(),
                        target.info.key_width
                    )));
                }
            }
        }

        let timeout = spec
            .timeout
            .unwrap_or(self.shared.config.default_timeout)
            .min(self.shared.config.max_timeout);
        let job_id = self.next_job_id.fetch_add(1, Ordering::Relaxed);
        let job = QueuedJob {
            job_id,
            client,
            tag: spec.tag,
            kind: spec.kind,
            timeout,
            token: CancelToken::new(),
            reason: Arc::new(AtomicU8::new(REASON_NONE)),
            submitted: Instant::now(),
            reply,
        };

        let mut queue = target.queue.lock().expect("queue lock");
        if queue.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if queue.queued >= self.shared.config.queue_capacity {
            self.shared
                .counters
                .jobs_busy
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Busy {
                queued: queue.queued,
                capacity: self.shared.config.queue_capacity,
            });
        }
        let bucket = queue.per_client.entry(client).or_default();
        let newly_pending = bucket.is_empty();
        bucket.push_back(job);
        if newly_pending {
            queue.rotation.push_back(client);
        }
        queue.queued += 1;
        self.shared
            .counters
            .jobs_submitted
            .fetch_add(1, Ordering::Relaxed);
        drop(queue);
        target.available.notify_one();
        Ok(job_id)
    }

    /// Cancels everything a client has in flight: queued jobs are dropped
    /// (counted as cancelled) and active jobs are cancelled through their
    /// tokens with the *disconnect* reason.  Called by the transport when a
    /// connection closes.
    pub fn cancel_client(&self, client: ClientId) {
        let targets: Vec<Arc<Target>> = self
            .targets
            .lock()
            .expect("targets lock")
            .values()
            .cloned()
            .collect();
        for target in targets {
            let mut queue = target.queue.lock().expect("queue lock");
            if let Some(jobs) = queue.per_client.remove(&client) {
                queue.queued -= jobs.len();
                queue.rotation.retain(|c| *c != client);
                for job in jobs {
                    job.reason.store(REASON_DISCONNECT, Ordering::SeqCst);
                    job.token.cancel();
                    self.shared
                        .counters
                        .jobs_cancelled
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let active = self.shared.active.lock().expect("active lock");
        for job in active.iter().filter(|j| j.client == client) {
            let _ = job.reason.compare_exchange(
                REASON_NONE,
                REASON_DISCONNECT,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            job.token.cancel();
        }
    }

    /// Snapshots the `/metrics` surface: job counters, queue gauges,
    /// end-to-end latency percentiles, oracle-cache effectiveness, the
    /// aggregated [`SolverStats`] of every pool session, and the
    /// word-parallel prefilter counters from FALL jobs.
    pub fn metrics(&self) -> Vec<MetricSample> {
        let mut samples = Vec::new();
        let mut push = |name: &str, value: f64, higher_is_better: bool| {
            samples.push(MetricSample {
                name: name.to_string(),
                value,
                higher_is_better,
            });
        };
        let counters = &self.shared.counters;
        push(
            "serve_jobs_submitted",
            counters.jobs_submitted.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_completed",
            counters.jobs_completed.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_key_found",
            counters.jobs_key_found.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_no_key",
            counters.jobs_no_key.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_busy",
            counters.jobs_busy.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_timeout",
            counters.jobs_timeout.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_cancelled",
            counters.jobs_cancelled.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_failed",
            counters.jobs_failed.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_sat",
            counters.jobs_sat.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_fall",
            counters.jobs_fall.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_jobs_confirm",
            counters.jobs_confirm.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_sessions_created",
            counters.sessions_created.load(Ordering::Relaxed) as f64,
            false,
        );
        push(
            "serve_uptime_s",
            self.shared.started.elapsed().as_secs_f64(),
            false,
        );

        let targets: Vec<Arc<Target>> = self
            .targets
            .lock()
            .expect("targets lock")
            .values()
            .cloned()
            .collect();
        push("serve_targets", targets.len() as f64, false);
        let queue_depth: usize = targets
            .iter()
            .map(|t| t.queue.lock().expect("queue lock").queued)
            .sum();
        push("serve_queue_depth", queue_depth as f64, false);
        push(
            "serve_active_jobs",
            self.shared.active.lock().expect("active lock").len() as f64,
            false,
        );

        let (hits, unique): (usize, usize) = targets
            .iter()
            .map(|t| (t.oracle.hits(), t.oracle.unique_queries()))
            .fold((0, 0), |(h, u), (th, tu)| (h + th, u + tu));
        push("oracle_cache_hits", hits as f64, false);
        push("oracle_unique_queries", unique as f64, false);
        let rate = if hits + unique > 0 {
            hits as f64 / (hits + unique) as f64
        } else {
            0.0
        };
        push("oracle_cache_hit_rate", rate, true);

        let latencies = self.shared.latencies.lock().expect("latency lock");
        let (p50, p99) = percentiles(latencies.samples());
        let retained = latencies.samples().len();
        drop(latencies);
        push("serve_latency_p50_s", p50, false);
        push("serve_latency_p99_s", p99, false);
        push("serve_latency_samples", retained as f64, false);

        let mut pool = SolverStats::default();
        for stats in self.shared.worker_stats.lock().expect("stats lock").iter() {
            pool.absorb(stats);
        }
        // Driven by the canonical field table, so a counter added to
        // `SolverStats` shows up here (and in the drift-guard test) without
        // touching this function.
        for (field, value) in pool.fields() {
            push(&solver_metric_name(field), value as f64, false);
        }

        let prefilter = self.shared.prefilter.lock().expect("prefilter lock");
        push(
            "prefilter_refuted",
            (prefilter.polarities_refuted + prefilter.candidates_refuted) as f64,
            false,
        );
        push(
            "prefilter_patterns_simulated",
            prefilter.patterns_simulated as f64,
            false,
        );
        samples.extend(crate::trace::metric_samples());
        samples
    }

    /// Shuts the pool down: rejects new work, reports every queued job as
    /// cancelled, cancels active jobs through their tokens, then joins all
    /// workers and the reaper.  Idempotent.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let targets: Vec<Arc<Target>> = self
            .targets
            .lock()
            .expect("targets lock")
            .values()
            .cloned()
            .collect();
        for target in &targets {
            let drained = {
                let mut queue = target.queue.lock().expect("queue lock");
                queue.shutdown = true;
                let mut drained = Vec::new();
                while let Some(job) = queue.pop_fair() {
                    drained.push(job);
                }
                drained
            };
            target.available.notify_all();
            for job in drained {
                job.reason.store(REASON_SHUTDOWN, Ordering::SeqCst);
                job.token.cancel();
                self.shared
                    .counters
                    .jobs_cancelled
                    .fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(JobReport {
                    job_id: job.job_id,
                    tag: job.tag,
                    status: JobStatus::Cancelled,
                    key: None,
                    shortlist: Vec::new(),
                    iterations: 0,
                    oracle_queries: 0,
                    queued: job.submitted.elapsed(),
                    elapsed: Duration::ZERO,
                });
            }
        }
        {
            let active = self.shared.active.lock().expect("active lock");
            for job in active.iter() {
                let _ = job.reason.compare_exchange(
                    REASON_NONE,
                    REASON_SHUTDOWN,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                job.token.cancel();
            }
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in handles {
            let _ = handle.join();
        }
        {
            let mut stop = self.shared.reaper_stop.lock().expect("reaper lock");
            *stop = true;
        }
        self.shared.reaper_wake.notify_all();
        if let Some(reaper) = self.reaper.lock().expect("reaper handle lock").take() {
            let _ = reaper.join();
        }
    }
}

impl Drop for AttackService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// `(p50, p99)` of the recorded latencies, in seconds.
fn percentiles(micros: &[u64]) -> (f64, f64) {
    if micros.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted = micros.to_vec();
    sorted.sort_unstable();
    let at = |q: f64| {
        let index = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[index] as f64 / 1e6
    };
    (at(0.50), at(0.99))
}

/// Scans active jobs on a fixed interval and cancels expired deadlines.
fn reaper_loop(shared: &Shared) {
    let mut stop = shared.reaper_stop.lock().expect("reaper lock");
    while !*stop {
        {
            let now = Instant::now();
            let active = shared.active.lock().expect("active lock");
            for job in active.iter() {
                if now >= job.deadline && !job.token.is_cancelled() {
                    let _ = job.reason.compare_exchange(
                        REASON_NONE,
                        REASON_TIMEOUT,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    job.token.cancel();
                }
            }
        }
        let (guard, _) = shared
            .reaper_wake
            .wait_timeout(stop, shared.config.reaper_interval)
            .expect("reaper lock");
        stop = guard;
    }
}

/// What a job execution produced, before status mapping.
struct RunOutcome {
    completed: bool,
    key: Option<Key>,
    shortlist: Vec<Key>,
    iterations: usize,
    oracle_queries: usize,
}

/// The life of one worker: create and prime one session, then serve jobs
/// until shutdown.
fn worker_loop(target: &Target, shared: &Shared, slot: usize) {
    let netlist = Arc::clone(&target.netlist);
    let mut session = AttackSession::new(&netlist);
    session.prime();
    shared
        .counters
        .sessions_created
        .fetch_add(1, Ordering::Relaxed);
    loop {
        let job = {
            let mut queue = target.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_fair() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = target.available.wait(queue).expect("queue lock");
            }
        };
        let Some(job) = job else {
            break;
        };
        run_job(&mut session, target, shared, slot, job);
    }
}

/// Executes one job on the worker's session and delivers the report.
fn run_job(
    session: &mut AttackSession<'_>,
    target: &Target,
    shared: &Shared,
    slot: usize,
    job: QueuedJob,
) {
    let queued_for = job.submitted.elapsed();

    // A job cancelled while still queued (disconnect race, shutdown race)
    // must not consume solver time.
    if job.token.is_cancelled() {
        let status = match job.reason.load(Ordering::SeqCst) {
            REASON_TIMEOUT => JobStatus::Timeout,
            _ => JobStatus::Cancelled,
        };
        count_status(shared, status);
        let _ = job.reply.send(JobReport {
            job_id: job.job_id,
            tag: job.tag,
            status,
            key: None,
            shortlist: Vec::new(),
            iterations: 0,
            oracle_queries: 0,
            queued: queued_for,
            elapsed: Duration::ZERO,
        });
        return;
    }

    // Make the job visible to the reaper, then arm the session.
    let deadline = Instant::now() + job.timeout;
    shared.active.lock().expect("active lock").push(ActiveJob {
        job_id: job.job_id,
        client: job.client,
        deadline,
        token: job.token.clone(),
        reason: Arc::clone(&job.reason),
    });
    session.set_interrupt(Some(job.token.as_flag()));

    let kind_counter = match &job.kind {
        JobKind::SatAttack => &shared.counters.jobs_sat,
        JobKind::Fall { .. } => &shared.counters.jobs_fall,
        JobKind::Confirm { .. } => &shared.counters.jobs_confirm,
    };
    kind_counter.fetch_add(1, Ordering::Relaxed);

    let started = Instant::now();
    let outcome = {
        let _span = crate::trace::span("serve_job");
        execute(session, target, shared, &job)
    };
    let elapsed = started.elapsed();

    // Disarm: the session survives the job, whatever happened to it.
    session.set_interrupt(None);
    session.set_conflict_budget(None);
    shared
        .active
        .lock()
        .expect("active lock")
        .retain(|active| active.job_id != job.job_id);

    let status = if outcome.completed {
        if outcome.key.is_some() {
            JobStatus::KeyFound
        } else {
            JobStatus::NoKey
        }
    } else {
        match job.reason.load(Ordering::SeqCst) {
            REASON_DISCONNECT | REASON_SHUTDOWN => JobStatus::Cancelled,
            REASON_TIMEOUT => JobStatus::Timeout,
            // The in-attack wall-clock budget can fire between reaper scans;
            // past the deadline it is still a timeout, otherwise some other
            // budget (iteration cap) stopped the run.
            _ if elapsed >= job.timeout => JobStatus::Timeout,
            _ => JobStatus::Failed,
        }
    };
    count_status(shared, status);
    shared
        .latencies
        .lock()
        .expect("latency lock")
        .record((queued_for + elapsed).as_micros() as u64);
    shared.worker_stats.lock().expect("stats lock")[slot] = session.stats();

    let _ = job.reply.send(JobReport {
        job_id: job.job_id,
        tag: job.tag,
        status,
        key: outcome.key,
        shortlist: outcome.shortlist,
        iterations: outcome.iterations,
        oracle_queries: outcome.oracle_queries,
        queued: queued_for,
        elapsed,
    });
}

/// The `/metrics` name of a [`SolverStats`] field: `sat_<field>` except for
/// the four arena/lifecycle counters that predate the prefix convention and
/// are kept under their original names for dashboard stability.
fn solver_metric_name(field: &str) -> String {
    match field {
        "arena_bytes" => "arena_bytes".to_string(),
        "wasted_bytes" => "arena_wasted_bytes".to_string(),
        "gc_runs" => "gc_runs".to_string(),
        "recycled_vars" => "recycled_vars".to_string(),
        other => format!("sat_{other}"),
    }
}

/// Bumps the counter matching a final job status.
fn count_status(shared: &Shared, status: JobStatus) {
    let counters = &shared.counters;
    let counter = match status {
        JobStatus::KeyFound => &counters.jobs_key_found,
        JobStatus::NoKey => &counters.jobs_no_key,
        JobStatus::Timeout => &counters.jobs_timeout,
        JobStatus::Cancelled => &counters.jobs_cancelled,
        JobStatus::Failed => &counters.jobs_failed,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    if matches!(status, JobStatus::KeyFound | JobStatus::NoKey) {
        counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs the requested attack kind.
fn execute(
    session: &mut AttackSession<'_>,
    target: &Target,
    shared: &Shared,
    job: &QueuedJob,
) -> RunOutcome {
    let oracle: &CachingOracle<'static> = &target.oracle;
    match &job.kind {
        JobKind::SatAttack => {
            let config = SatAttackConfig {
                time_limit: Some(job.timeout),
                ..SatAttackConfig::default()
            };
            let result = sat_attack_in(session, oracle, &config);
            RunOutcome {
                completed: matches!(
                    result.status,
                    SatAttackStatus::Success | SatAttackStatus::Inconsistent
                ),
                key: result.key,
                shortlist: Vec::new(),
                iterations: result.iterations,
                oracle_queries: result.oracle_queries,
            }
        }
        JobKind::Fall { h } => {
            // FALL builds its own session internally (its pipeline owns the
            // candidate bookkeeping); the pool session still serves SAT and
            // confirmation jobs between FALL runs.  The job token is threaded
            // through the config so the deadline interrupts every stage.
            let mut config = FallAttackConfig::for_h(h.unwrap_or(target.h));
            config.interrupt = Some(job.token.as_flag());
            config.confirmation.time_limit = Some(job.timeout);
            let result = fall_attack(&target.netlist, Some(oracle), &config);
            shared
                .prefilter
                .lock()
                .expect("prefilter lock")
                .merge(&result.prefilter);
            RunOutcome {
                completed: !job.token.is_cancelled(),
                key: result.best_key().cloned(),
                shortlist: result.shortlisted_keys,
                iterations: 0,
                oracle_queries: 0,
            }
        }
        JobKind::Confirm { shortlist } => {
            let config = KeyConfirmationConfig {
                time_limit: Some(job.timeout),
                ..KeyConfirmationConfig::default()
            };
            let result = key_confirmation_in(session, oracle, shortlist, &config);
            RunOutcome {
                completed: result.completed,
                key: result.key,
                shortlist: Vec::new(),
                iterations: result.iterations,
                oracle_queries: result.oracle_queries,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn push(queue: &mut QueueState, client: ClientId, job_id: u64) {
        let (reply, _) = mpsc::channel();
        let job = QueuedJob {
            job_id,
            client,
            tag: 0,
            kind: JobKind::SatAttack,
            timeout: Duration::from_secs(1),
            token: CancelToken::new(),
            reason: Arc::new(AtomicU8::new(REASON_NONE)),
            submitted: Instant::now(),
            reply,
        };
        let bucket = queue.per_client.entry(client).or_default();
        let newly_pending = bucket.is_empty();
        bucket.push_back(job);
        if newly_pending {
            queue.rotation.push_back(client);
        }
        queue.queued += 1;
    }

    #[test]
    fn pop_fair_round_robins_across_clients() {
        let mut queue = QueueState::default();
        // Client 1 floods the queue; clients 2 and 3 submit less.
        for job_id in [10, 11, 12] {
            push(&mut queue, 1, job_id);
        }
        push(&mut queue, 2, 20);
        for job_id in [30, 31] {
            push(&mut queue, 3, job_id);
        }
        let mut order = Vec::new();
        while let Some(job) = queue.pop_fair() {
            order.push(job.job_id);
        }
        // One job per client per rotation turn: 1, 2, 3, 1, 3, 1.
        assert_eq!(order, vec![10, 20, 30, 11, 31, 12]);
        assert_eq!(queue.queued, 0);
        assert!(queue.per_client.is_empty());
    }

    #[test]
    fn pop_fair_resumes_fairly_after_new_submissions() {
        let mut queue = QueueState::default();
        push(&mut queue, 1, 10);
        push(&mut queue, 1, 11);
        assert_eq!(queue.pop_fair().expect("job").job_id, 10);
        // A second client arriving mid-stream gets the next turn after the
        // first client's already-rotated entry.
        push(&mut queue, 2, 20);
        assert_eq!(queue.pop_fair().expect("job").job_id, 11);
        assert_eq!(queue.pop_fair().expect("job").job_id, 20);
        assert!(queue.pop_fair().is_none());
    }

    #[test]
    fn latency_reservoir_is_exact_below_capacity_and_flat_above() {
        let mut reservoir = LatencyReservoir::new(8);
        for value in 0..8 {
            reservoir.record(value);
        }
        // Below the cap nothing is sampled away: exact history, exact
        // percentiles.
        assert_eq!(reservoir.samples(), (0..8).collect::<Vec<u64>>());
        assert_eq!(reservoir.seen(), 8);

        // A million more records: memory stays at the cap, the retained set
        // stays a subset of what was recorded, and the total is counted.
        for value in 8..1_000_000 {
            reservoir.record(value);
        }
        assert_eq!(reservoir.samples().len(), 8);
        assert_eq!(reservoir.seen(), 1_000_000);
        assert!(reservoir.samples().iter().all(|&v| v < 1_000_000));

        // Deterministic replacement stream: same inputs, same sample.
        let mut replay = LatencyReservoir::new(8);
        for value in 0..1_000_000 {
            replay.record(value);
        }
        assert_eq!(replay.samples(), reservoir.samples());
    }

    #[test]
    fn latency_reservoir_clamps_a_zero_capacity() {
        let mut reservoir = LatencyReservoir::new(0);
        reservoir.record(7);
        reservoir.record(9);
        assert_eq!(reservoir.samples().len(), 1);
        assert_eq!(reservoir.seen(), 2);
    }

    #[test]
    fn metrics_cover_every_solver_stats_field() {
        // Drift guard: a counter added to `SolverStats` must surface in the
        // `/metrics` frame.  Because `metrics()` iterates
        // `SolverStats::fields()`, this can only fail if the legacy-name
        // mapping loses a field or the metrics pipeline is rewritten.
        let service = AttackService::new(ServiceConfig::default());
        let names: Vec<String> = service.metrics().into_iter().map(|s| s.name).collect();
        for (field, _) in SolverStats::default().fields() {
            let expected = solver_metric_name(field);
            assert!(
                names.contains(&expected),
                "SolverStats field {field:?} missing from /metrics (expected {expected:?})"
            );
        }
        service.shutdown();
    }

    #[test]
    fn metrics_report_uptime_and_per_kind_job_counters() {
        let service = AttackService::new(ServiceConfig::default());
        let metric = |name: &str| {
            service
                .metrics()
                .into_iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert!(metric("serve_uptime_s").value >= 0.0);
        assert_eq!(metric("serve_jobs_sat").value, 0.0);
        assert_eq!(metric("serve_jobs_fall").value, 0.0);
        assert_eq!(metric("serve_jobs_confirm").value, 0.0);
        service.shutdown();
    }

    #[test]
    fn percentiles_pick_the_right_order_statistics() {
        assert_eq!(percentiles(&[]), (0.0, 0.0));
        assert_eq!(percentiles(&[2_000_000]), (2.0, 2.0));
        let micros: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        let (p50, p99) = percentiles(&micros);
        assert_eq!(p50, 51.0);
        assert_eq!(p99, 99.0);
    }
}
