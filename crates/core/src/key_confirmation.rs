//! Key confirmation (§ V, Algorithm 4).
//!
//! Given a predicate ϕ over keys (typically "the key is one of these
//! shortlisted values") and an I/O oracle, key confirmation either returns a
//! key satisfying ϕ that is provably correct for the oracle, or ⊥ if no key
//! in ϕ is correct.  Unlike the plain SAT attack, it distinguishes "no key in
//! ϕ is consistent" from "no distinguishing input remains", and it restricts
//! the search to ϕ, which is why it is orders of magnitude faster (Figure 6).

use std::time::{Duration, Instant};

use locking::Key;
use netlist::cnf::encode_any_difference;
use netlist::{Netlist, WideSim};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sat::{Lit, SolveResult, Solver};

use crate::encode::{
    assumptions_for, constrain_equal_const, instantiate, instantiate_sharing_inputs,
    instantiate_sharing_keys, model_key, model_values,
};
use crate::oracle::Oracle;
use crate::session::{AttackSession, KeyVector};

/// Configuration for key confirmation.
#[derive(Clone, Debug)]
pub struct KeyConfirmationConfig {
    /// Abort after this many distinguishing-input iterations.
    pub max_iterations: usize,
    /// Wall-clock time limit.
    pub time_limit: Option<Duration>,
    /// Conflict budget per individual SAT call.
    pub conflict_budget: Option<u64>,
    /// Words of random stimulus for the word-batched shortlist prescreen:
    /// before the P/Q loop, `screen_words * 64` probe patterns are shipped to
    /// the oracle in one [`Oracle::query_words`] call and every shortlisted
    /// key whose simulated responses differ is eliminated (the mismatching
    /// probe is a concrete counterexample, so this never discards a correct
    /// key).  `0` (the default) disables the screen, leaving the query
    /// trajectory of the P/Q loop untouched.
    pub screen_words: usize,
}

impl Default for KeyConfirmationConfig {
    fn default() -> KeyConfirmationConfig {
        KeyConfirmationConfig {
            max_iterations: 100_000,
            time_limit: Some(Duration::from_secs(1000)),
            conflict_budget: None,
            screen_words: 0,
        }
    }
}

/// The outcome of a key-confirmation run.
#[derive(Clone, Debug)]
pub struct KeyConfirmationResult {
    /// The confirmed key, or `None` (⊥) if no shortlisted key is correct.
    pub key: Option<Key>,
    /// `true` if the run finished (either way) within its budgets.
    pub completed: bool,
    /// Number of distinguishing-input iterations performed.
    pub iterations: usize,
    /// Number of oracle queries issued.
    pub oracle_queries: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Runs key confirmation over an explicit shortlist of suspected keys.
///
/// This is the common case in the FALL flow: ϕ is the disjunction of the key
/// values produced by the functional analyses.  See
/// [`key_confirmation_with_predicate`] for the general form.
///
/// # Panics
///
/// Panics if the shortlist is empty or a key width does not match the locked
/// circuit.
pub fn key_confirmation(
    locked: &Netlist,
    oracle: &dyn Oracle,
    suspected_keys: &[Key],
    config: &KeyConfirmationConfig,
) -> KeyConfirmationResult {
    let mut session = AttackSession::new(locked);
    key_confirmation_in(&mut session, oracle, suspected_keys, config)
}

/// Runs key confirmation over a shortlist through an existing session (see
/// [`key_confirmation`]).
///
/// # Panics
///
/// Panics if the shortlist is empty or a key width does not match the locked
/// circuit.
pub fn key_confirmation_in(
    session: &mut AttackSession<'_>,
    oracle: &dyn Oracle,
    suspected_keys: &[Key],
    config: &KeyConfirmationConfig,
) -> KeyConfirmationResult {
    assert!(!suspected_keys.is_empty(), "shortlist must not be empty");
    for key in suspected_keys {
        assert_eq!(
            key.len(),
            session.netlist().num_key_inputs(),
            "suspected key width does not match the circuit"
        );
    }
    let start = Instant::now();
    let screened: Vec<Key>;
    let suspected_keys = if config.screen_words > 0 && suspected_keys.len() > 1 {
        screened = screen_shortlist(
            session.netlist(),
            oracle,
            suspected_keys,
            config.screen_words,
        );
        if screened.is_empty() {
            // Every shortlisted key was refuted by an explicit probe: ⊥,
            // with the counterexamples standing in for the P/Q loop's proof.
            return KeyConfirmationResult {
                key: None,
                completed: true,
                iterations: 0,
                oracle_queries: 0,
                elapsed: start.elapsed(),
            };
        }
        screened.as_slice()
    } else {
        suspected_keys
    };
    key_confirmation_with_predicate_in(session, oracle, config, |solver, key_lits| {
        add_shortlist_phi(solver, key_lits, suspected_keys);
    })
}

/// Seed of the prescreen's probe block (fixed for reproducible trajectories).
const SCREEN_SEED: u64 = 0xFA11_0BA7;

/// Word-batched shortlist prescreen: ships `words * 64` random probe
/// patterns to the oracle in one [`Oracle::query_words`] call, simulates the
/// locked circuit under each shortlisted key over the same block, and keeps
/// only the keys whose responses match everywhere.
///
/// Purely an *eliminator*: a mismatching probe is a concrete counterexample,
/// so a correct key always survives, while survivors still need the P/Q loop
/// for an actual proof of correctness.
fn screen_shortlist(locked: &Netlist, oracle: &dyn Oracle, keys: &[Key], words: usize) -> Vec<Key> {
    let mut rng = ChaCha8Rng::seed_from_u64(SCREEN_SEED);
    let probes: Vec<u64> = (0..locked.num_inputs() * words)
        .map(|_| rng.gen())
        .collect();
    let observed = oracle.query_words(&probes, words);
    let mut sim = WideSim::new(locked, words);
    let mut responses = Vec::with_capacity(locked.num_outputs() * words);
    keys.iter()
        .filter(|key| {
            let key_words: Vec<u64> = key
                .bits()
                .iter()
                .flat_map(|&b| std::iter::repeat_n(if b { !0u64 } else { 0 }, words))
                .collect();
            sim.run(locked, &probes, &key_words)
                .expect("probe block matches the circuit width");
            responses.clear();
            sim.extend_with_outputs(locked, &mut responses);
            responses == observed
        })
        .cloned()
        .collect()
}

/// Encodes ϕ(K) = OR over shortlisted keys of (K == key_j), with one
/// selector variable per shortlisted key.
///
/// Shared by the session path and the fresh baseline so the two stay
/// provably identical for differential testing.
fn add_shortlist_phi(solver: &mut Solver, key_lits: &[Lit], suspected_keys: &[Key]) {
    let selectors: Vec<Lit> = suspected_keys
        .iter()
        .map(|key| {
            let selector = Lit::positive(solver.new_var());
            for (&lit, &bit) in key_lits.iter().zip(key.bits()) {
                solver.add_clause([!selector, if bit { lit } else { !lit }]);
            }
            selector
        })
        .collect();
    solver.add_clause(selectors);
}

/// Runs key confirmation with an arbitrary key predicate ϕ.
///
/// `add_phi` receives the key-candidate solver and the literals of `K1` and
/// must add clauses constraining them; passing a no-op closure makes the
/// algorithm equivalent to the plain SAT attack (ϕ = true).
pub fn key_confirmation_with_predicate<F>(
    locked: &Netlist,
    oracle: &dyn Oracle,
    config: &KeyConfirmationConfig,
    add_phi: F,
) -> KeyConfirmationResult
where
    F: FnOnce(&mut Solver, &[Lit]),
{
    let mut session = AttackSession::new(locked);
    key_confirmation_with_predicate_in(&mut session, oracle, config, add_phi)
}

/// Session-based key confirmation with an arbitrary predicate ϕ.
///
/// The whole algorithm runs inside one persistent solver: the two-copy
/// distinguishing formula `Q` is encoded once with its difference constraint
/// scoped to an activation frame, the predicate vector `Kϕ` carries ϕ plus
/// the accumulated I/O pairs, and the `P`/`Q` queries of Algorithm 4
/// alternate on the same solver — `P` with the difference constraint dormant,
/// `Q` with it activated and `K1` assumed equal to the candidate.  Learnt
/// clauses from either query speed up the other; per-iteration I/O pairs are
/// constant-folded so only the key cone is encoded.
///
/// ϕ and the I/O pairs observed during this run live in a *predicate
/// generation* ([`AttackSession::begin_predicate`]) that is retired before
/// returning, so the same session can run any number of confirmations — the
/// parallel engine's workers confirm one key-space region after another on
/// one long-lived session this way, keeping their circuit encodings and
/// frame-independent learnt clauses throughout.
///
/// # Panics
///
/// Panics if a predicate generation is already active on `session`.
pub fn key_confirmation_with_predicate_in<F>(
    session: &mut AttackSession<'_>,
    oracle: &dyn Oracle,
    config: &KeyConfirmationConfig,
    add_phi: F,
) -> KeyConfirmationResult
where
    F: FnOnce(&mut Solver, &[Lit]),
{
    assert_eq!(
        oracle.num_inputs(),
        session.netlist().num_inputs(),
        "oracle width does not match the locked circuit"
    );
    // The clock covers the whole run — including the circuit encoding a
    // fresh session performs in begin_predicate and the ϕ encoding — so the
    // time limit and the reported elapsed keep their pre-generation meaning.
    let start = Instant::now();
    session.set_conflict_budget(config.conflict_budget);
    let _phi_keys = session.begin_predicate();
    session.add_predicate_clauses(add_phi);
    let result = confirmation_loop(session, oracle, config, start);
    session.retire_predicate();
    result
}

/// The P/Q loop of Algorithm 4, run inside an already-open generation.
fn confirmation_loop(
    session: &mut AttackSession<'_>,
    oracle: &dyn Oracle,
    config: &KeyConfirmationConfig,
    start: Instant,
) -> KeyConfirmationResult {
    let mut iterations = 0usize;
    let mut oracle_queries = 0usize;
    let unfinished =
        |key: Option<Key>, iterations, oracle_queries, elapsed| KeyConfirmationResult {
            key,
            completed: false,
            iterations,
            oracle_queries,
            elapsed,
        };

    loop {
        if iterations >= config.max_iterations
            || config
                .time_limit
                .is_some_and(|limit| start.elapsed() >= limit)
        {
            return unfinished(None, iterations, oracle_queries, start.elapsed());
        }

        // Line 6: extract a candidate key consistent with ϕ and the I/O pairs.
        let candidate = match session.candidate_key() {
            (SolveResult::Unsat, _) => {
                // ⊥: no key satisfying ϕ is consistent with the oracle.
                return KeyConfirmationResult {
                    key: None,
                    completed: true,
                    iterations,
                    oracle_queries,
                    elapsed: start.elapsed(),
                };
            }
            (SolveResult::Unknown, _) => {
                return unfinished(None, iterations, oracle_queries, start.elapsed())
            }
            (SolveResult::Sat, key) => key.expect("sat result carries a key"),
        };

        // Line 10: look for a distinguishing input with K1 fixed to the candidate.
        match session.find_dip_against(&candidate) {
            SolveResult::Unsat => {
                // No distinguishing input remains: the candidate is correct.
                return KeyConfirmationResult {
                    key: Some(candidate),
                    completed: true,
                    iterations,
                    oracle_queries,
                    elapsed: start.elapsed(),
                };
            }
            SolveResult::Unknown => {
                return unfinished(None, iterations, oracle_queries, start.elapsed())
            }
            SolveResult::Sat => {}
        }
        iterations += 1;
        let distinguishing_input = session.dip_inputs();
        let observed_output = oracle.query(&distinguishing_input);
        oracle_queries += 1;

        // Lines 15–16: add the observed I/O pair to both formulas.
        session.constrain_key_with_io(
            KeyVector::Predicate,
            &distinguishing_input,
            &observed_output,
        );
        session.constrain_key_with_io(KeyVector::B, &distinguishing_input, &observed_output);
    }
}

/// The pre-session key confirmation: two dedicated solvers and full
/// re-encoding per query.
///
/// Kept as the ablation baseline for the `incremental_vs_fresh` benchmark
/// and as a differential-testing reference; new code should use
/// [`key_confirmation`].
pub fn key_confirmation_fresh(
    locked: &Netlist,
    oracle: &dyn Oracle,
    suspected_keys: &[Key],
    config: &KeyConfirmationConfig,
) -> KeyConfirmationResult {
    assert!(!suspected_keys.is_empty(), "shortlist must not be empty");
    assert_eq!(
        oracle.num_inputs(),
        locked.num_inputs(),
        "oracle width does not match the locked circuit"
    );
    let start = Instant::now();

    // P: produces candidate keys consistent with ϕ and the observed I/O pairs.
    let mut p_solver = Solver::new();
    p_solver.set_conflict_budget(config.conflict_budget);
    let p_keys: Vec<Lit> = (0..locked.num_key_inputs())
        .map(|_| Lit::positive(p_solver.new_var()))
        .collect();
    add_shortlist_phi(&mut p_solver, &p_keys, suspected_keys);

    // Q: produces distinguishing inputs between K1 (assumed equal to the
    // candidate) and any other key K2 consistent with the observed I/O pairs.
    let mut q_solver = Solver::new();
    q_solver.set_conflict_budget(config.conflict_budget);
    let q_copy1 = instantiate(locked, &mut q_solver);
    let q_copy2 = instantiate_sharing_inputs(locked, &mut q_solver, &q_copy1.inputs);
    let diff = encode_any_difference(&mut q_solver, &q_copy1.outputs, &q_copy2.outputs);
    q_solver.add_clause([diff]);

    let mut iterations = 0usize;
    let mut oracle_queries = 0usize;
    let unfinished =
        |key: Option<Key>, iterations, oracle_queries, elapsed| KeyConfirmationResult {
            key,
            completed: false,
            iterations,
            oracle_queries,
            elapsed,
        };

    loop {
        if iterations >= config.max_iterations
            || config
                .time_limit
                .is_some_and(|limit| start.elapsed() >= limit)
        {
            return unfinished(None, iterations, oracle_queries, start.elapsed());
        }

        let candidate = match p_solver.solve() {
            SolveResult::Unsat => {
                return KeyConfirmationResult {
                    key: None,
                    completed: true,
                    iterations,
                    oracle_queries,
                    elapsed: start.elapsed(),
                };
            }
            SolveResult::Unknown => {
                return unfinished(None, iterations, oracle_queries, start.elapsed())
            }
            SolveResult::Sat => model_key(&p_solver, &p_keys),
        };

        let assumptions = assumptions_for(&q_copy1.keys, candidate.bits());
        match q_solver.solve_with(&assumptions) {
            SolveResult::Unsat => {
                return KeyConfirmationResult {
                    key: Some(candidate),
                    completed: true,
                    iterations,
                    oracle_queries,
                    elapsed: start.elapsed(),
                };
            }
            SolveResult::Unknown => {
                return unfinished(None, iterations, oracle_queries, start.elapsed())
            }
            SolveResult::Sat => {}
        }
        iterations += 1;
        let distinguishing_input = model_values(&q_solver, &q_copy1.inputs);
        let observed_output = oracle.query(&distinguishing_input);
        oracle_queries += 1;

        let p_constrained = instantiate_sharing_keys(locked, &mut p_solver, &p_keys);
        constrain_equal_const(&mut p_solver, &p_constrained.inputs, &distinguishing_input);
        constrain_equal_const(&mut p_solver, &p_constrained.outputs, &observed_output);

        let q_constrained = instantiate_sharing_keys(locked, &mut q_solver, &q_copy2.keys);
        constrain_equal_const(&mut q_solver, &q_constrained.inputs, &distinguishing_input);
        constrain_equal_const(&mut q_solver, &q_constrained.outputs, &observed_output);
    }
}

/// Future-work extension from § VI-D: partitions the key space into
/// `2^partition_bits` regions by fixing the first key bits and runs key
/// confirmation on each region in turn, returning the first confirmed key.
///
/// This demonstrates how ϕ can be used to parallelise the SAT attack; the
/// regions are independent and [`crate::parallel::parallel_partitioned_key_search`]
/// dispatches them to worker threads.
///
/// `partition_bits` is clamped to the key width.  Requesting 64 or more
/// effective partition bits would mean enumerating ≥ 2⁶⁴ regions (and
/// overflows the region counter), so such calls return immediately with
/// `completed: false` instead of panicking or silently wrapping.
pub fn partitioned_key_search(
    locked: &Netlist,
    oracle: &dyn Oracle,
    partition_bits: usize,
    config: &KeyConfirmationConfig,
) -> KeyConfirmationResult {
    let width = locked.num_key_inputs();
    let partition_bits = partition_bits.min(width);
    let start = Instant::now();
    if partition_bits >= u64::BITS as usize {
        return KeyConfirmationResult {
            key: None,
            completed: false,
            iterations: 0,
            oracle_queries: 0,
            elapsed: start.elapsed(),
        };
    }
    let mut total_iterations = 0usize;
    let mut total_queries = 0usize;
    for region in 0..(1u64 << partition_bits) {
        let result = key_confirmation_with_predicate(locked, oracle, config, |solver, keys| {
            for (bit, &lit) in keys.iter().enumerate().take(partition_bits) {
                let value = (region >> bit) & 1 == 1;
                solver.add_clause([if value { lit } else { !lit }]);
            }
        });
        total_iterations += result.iterations;
        total_queries += result.oracle_queries;
        if result.key.is_some() {
            return KeyConfirmationResult {
                iterations: total_iterations,
                oracle_queries: total_queries,
                elapsed: start.elapsed(),
                ..result
            };
        }
        if !result.completed {
            return KeyConfirmationResult {
                key: None,
                completed: false,
                iterations: total_iterations,
                oracle_queries: total_queries,
                elapsed: start.elapsed(),
            };
        }
    }
    KeyConfirmationResult {
        key: None,
        completed: true,
        iterations: total_iterations,
        oracle_queries: total_queries,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use locking::{LockingScheme, SfllHd, TtLock, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};

    fn locked_sfll(h: usize) -> (netlist::Netlist, locking::LockedCircuit) {
        let original = generate(&RandomCircuitSpec::new("kc", 12, 3, 80));
        let locked = SfllHd::new(10, h)
            .with_seed(23)
            .lock(&original)
            .expect("lock");
        (original, locked)
    }

    #[test]
    fn confirms_the_correct_key_among_decoys() {
        let (original, locked) = locked_sfll(1);
        let oracle = SimOracle::new(original);
        let shortlist = vec![
            locked.key.complement(),
            Key::zeros(10),
            locked.key.clone(),
            Key::from_pattern(0x2A5, 10),
        ];
        let result = key_confirmation(
            &locked.locked,
            &oracle,
            &shortlist,
            &KeyConfirmationConfig::default(),
        );
        assert!(result.completed);
        assert_eq!(result.key, Some(locked.key.clone()));
    }

    #[test]
    fn returns_bottom_when_no_shortlisted_key_is_correct() {
        let (original, locked) = locked_sfll(0);
        let oracle = SimOracle::new(original);
        let shortlist = vec![locked.key.complement(), Key::zeros(10)];
        let result = key_confirmation(
            &locked.locked,
            &oracle,
            &shortlist,
            &KeyConfirmationConfig::default(),
        );
        assert!(result.completed);
        assert_eq!(result.key, None, "wrong guesses must be detected");
    }

    #[test]
    fn works_on_sat_resilient_ttlock_circuits() {
        let original = generate(&RandomCircuitSpec::new("kc_tt", 10, 2, 60));
        let locked = TtLock::new(8).with_seed(5).lock(&original).expect("lock");
        let oracle = SimOracle::new(original);
        let shortlist = vec![locked.key.clone(), locked.key.complement()];
        let result = key_confirmation(
            &locked.locked,
            &oracle,
            &shortlist,
            &KeyConfirmationConfig::default(),
        );
        assert!(result.completed);
        assert_eq!(result.key, Some(locked.key.clone()));
        // Point-function schemes can force many distinguishing inputs, but the
        // candidate pool itself never leaves the two-element shortlist.
        assert!(
            result.oracle_queries <= 1 << locked.key.len(),
            "used {} queries",
            result.oracle_queries
        );
    }

    #[test]
    fn predicate_true_behaves_like_the_sat_attack() {
        let original = generate(&RandomCircuitSpec::new("kc_free", 8, 2, 50));
        let locked = SfllHd::new(4, 0)
            .with_seed(9)
            .lock(&original)
            .expect("lock");
        let oracle = SimOracle::new(original.clone());
        let result = key_confirmation_with_predicate(
            &locked.locked,
            &oracle,
            &KeyConfirmationConfig::default(),
            |_, _| {},
        );
        assert!(result.completed);
        let key = result.key.expect("key recovered");
        assert!(locked.key_is_functionally_correct(&key, 200, 3));
    }

    #[test]
    fn incremental_and_fresh_confirmation_agree() {
        let (original, locked) = locked_sfll(1);
        let oracle = SimOracle::new(original);
        for shortlist in [
            vec![locked.key.clone(), locked.key.complement()],
            vec![locked.key.complement(), Key::zeros(10)],
            vec![
                Key::zeros(10),
                locked.key.clone(),
                Key::from_pattern(0x155, 10),
            ],
        ] {
            let incremental = key_confirmation(
                &locked.locked,
                &oracle,
                &shortlist,
                &KeyConfirmationConfig::default(),
            );
            let fresh = key_confirmation_fresh(
                &locked.locked,
                &oracle,
                &shortlist,
                &KeyConfirmationConfig::default(),
            );
            assert!(incremental.completed && fresh.completed);
            assert_eq!(
                incremental.key, fresh.key,
                "shortlist {shortlist:?} must confirm the same key"
            );
        }
    }

    #[test]
    fn screened_confirmation_agrees_with_unscreened() {
        let (original, locked) = locked_sfll(1);
        let oracle = SimOracle::new(original);
        let shortlist = vec![
            locked.key.complement(),
            Key::zeros(10),
            locked.key.clone(),
            Key::from_pattern(0x2A5, 10),
        ];
        let plain = key_confirmation(
            &locked.locked,
            &oracle,
            &shortlist,
            &KeyConfirmationConfig::default(),
        );
        let screened_config = KeyConfirmationConfig {
            screen_words: 4,
            ..KeyConfirmationConfig::default()
        };
        let screened = key_confirmation(&locked.locked, &oracle, &shortlist, &screened_config);
        assert!(plain.completed && screened.completed);
        assert_eq!(plain.key, screened.key);
        assert_eq!(screened.key, Some(locked.key.clone()));
    }

    #[test]
    fn screen_rejects_an_all_wrong_shortlist_without_scalar_queries() {
        // XOR locking makes every wrong key diverge on roughly half the
        // input space, so the 256 screen probes refute both decoys and the
        // P/Q loop never starts.
        let original = generate(&RandomCircuitSpec::new("kc_screen", 10, 3, 60));
        let locked = XorLock::new(8).with_seed(7).lock(&original).expect("lock");
        let oracle = SimOracle::new(original);
        let wrong_a = locked.key.complement();
        let mut bits = wrong_a.bits().to_vec();
        bits[0] = !bits[0];
        let wrong_b = Key::new(bits);
        let config = KeyConfirmationConfig {
            screen_words: 4,
            ..KeyConfirmationConfig::default()
        };
        let result = key_confirmation(&locked.locked, &oracle, &[wrong_a, wrong_b], &config);
        assert!(result.completed);
        assert_eq!(result.key, None);
        assert_eq!(result.iterations, 0);
        assert_eq!(result.oracle_queries, 0);
    }

    #[test]
    fn partitioned_search_with_zero_bits_is_plain_confirmation() {
        let original = generate(&RandomCircuitSpec::new("kc_part0", 8, 2, 50));
        let locked = SfllHd::new(4, 0)
            .with_seed(6)
            .lock(&original)
            .expect("lock");
        let oracle = SimOracle::new(original);
        let result = partitioned_key_search(
            &locked.locked,
            &oracle,
            0,
            &KeyConfirmationConfig::default(),
        );
        assert!(result.completed);
        let key = result
            .key
            .expect("single region covers the whole key space");
        assert!(locked.key_is_functionally_correct(&key, 200, 4));
    }

    #[test]
    fn partitioned_search_with_full_width_enumerates_single_keys() {
        // partition_bits == key width: every region pins the entire key, so
        // the search degenerates to trying each key value in turn.
        let original = generate(&RandomCircuitSpec::new("kc_partw", 8, 2, 50));
        let locked = SfllHd::new(3, 0)
            .with_seed(4)
            .lock(&original)
            .expect("lock");
        let oracle = SimOracle::new(original);
        for requested in [3usize, 10] {
            // Requests beyond the width are clamped to it.
            let result = partitioned_key_search(
                &locked.locked,
                &oracle,
                requested,
                &KeyConfirmationConfig::default(),
            );
            assert!(result.completed, "requested {requested}");
            let key = result.key.expect("key recovered");
            assert!(locked.key_is_functionally_correct(&key, 200, 4));
        }
    }

    #[test]
    fn partitioned_search_refuses_unenumerable_partitions() {
        // 64 effective partition bits would overflow `1u64 << bits`; the
        // search must return a clean unfinished result instead.
        let (locked, original) = crate::test_fixtures::wide_key_circuit_and_original();
        let oracle = SimOracle::new(original);
        for bits in [64usize, 65, usize::MAX] {
            let result =
                partitioned_key_search(&locked, &oracle, bits, &KeyConfirmationConfig::default());
            assert!(!result.completed, "bits {bits}");
            assert_eq!(result.key, None);
            assert_eq!(result.iterations, 0);
            assert_eq!(result.oracle_queries, 0);
        }
    }

    #[test]
    fn partitioned_search_finds_the_key() {
        let original = generate(&RandomCircuitSpec::new("kc_part", 8, 2, 50));
        let locked = SfllHd::new(5, 0)
            .with_seed(2)
            .lock(&original)
            .expect("lock");
        let oracle = SimOracle::new(original);
        let result = partitioned_key_search(
            &locked.locked,
            &oracle,
            2,
            &KeyConfirmationConfig::default(),
        );
        assert!(result.completed);
        let key = result.key.expect("key recovered");
        assert!(locked.key_is_functionally_correct(&key, 200, 4));
    }
}
