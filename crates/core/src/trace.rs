//! A hand-rolled flight recorder: structured spans, per-phase duration
//! histograms and Chrome-trace/Prometheus export, with zero dependencies.
//!
//! The attack stack is instrumented at its hot phases — DIP iterations and
//! solver calls ([`crate::session::AttackSession`]), oracle queries
//! ([`crate::parallel::CachingOracle`], [`crate::dist::SyncingOracle`]),
//! region drains ([`crate::parallel::drain_regions`]), service job
//! lifecycles ([`crate::service::AttackService`]) and the SAT solver's
//! maintenance checkpoints (via [`sat::Solver::set_checkpoint_hook`]).  All
//! of it funnels through this module:
//!
//! * [`span`] opens a phase and records it when the guard drops.  While
//!   tracing is disabled (the default) a span is one relaxed atomic load —
//!   no clock is read, nothing is allocated, nothing is locked — so
//!   instrumented code paths are perturbation-free: solver and attack
//!   trajectories never depend on the recorder's state either way, because
//!   nothing in the engine reads the recorded data back.
//! * Completed spans land in a bounded per-thread ring buffer (flight
//!   recorder semantics: the newest [`RING_CAPACITY`] events per thread are
//!   kept, older ones are dropped and counted) and in a per-phase
//!   [`PhaseHistogram`] with fixed log-spaced buckets — bounded memory
//!   however long the process runs, like the service's latency reservoir.
//! * [`chrome_trace_json`] renders the event rings as Chrome trace-event
//!   JSON (load it at <https://ui.perfetto.dev> or `chrome://tracing`);
//!   [`metric_samples`] renders the histograms as
//!   [`MetricSample`]s; [`prometheus_text`] renders any sample vector in
//!   Prometheus text exposition format.
//!
//! The recorder is process-global: one switch, one event store, one
//! histogram table.  That is deliberate — a process is one attack farm
//! worker, one `fall-serve` server or one benchmark run, and the consumers
//! (the `trace` wire op, `bench_smoke --trace-out`, the CI validator) all
//! want the whole process's picture.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::service::MetricSample;

/// Events kept per thread; the flight recorder drops (and counts) the
/// oldest beyond this.
pub const RING_CAPACITY: usize = 4096;

/// Histogram buckets: bucket `i` counts durations whose microsecond value
/// has bit length `i` (i.e. `[2^(i-1), 2^i)`; bucket 0 is exactly 0 µs),
/// clamped into the last bucket beyond `2^38` µs (~76 h).
pub const HISTOGRAM_BUCKETS: usize = 40;

/// One completed span, in microseconds since the recorder's epoch.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Phase name (a static label like `dip_iteration`).
    pub name: &'static str,
    /// Recorder-assigned thread id (dense, starts at 0).
    pub tid: u64,
    /// Start offset from the recorder epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// Bounded per-phase duration distribution: fixed power-of-two buckets plus
/// count/total/max, so memory stays constant regardless of span volume.
#[derive(Clone, Debug)]
pub struct PhaseHistogram {
    /// Span count per log-spaced bucket (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total spans recorded.
    pub count: u64,
    /// Sum of all span durations, microseconds.
    pub total_us: u64,
    /// Longest span, microseconds.
    pub max_us: u64,
}

impl Default for PhaseHistogram {
    fn default() -> PhaseHistogram {
        PhaseHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }
}

impl PhaseHistogram {
    fn record(&mut self, dur_us: u64) {
        let bucket = (64 - u64::leading_zeros(dur_us) as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_us += dur_us;
        self.max_us = self.max_us.max(dur_us);
    }

    /// An upper bound on the `q`-quantile duration (the top edge of the
    /// bucket where the cumulative count crosses `q * count`), microseconds.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i }.min(self.max_us);
            }
        }
        self.max_us
    }
}

/// One thread's bounded event store.
#[derive(Default)]
struct Ring {
    events: Vec<TraceEvent>,
    /// Next overwrite position once `events` reached capacity.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }
}

/// The process-global recorder state.
struct Registry {
    /// Every thread's ring, kept alive past thread exit.
    rings: Mutex<Vec<Arc<Mutex<Ring>>>>,
    histograms: Mutex<BTreeMap<&'static str, PhaseHistogram>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        rings: Mutex::new(Vec::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// The recorder's monotonic epoch: every timestamp is an offset from the
/// first clock read of the process, so traces start near t = 0.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

thread_local! {
    /// This thread's `(tid, ring)`, registered globally on first use.
    static THREAD_RING: (u64, Arc<Mutex<Ring>>) = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(Mutex::new(Ring::default()));
        registry()
            .rings
            .lock()
            .expect("trace ring registry")
            .push(Arc::clone(&ring));
        (tid, ring)
    };
}

/// Turns the recorder on or off.  Off (the default) makes every
/// instrumentation point a single relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the recorder is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every recorded event and histogram (the enabled state is kept).
pub fn reset() {
    let registry = registry();
    for ring in registry.rings.lock().expect("trace ring registry").iter() {
        let mut ring = ring.lock().expect("trace ring");
        ring.events.clear();
        ring.head = 0;
        ring.dropped = 0;
    }
    registry
        .histograms
        .lock()
        .expect("trace histograms")
        .clear();
}

/// An open phase; the span is recorded when the guard drops.  Obtained from
/// [`span`].
#[must_use = "a span records on drop; bind it (`let _span = ...`) for the phase's lifetime"]
pub struct Span {
    name: &'static str,
    start_us: u64,
    armed: bool,
}

/// Opens a span for the phase `name`.  When tracing is disabled this is a
/// single relaxed atomic load and the returned guard is inert.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name,
            start_us: 0,
            armed: false,
        };
    }
    Span {
        name,
        start_us: now_us(),
        armed: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            let end_us = now_us();
            record_completed(self.name, self.start_us, end_us.max(self.start_us));
        }
    }
}

/// Records an already-measured phase (used by the solver checkpoint hook,
/// which times phases itself).  The event is backdated so it ends now.
pub fn record_duration(name: &'static str, duration: Duration) {
    if !enabled() {
        return;
    }
    let end_us = now_us();
    let dur_us = duration.as_micros() as u64;
    record_event(name, end_us.saturating_sub(dur_us), dur_us);
}

fn record_completed(name: &'static str, start_us: u64, end_us: u64) {
    record_event(name, start_us, end_us - start_us);
}

fn record_event(name: &'static str, start_us: u64, dur_us: u64) {
    THREAD_RING.with(|(tid, ring)| {
        ring.lock().expect("trace ring").push(TraceEvent {
            name,
            tid: *tid,
            start_us,
            dur_us,
        });
    });
    registry()
        .histograms
        .lock()
        .expect("trace histograms")
        .entry(name)
        .or_default()
        .record(dur_us);
}

/// A snapshot of every recorded event, sorted by start time.
pub fn events() -> Vec<TraceEvent> {
    let mut all = Vec::new();
    for ring in registry().rings.lock().expect("trace ring registry").iter() {
        all.extend(ring.lock().expect("trace ring").events.iter().cloned());
    }
    all.sort_by_key(|event| (event.start_us, event.tid));
    all
}

/// Events dropped by ring-buffer overwrite since the last [`reset`].
pub fn events_dropped() -> u64 {
    registry()
        .rings
        .lock()
        .expect("trace ring registry")
        .iter()
        .map(|ring| ring.lock().expect("trace ring").dropped)
        .sum()
}

/// A snapshot of the per-phase histograms, sorted by phase name.
pub fn histograms() -> Vec<(&'static str, PhaseHistogram)> {
    registry()
        .histograms
        .lock()
        .expect("trace histograms")
        .iter()
        .map(|(&name, histogram)| (name, histogram.clone()))
        .collect()
}

/// The recorded span count of one phase (0 when the phase never ran).
pub fn phase_count(name: &str) -> u64 {
    registry()
        .histograms
        .lock()
        .expect("trace histograms")
        .get(name)
        .map_or(0, |histogram| histogram.count)
}

/// Renders the per-phase histograms as metric samples:
/// `trace_<phase>_spans`, `trace_<phase>_total_us`, `trace_<phase>_p50_us`,
/// `trace_<phase>_p99_us` and `trace_<phase>_max_us` per phase, plus
/// `trace_events_dropped`.
pub fn metric_samples() -> Vec<MetricSample> {
    let mut samples = Vec::new();
    let mut push = |name: String, value: f64| {
        samples.push(MetricSample {
            name,
            value,
            higher_is_better: false,
        });
    };
    for (name, histogram) in histograms() {
        push(format!("trace_{name}_spans"), histogram.count as f64);
        push(format!("trace_{name}_total_us"), histogram.total_us as f64);
        push(
            format!("trace_{name}_p50_us"),
            histogram.quantile_upper_us(0.50) as f64,
        );
        push(
            format!("trace_{name}_p99_us"),
            histogram.quantile_upper_us(0.99) as f64,
        );
        push(format!("trace_{name}_max_us"), histogram.max_us as f64);
    }
    push("trace_events_dropped".to_string(), events_dropped() as f64);
    samples
}

/// Renders the recorded events as Chrome trace-event JSON ("X" complete
/// events, microsecond timestamps) — loadable in Perfetto or
/// `chrome://tracing` as-is.
pub fn chrome_trace_json() -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, event) in events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"fall\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            escape_json(event.name),
            event.tid,
            event.start_us,
            event.dur_us
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders metric samples in the Prometheus text exposition format (one
/// `# TYPE` line plus one value line per sample).  Sample names are already
/// `snake_case` identifiers; anything else is mangled to `_`.
pub fn prometheus_text(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for sample in samples {
        let name: String = sample
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let name = if name.starts_with(|c: char| c.is_ascii_digit()) {
            format!("_{name}")
        } else {
            name
        };
        let _ = writeln!(out, "# TYPE {name} gauge");
        if sample.value == sample.value.trunc() && sample.value.abs() < 9.0e15 {
            let _ = writeln!(out, "{name} {}", sample.value as i64);
        } else {
            let _ = writeln!(out, "{name} {}", sample.value);
        }
    }
    out
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global, so the tests here share it; they run
    /// under one lock to keep their snapshots disjoint.
    fn with_recorder<R>(test: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        set_enabled(true);
        reset();
        let result = test();
        set_enabled(false);
        reset();
        result
    }

    #[test]
    fn disabled_spans_record_nothing() {
        with_recorder(|| {
            set_enabled(false);
            {
                let _span = span("idle_phase");
            }
            assert_eq!(phase_count("idle_phase"), 0);
            assert!(events().iter().all(|e| e.name != "idle_phase"));
        });
    }

    #[test]
    fn spans_land_in_events_and_histograms() {
        with_recorder(|| {
            {
                let _outer = span("outer");
                let _inner = span("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
            assert_eq!(phase_count("outer"), 1);
            assert_eq!(phase_count("inner"), 1);
            let events = events();
            let outer = events.iter().find(|e| e.name == "outer").expect("outer");
            let inner = events.iter().find(|e| e.name == "inner").expect("inner");
            // Guard discipline nests spans: inner is contained in outer.
            assert!(inner.start_us >= outer.start_us);
            assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
            let histogram = histograms()
                .into_iter()
                .find(|(name, _)| *name == "outer")
                .map(|(_, h)| h)
                .expect("outer histogram");
            assert_eq!(histogram.count, 1);
            assert!(histogram.total_us >= 2_000, "{histogram:?}");
            assert!(histogram.quantile_upper_us(0.5) >= histogram.max_us / 2);
        });
    }

    #[test]
    fn record_duration_backdates() {
        with_recorder(|| {
            record_duration("measured", Duration::from_micros(1500));
            let events = events();
            let event = events.iter().find(|e| e.name == "measured").expect("event");
            assert_eq!(event.dur_us, 1500);
            assert_eq!(phase_count("measured"), 1);
        });
    }

    #[test]
    fn ring_is_bounded() {
        with_recorder(|| {
            for _ in 0..(RING_CAPACITY + 10) {
                record_duration("flood", Duration::ZERO);
            }
            assert_eq!(phase_count("flood"), (RING_CAPACITY + 10) as u64);
            assert!(events().len() <= RING_CAPACITY);
            assert!(events_dropped() >= 10);
        });
    }

    #[test]
    fn chrome_json_is_well_formed() {
        with_recorder(|| {
            {
                let _span = span("phase_a");
            }
            let json = chrome_trace_json();
            assert!(json.starts_with("{\"traceEvents\":["));
            assert!(json.contains("\"name\":\"phase_a\""));
            assert!(json.contains("\"ph\":\"X\""));
            assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        });
    }

    #[test]
    fn prometheus_rendering() {
        let samples = vec![
            MetricSample {
                name: "serve_jobs_completed".to_string(),
                value: 32.0,
                higher_is_better: false,
            },
            MetricSample {
                name: "oracle_cache_hit_rate".to_string(),
                value: 0.41,
                higher_is_better: true,
            },
        ];
        let text = prometheus_text(&samples);
        assert!(text.contains("# TYPE serve_jobs_completed gauge\nserve_jobs_completed 32\n"));
        assert!(text.contains("oracle_cache_hit_rate 0.41\n"));
    }

    #[test]
    fn quantiles_cover_the_distribution() {
        let mut histogram = PhaseHistogram::default();
        for us in [1u64, 2, 4, 100, 10_000] {
            histogram.record(us);
        }
        assert_eq!(histogram.count, 5);
        assert_eq!(histogram.total_us, 10_107);
        assert_eq!(histogram.max_us, 10_000);
        assert!(histogram.quantile_upper_us(0.99) >= 10_000 / 2);
        assert!(histogram.quantile_upper_us(0.5) <= 128);
        assert_eq!(PhaseHistogram::default().quantile_upper_us(0.5), 0);
    }
}
