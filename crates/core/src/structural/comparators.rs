//! Comparator identification (§ III-A).
//!
//! The functionality restoration unit compares each key input with one
//! circuit input.  After synthesis those comparators survive as *some* gate
//! whose support is exactly one key input and one circuit input and whose
//! function is XOR or XNOR of the two.  Finding them gives the attacker the
//! pairing between key bits and protected circuit inputs.

use netlist::analysis::support_signature;
use netlist::cnf::{encode_cones, PinBinding};
use netlist::{Netlist, NodeId};
use sat::{SolveResult, Solver};

/// A comparator gate pairing a key input with a circuit input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Comparator {
    /// The gate computing the comparison.
    pub node: NodeId,
    /// The circuit (primary) input being compared.
    pub input: NodeId,
    /// The key input being compared.
    pub key: NodeId,
    /// `true` if the gate computes XNOR(input, key), `false` for XOR.
    pub xnor: bool,
}

/// Finds all comparator gates by exhaustive cofactor enumeration.
///
/// For every gate whose support is exactly one circuit input and one key
/// input, the gate's local function is evaluated on all four assignments of
/// that pair; gates equivalent to XOR or XNOR are reported.
///
/// This is the fast default.  [`find_comparators_sat`] performs the same
/// check with SAT queries, matching the paper's implementation, and is used
/// for the ablation benchmark.
pub fn find_comparators(netlist: &Netlist) -> Vec<Comparator> {
    candidate_pairs(netlist)
        .into_iter()
        .filter_map(|(node, input, key)| {
            classify_by_simulation(netlist, node, input, key).map(|xnor| Comparator {
                node,
                input,
                key,
                xnor,
            })
        })
        .collect()
}

/// Finds all comparator gates, using SAT-based functional equivalence checks
/// (the method described in the paper).
pub fn find_comparators_sat(netlist: &Netlist) -> Vec<Comparator> {
    candidate_pairs(netlist)
        .into_iter()
        .filter_map(|(node, input, key)| {
            classify_by_sat(netlist, node, input, key).map(|xnor| Comparator {
                node,
                input,
                key,
                xnor,
            })
        })
        .collect()
}

/// Gates whose support is exactly {one primary input, one key input}.
fn candidate_pairs(netlist: &Netlist) -> Vec<(NodeId, NodeId, NodeId)> {
    let supports = support_signature(netlist);
    let mut result = Vec::new();
    for node in netlist.gate_ids() {
        let support = &supports[node.index()];
        if support.len() != 2 {
            continue;
        }
        let mut primary = None;
        let mut key = None;
        for &id in support {
            if netlist.is_key_input(id) {
                key = Some(id);
            } else {
                primary = Some(id);
            }
        }
        if let (Some(input), Some(key)) = (primary, key) {
            result.push((node, input, key));
        }
    }
    result
}

/// Evaluates the gate's function on the four assignments of `(input, key)`;
/// returns `Some(true)` for XNOR, `Some(false)` for XOR, `None` otherwise.
fn classify_by_simulation(
    netlist: &Netlist,
    node: NodeId,
    input: NodeId,
    key: NodeId,
) -> Option<bool> {
    let truth: Vec<bool> = [(false, false), (true, false), (false, true), (true, true)]
        .iter()
        .map(|&(iv, kv)| netlist.evaluate_node(node, &[(input, iv), (key, kv)]))
        .collect();
    if truth == [false, true, true, false] {
        Some(false) // XOR
    } else if truth == [true, false, false, true] {
        Some(true) // XNOR
    } else {
        None
    }
}

/// SAT-based variant of [`classify_by_simulation`]: checks validity of
/// `cktfn(node) <=> input XOR key` (and the XNOR variant) with two
/// unsatisfiability queries each.
fn classify_by_sat(netlist: &Netlist, node: NodeId, input: NodeId, key: NodeId) -> Option<bool> {
    let mut solver = Solver::new();
    let enc = encode_cones(netlist, &mut solver, &[node], &PinBinding::default());
    let node_lit = enc.lit(node);
    let input_pos = netlist
        .inputs()
        .iter()
        .position(|&i| i == input)
        .expect("primary input");
    let key_pos = netlist
        .key_inputs()
        .iter()
        .position(|&k| k == key)
        .expect("key input");
    let x = enc.inputs[input_pos];
    let k = enc.keys[key_pos];

    // node <=> x XOR k is valid iff (node XOR (x XOR k)) is unsatisfiable.
    let is_xor = {
        let diff = xor3_lit(&mut solver, node_lit, x, k);
        solver.solve_with(&[diff]) == SolveResult::Unsat
    };
    if is_xor {
        return Some(false);
    }
    let is_xnor = {
        let diff = xor3_lit(&mut solver, !node_lit, x, k);
        solver.solve_with(&[diff]) == SolveResult::Unsat
    };
    if is_xnor {
        return Some(true);
    }
    None
}

/// Returns a literal equivalent to `a XOR b XOR c`.
fn xor3_lit(solver: &mut Solver, a: sat::Lit, b: sat::Lit, c: sat::Lit) -> sat::Lit {
    let ab = xor2_lit(solver, a, b);
    xor2_lit(solver, ab, c)
}

fn xor2_lit(solver: &mut Solver, a: sat::Lit, b: sat::Lit) -> sat::Lit {
    let y = sat::Lit::positive(solver.new_var());
    solver.add_clause([!a, !b, !y]);
    solver.add_clause([a, b, !y]);
    solver.add_clause([a, !b, y]);
    solver.add_clause([!a, b, y]);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use locking::{LockingScheme, SfllHd, TtLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::strash::strash;
    use netlist::GateKind;

    #[test]
    fn finds_explicit_xnor_comparators() {
        let mut nl = Netlist::new("cmp");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k0 = nl.add_key_input("k0");
        let k1 = nl.add_key_input("k1");
        let c0 = nl.add_gate("c0", GateKind::Xnor, &[a, k0]);
        let c1 = nl.add_gate("c1", GateKind::Xor, &[b, k1]);
        let not_cmp = nl.add_gate("nc", GateKind::And, &[a, k0]);
        let out = nl.add_gate("out", GateKind::And, &[c0, c1, not_cmp]);
        nl.add_output("out", out);

        let found = find_comparators(&nl);
        assert_eq!(found.len(), 2);
        let xnor = found.iter().find(|c| c.node == c0).expect("c0 found");
        assert!(xnor.xnor);
        assert_eq!(xnor.input, a);
        assert_eq!(xnor.key, k0);
        let xor = found.iter().find(|c| c.node == c1).expect("c1 found");
        assert!(!xor.xnor);
        assert_eq!(xor.input, b);
        assert_eq!(xor.key, k1);
    }

    #[test]
    fn sat_and_simulation_agree() {
        let original = generate(&RandomCircuitSpec::new("cmp_sat", 8, 2, 40));
        let locked = TtLock::new(6).with_seed(5).lock(&original).expect("lock");
        let optimized = strash(&locked.locked);
        let mut by_sim = find_comparators(&optimized);
        let mut by_sat = find_comparators_sat(&optimized);
        by_sim.sort_by_key(|c| c.node);
        by_sat.sort_by_key(|c| c.node);
        assert_eq!(by_sim, by_sat);
        assert!(!by_sim.is_empty());
    }

    #[test]
    fn every_key_input_is_paired_after_sfll_locking_and_strash() {
        let original = generate(&RandomCircuitSpec::new("cmp_sfll", 10, 2, 60));
        let locked = SfllHd::new(8, 1)
            .with_seed(3)
            .lock(&original)
            .expect("lock");
        let optimized = strash(&locked.locked);
        let comparators = find_comparators(&optimized);
        let mut paired_keys: Vec<NodeId> = comparators.iter().map(|c| c.key).collect();
        paired_keys.sort_unstable();
        paired_keys.dedup();
        assert_eq!(
            paired_keys.len(),
            8,
            "every key input should appear in some comparator"
        );
    }

    #[test]
    fn gates_touching_two_circuit_inputs_are_ignored() {
        let mut nl = Netlist::new("no_cmp");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::Xor, &[a, b]);
        nl.add_output("g", g);
        assert!(find_comparators(&nl).is_empty());
    }
}
