//! Structural analyses (§ III): comparator identification and support-set
//! matching.

mod comparators;
mod support_match;

pub use comparators::{find_comparators, find_comparators_sat, Comparator};
pub use support_match::{find_candidates, CandidateNodes};
