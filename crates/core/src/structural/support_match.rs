//! Support-set matching (§ III-B).
//!
//! The circuit inputs appearing in the identified comparators are exactly the
//! inputs of the protected cube.  Any gate whose support equals that input
//! set (and contains no key inputs) is a candidate for the output of the cube
//! stripping unit.

use std::collections::BTreeSet;

use netlist::analysis::support_signature;
use netlist::{Netlist, NodeId};

use super::Comparator;

/// The result of support-set matching.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CandidateNodes {
    /// `Comp_x`: the circuit inputs appearing in comparators, i.e. the
    /// suspected protected-cube inputs, in ascending node order.
    pub protected_inputs: Vec<NodeId>,
    /// The key inputs paired with `protected_inputs` (same order).
    pub paired_keys: Vec<NodeId>,
    /// Gates whose support is exactly `protected_inputs`: candidate outputs
    /// of the cube stripping unit, in topological order.
    pub candidates: Vec<NodeId>,
}

impl CandidateNodes {
    /// Number of suspected key bits (`m = |Comp|`).
    pub fn key_width(&self) -> usize {
        self.protected_inputs.len()
    }
}

/// Computes `Comp_x` from the comparators and returns every gate whose support
/// is exactly that set of circuit inputs.
///
/// Comparator gates themselves (and anything depending on key inputs) are
/// never candidates because their support contains key inputs.
pub fn find_candidates(netlist: &Netlist, comparators: &[Comparator]) -> CandidateNodes {
    // Deduplicate the (input, key) pairing; keep the first key seen per input.
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for cmp in comparators {
        if !pairs.iter().any(|&(input, _)| input == cmp.input) {
            pairs.push((cmp.input, cmp.key));
        }
    }
    pairs.sort_by_key(|&(input, _)| input);
    let protected_inputs: Vec<NodeId> = pairs.iter().map(|&(i, _)| i).collect();
    let paired_keys: Vec<NodeId> = pairs.iter().map(|&(_, k)| k).collect();
    let target: BTreeSet<NodeId> = protected_inputs.iter().copied().collect();

    let mut candidates = Vec::new();
    if !target.is_empty() {
        let supports = support_signature(netlist);
        for node in netlist.gate_ids() {
            if supports[node.index()] == target {
                candidates.push(node);
            }
        }
    }

    CandidateNodes {
        protected_inputs,
        paired_keys,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structural::find_comparators;
    use locking::{LockingScheme, SfllHd, TtLock};
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::strash::strash;
    use netlist::GateKind;

    #[test]
    fn candidates_have_exactly_the_protected_support() {
        let original = generate(&RandomCircuitSpec::new("sm", 10, 2, 60));
        let locked = SfllHd::new(6, 1)
            .with_seed(11)
            .lock(&original)
            .expect("lock");
        let optimized = strash(&locked.locked);
        let comparators = find_comparators(&optimized);
        let result = find_candidates(&optimized, &comparators);
        assert_eq!(result.key_width(), 6);
        assert!(
            !result.candidates.is_empty(),
            "the cube stripper output must be among the candidates"
        );
        // Every candidate must not depend on key inputs.
        for &c in &result.candidates {
            let s = netlist::analysis::support(&optimized, c);
            assert!(s.keys.is_empty());
            assert_eq!(s.primary.len(), 6);
        }
    }

    #[test]
    fn ttlock_candidates_contain_the_cube_gate() {
        let original = generate(&RandomCircuitSpec::new("sm_tt", 8, 2, 50));
        let locked = TtLock::new(5).with_seed(9).lock(&original).expect("lock");
        let optimized = strash(&locked.locked);
        let comparators = find_comparators(&optimized);
        let result = find_candidates(&optimized, &comparators);
        assert_eq!(result.protected_inputs.len(), 5);
        assert_eq!(result.paired_keys.len(), 5);
        assert!(!result.candidates.is_empty());
    }

    #[test]
    fn no_comparators_means_no_candidates() {
        let mut nl = Netlist::new("plain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, &[a, b]);
        nl.add_output("g", g);
        let result = find_candidates(&nl, &[]);
        assert!(result.candidates.is_empty());
        assert_eq!(result.key_width(), 0);
    }

    #[test]
    fn duplicate_comparators_for_one_input_are_deduplicated() {
        let mut nl = Netlist::new("dup");
        let a = nl.add_input("a");
        let k0 = nl.add_key_input("k0");
        let c0 = nl.add_gate("c0", GateKind::Xnor, &[a, k0]);
        let c1 = nl.add_gate("c1", GateKind::Xor, &[a, k0]);
        let o = nl.add_gate("o", GateKind::And, &[c0, c1]);
        nl.add_output("o", o);
        let comparators = find_comparators(&nl);
        assert_eq!(comparators.len(), 2);
        let result = find_candidates(&nl, &comparators);
        assert_eq!(result.protected_inputs, vec![a]);
        assert_eq!(result.paired_keys.len(), 1);
    }
}
