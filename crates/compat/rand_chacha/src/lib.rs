//! Offline, API-compatible stand-in for `rand_chacha` (see
//! `crates/compat/README.md`).
//!
//! [`ChaCha8Rng`] keeps the name the workspace imports but is implemented as
//! xoshiro256++ seeded through SplitMix64 — deterministic and statistically
//! solid for workload generation, *not* a cryptographic ChaCha stream.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Deterministic seeded PRNG (xoshiro256++ under the ChaCha8Rng name).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> ChaCha8Rng {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = state;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        ChaCha8Rng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&ones), "ones = {ones}");
    }
}
