//! Size-capped line-delimited framing.
//!
//! One frame is one UTF-8 line terminated by `\n` (a trailing `\r` is
//! stripped, so telnet-style peers work).  The reader owns its buffer and
//! enforces a maximum frame length: a peer that streams an endless line — by
//! malice or by accident — produces a clean [`LineError::Oversized`] instead
//! of unbounded buffering, which is what lets `fall-serve` answer such a
//! connection with a typed error and close it.

use std::io::{self, Read, Write};

/// Errors produced by [`LineReader::read_line`].
#[derive(Debug)]
pub enum LineError {
    /// The underlying transport failed.
    Io(io::Error),
    /// A frame exceeded the reader's configured maximum length.  The
    /// connection is no longer framed correctly and should be closed after
    /// reporting the error.
    Oversized {
        /// The configured maximum frame length in bytes.
        limit: usize,
    },
    /// A complete frame was read but is not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::Io(error) => write!(f, "transport error: {error}"),
            LineError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            LineError::InvalidUtf8 => write!(f, "frame is not valid UTF-8"),
        }
    }
}

impl std::error::Error for LineError {}

impl From<io::Error> for LineError {
    fn from(error: io::Error) -> LineError {
        LineError::Io(error)
    }
}

/// A buffered frame reader over any byte transport.
pub struct LineReader<R> {
    inner: R,
    /// Bytes read from the transport but not yet returned as frames.
    buffer: Vec<u8>,
    /// Start of unconsumed data within `buffer`.
    start: usize,
    max_frame: usize,
}

impl<R: Read> LineReader<R> {
    /// Wraps a transport, capping frames at `max_frame` bytes (terminator
    /// excluded).
    pub fn new(inner: R, max_frame: usize) -> LineReader<R> {
        LineReader {
            inner,
            buffer: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Reads the next frame.
    ///
    /// Returns `Ok(None)` at a clean end of stream.  A final unterminated
    /// frame (data followed by EOF without `\n`) is returned as a frame, so
    /// piped input without a trailing newline still parses.
    ///
    /// # Errors
    ///
    /// [`LineError::Oversized`] once more than the configured maximum is
    /// buffered without a terminator — after this the stream is desynchronised
    /// and should be closed.  [`LineError::InvalidUtf8`] for a non-UTF-8
    /// frame; the stream itself is still framed correctly, so a server may
    /// report it and continue.
    pub fn read_line(&mut self) -> Result<Option<String>, LineError> {
        loop {
            if let Some(offset) = self.buffer[self.start..].iter().position(|&b| b == b'\n') {
                let line_end = self.start + offset;
                let frame = self.take_frame(line_end, line_end + 1);
                return frame.map(Some);
            }
            let pending = self.buffer.len() - self.start;
            if pending > self.max_frame {
                return Err(LineError::Oversized {
                    limit: self.max_frame,
                });
            }
            // Compact (drop consumed bytes) before growing the buffer.
            if self.start > 0 {
                self.buffer.drain(..self.start);
                self.start = 0;
            }
            let mut chunk = [0u8; 4096];
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                if pending == 0 {
                    return Ok(None);
                }
                let line_end = self.buffer.len();
                let frame = self.take_frame(line_end, line_end);
                return frame.map(Some);
            }
            self.buffer.extend_from_slice(&chunk[..n]);
        }
    }

    /// Cuts `buffer[start..line_end]` out as a frame (stripping one trailing
    /// `\r`) and advances the cursor to `next_start`.
    fn take_frame(&mut self, line_end: usize, next_start: usize) -> Result<String, LineError> {
        let mut end = line_end;
        if end > self.start && self.buffer[end - 1] == b'\r' {
            end -= 1;
        }
        if end - self.start > self.max_frame {
            return Err(LineError::Oversized {
                limit: self.max_frame,
            });
        }
        let frame = std::str::from_utf8(&self.buffer[self.start..end])
            .map(str::to_string)
            .map_err(|_| LineError::InvalidUtf8);
        // Consume the frame even when it is not UTF-8: the stream is still
        // framed correctly, so the next call must see the *next* line.
        self.start = next_start;
        frame
    }
}

/// Writes one frame: the line, a `\n` terminator, and a flush (protocol
/// messages must not sit in a buffer while the peer waits).
///
/// # Panics
///
/// Panics if `line` contains a newline — that would silently split one
/// message into two frames.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_line(writer: &mut impl Write, line: &str) -> io::Result<()> {
    assert!(
        !line.contains('\n'),
        "a frame must be a single line; serialise messages compactly"
    );
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_split_on_newlines() {
        let data = b"first\nsecond\r\nthird".to_vec();
        let mut reader = LineReader::new(&data[..], 1024);
        assert_eq!(reader.read_line().expect("first"), Some("first".into()));
        assert_eq!(reader.read_line().expect("second"), Some("second".into()));
        assert_eq!(
            reader.read_line().expect("unterminated tail"),
            Some("third".into())
        );
        assert_eq!(reader.read_line().expect("eof"), None);
        assert_eq!(reader.read_line().expect("eof is sticky"), None);
    }

    #[test]
    fn empty_lines_are_frames() {
        let data = b"\n\nx\n".to_vec();
        let mut reader = LineReader::new(&data[..], 16);
        assert_eq!(reader.read_line().expect("1"), Some(String::new()));
        assert_eq!(reader.read_line().expect("2"), Some(String::new()));
        assert_eq!(reader.read_line().expect("3"), Some("x".into()));
        assert_eq!(reader.read_line().expect("eof"), None);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let data = vec![b'a'; 10_000];
        let mut reader = LineReader::new(&data[..], 64);
        assert!(matches!(
            reader.read_line(),
            Err(LineError::Oversized { limit: 64 })
        ));
    }

    #[test]
    fn oversized_terminated_frames_are_rejected_too() {
        // A line that fits in one 4096-byte read chunk but exceeds the cap
        // must still be rejected.
        let mut data = vec![b'a'; 100];
        data.push(b'\n');
        let mut reader = LineReader::new(&data[..], 64);
        assert!(matches!(
            reader.read_line(),
            Err(LineError::Oversized { limit: 64 })
        ));
    }

    #[test]
    fn invalid_utf8_is_reported_and_skipped() {
        let data = b"\xff\xfe\nok\n".to_vec();
        let mut reader = LineReader::new(&data[..], 64);
        assert!(matches!(reader.read_line(), Err(LineError::InvalidUtf8)));
        assert_eq!(reader.read_line().expect("next"), Some("ok".into()));
    }

    #[test]
    fn write_line_appends_terminator() {
        let mut out = Vec::new();
        write_line(&mut out, "hello").expect("write");
        assert_eq!(out, b"hello\n");
    }

    #[test]
    #[should_panic(expected = "single line")]
    fn write_line_rejects_embedded_newlines() {
        let mut out = Vec::new();
        let _ = write_line(&mut out, "two\nframes");
    }
}
