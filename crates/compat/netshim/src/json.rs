//! A minimal JSON document type: strict parsing, deterministic printing.
//!
//! [`Value`] plays the role `serde_json::Value` plays in an online build.
//! Objects preserve no duplicate keys (the last wins, as in every mainstream
//! JSON library) and serialise in insertion order, so a message built
//! programmatically round-trips byte-for-byte — which keeps protocol tests
//! simple and lets golden strings live in documentation.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.  Keys are sorted (`BTreeMap`), so serialisation is
    /// deterministic regardless of construction order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with an exact
    /// `u64` representation.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Member lookup: `Some(&value)` when `self` is an object containing
    /// `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    /// Parses a JSON document.  The whole input must be one value (trailing
    /// non-whitespace is an error), nesting depth is bounded, and only valid
    /// escapes are accepted.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut parser = Parser {
            rest: text,
            depth: 0,
        };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.rest.is_empty() {
            Ok(value)
        } else {
            Err(format!("trailing content at {:?}", parser.context()))
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl fmt::Display for Value {
    /// Serialises the document compactly (no added whitespace, no newlines),
    /// so one `Value` is always one protocol line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Maximum nesting depth accepted by the parser: deep enough for any real
/// protocol message, shallow enough that hostile input cannot overflow the
/// stack.
const MAX_DEPTH: usize = 64;

struct Parser<'t> {
    rest: &'t str,
    depth: usize,
}

impl<'t> Parser<'t> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start_matches([' ', '\t', '\n', '\r']);
    }

    fn context(&self) -> String {
        self.rest.chars().take(24).collect()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(format!("expected {c:?} at {:?}", self.context())),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.rest.chars().next() {
            None => Err("unexpected end of input".to_string()),
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::String(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(format!("unexpected character at {:?}", self.context())),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        match self.rest.strip_prefix(word) {
            Some(rest) => {
                self.rest = rest;
                Ok(value)
            }
            None => Err(format!("expected {word:?} at {:?}", self.context())),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.rest.starts_with('}') {
            self.rest = &self.rest[1..];
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            if self.rest.starts_with(',') {
                self.rest = &self.rest[1..];
            } else {
                self.expect('}')?;
                self.depth -= 1;
                return Ok(Value::Object(map));
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.rest.starts_with(']') {
            self.rest = &self.rest[1..];
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.rest.starts_with(',') {
                self.rest = &self.rest[1..];
            } else {
                self.expect(']')?;
                self.depth -= 1;
                return Ok(Value::Array(items));
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars
                                .next()
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            code = code * 16
                                + h.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {h:?} in \\u escape"))?;
                        }
                        // Surrogates (and only surrogates) are not valid
                        // `char`s; map them to the replacement character
                        // rather than rejecting the whole document.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some((_, other)) => return Err(format!("invalid escape \\{other}")),
                    None => break,
                },
                c if (c as u32) < 0x20 => return Err("raw control character in string".to_string()),
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let end = self
            .rest
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(self.rest.len());
        let (token, rest) = self.rest.split_at(end);
        let value: f64 = token
            .parse()
            .map_err(|_| format!("invalid number {token:?}"))?;
        if !value.is_finite() {
            return Err(format!("non-finite number {token:?}"));
        }
        self.rest = rest;
        Ok(Value::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_shape() {
        let doc = Value::object([
            ("null", Value::Null),
            ("yes", Value::Bool(true)),
            ("n", Value::Number(42.0)),
            ("frac", Value::Number(1.5)),
            ("s", Value::from("line\n\"quoted\"\\slash")),
            (
                "arr",
                Value::Array(vec![Value::Number(1.0), Value::from("two"), Value::Null]),
            ),
            ("obj", Value::object([("k", Value::from(3u64))])),
        ]);
        let text = doc.to_string();
        assert!(!text.contains('\n'), "one value is one line: {text:?}");
        assert_eq!(Value::parse(&text).expect("round trip"), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = Value::parse(" { \"a\" : [ 1 , \"\\u0041\\t\" ] } ").expect("parse");
        assert_eq!(
            doc.get("a").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_str(),
            Some("A\t")
        );
    }

    #[test]
    fn accessors_discriminate() {
        let doc = Value::parse("{\"n\": 7, \"s\": \"x\", \"b\": false}").expect("parse");
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(doc.get("n").unwrap().as_str(), None);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(1.5).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "\"bad \\x escape\"",
            "1 2",
            "{\"a\":1} trailing",
            "\"raw\u{1}control\"",
            "nan",
            "1e999",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let doc = Value::parse("{\"a\": 1, \"a\": 2}").expect("parse");
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(2));
    }
}
