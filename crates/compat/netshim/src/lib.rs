//! Offline stand-in for the networking/serialisation stack used by
//! `fall-serve`.
//!
//! The build environment has no access to crates.io, so the pieces a network
//! service would normally pull in — `serde_json` for message bodies and an
//! async framework (or at least a framing codec) for the transport — are
//! vendored here as the minimal subsets the workspace actually needs:
//!
//! * [`json::Value`] — a dynamically-typed JSON document with a strict
//!   parser and a deterministic serialiser.  It covers the full JSON data
//!   model (null, booleans, numbers, strings with escapes, arrays, objects)
//!   but none of serde's derive machinery: protocol types in `fall-serve`
//!   convert to and from `Value` by hand.
//! * [`mod@line`] — size-capped line-delimited framing over any
//!   [`std::io::Read`]/[`std::io::Write`] transport.  One frame is one UTF-8
//!   line; a reader enforces a maximum frame length so a malicious or broken
//!   peer cannot make the server buffer unbounded input.
//!
//! The shim is transport-agnostic on purpose: the same framing runs over
//! [`std::net::TcpStream`] in production, over in-memory pipes in tests, and
//! could run over OS pipes for the planned multi-process engine.  Blocking
//! I/O plus a thread per connection is entirely adequate for the session
//! server's concurrency level and keeps the code free of an async runtime.

#![deny(missing_docs)]

pub mod json;
pub mod line;

pub use json::Value;
pub use line::{write_line, LineError, LineReader};
