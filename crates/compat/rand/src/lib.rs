//! Offline, API-compatible stand-in for the subset of the `rand` crate used
//! by this workspace (see `crates/compat/README.md`).
//!
//! Only the pieces the workspace actually calls are provided: the [`Rng`]
//! extension trait with `gen`, `gen_range` and `gen_bool`, the
//! [`SeedableRng::seed_from_u64`] constructor, and
//! [`seq::SliceRandom`] with `shuffle` and `choose`.  The distributions are
//! deterministic and uniform enough for workload generation; they make no
//! attempt to match the bit streams of the real crate.

#![deny(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the role of
/// `Standard: Distribution<T>` in the real crate).
pub trait SampleValue {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl SampleValue for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleValue for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl SampleValue for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws one value from `range` (uniform up to negligible modulo bias).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: std::ops::Range<$t>,
            ) -> $t {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of an inferred type.
    fn gen<T: SampleValue>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random operations on slices.
pub mod seq {
    use crate::{Rng, RngCore};

    /// The subset of the real crate's `SliceRandom`: in-place shuffling and
    /// uniform element choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// One-stop import mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SampleUniform, SampleValue, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(7);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        use seq::SliceRandom;
        let mut rng = Counter(9);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
