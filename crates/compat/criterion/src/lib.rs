//! Offline, API-compatible stand-in for the subset of `criterion` used by
//! this workspace (see `crates/compat/README.md`).
//!
//! It keeps the source-level API of criterion 0.5 — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `BenchmarkId`, the `criterion_group!`
//! and `criterion_main!` macros — and performs honest wall-clock
//! measurements: a warm-up phase followed by a timed sampling phase, with
//! mean/min per-iteration times printed to stdout.  There are no plots,
//! statistics files or regression reports.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a `Criterion` from the command line (`cargo bench -- <filter>`).
    pub fn from_args() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { filter }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
            _criterion: std::marker::PhantomData,
        }
    }
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one label.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: std::marker::PhantomData<&'c mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(report) => println!(
                "{full:<60} time: [mean {:>12?}  min {:>12?}  samples {}]",
                report.mean, report.min, report.samples
            ),
            None => println!("{full:<60} (no measurement: Bencher::iter never called)"),
        }
    }
}

struct Report {
    mean: Duration,
    min: Duration,
    samples: usize,
}

/// Measures a closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Times repeated executions of `f` and records mean/min durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_up_end = Instant::now() + self.warm_up_time;
        loop {
            black_box(f());
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        // Measurement: collect samples until both the sample target and the
        // time budget are satisfied (whichever lets us stop first once the
        // minimum of 1 sample exists).
        let started = Instant::now();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        while samples.len() < self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
            if started.elapsed() >= self.measurement_time && !samples.is_empty() {
                break;
            }
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().copied().min().unwrap_or_default();
        self.report = Some(Report {
            mean,
            min,
            samples: samples.len(),
        });
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("attack", 42);
        assert_eq!(id.label, "attack/42");
    }
}
