//! Structural validation of the flight recorder's Chrome trace export: a
//! small SAT attack runs with tracing armed, and the resulting document must
//! be valid JSON in the trace-event dialect Perfetto loads — complete (`X`)
//! events with non-negative timestamps, and per-thread spans that nest
//! properly.  This is the trace half of the CI observability gate (`ci.sh`
//! runs this test explicitly); the metric half is bench_smoke's baseline.
//!
//! Tracing state is process-global, so this lives in its own integration
//! test binary: no other test can enable the recorder or record spans while
//! this one measures.

use std::collections::BTreeMap;

use fall::oracle::SimOracle;
use fall::sat_attack::{sat_attack, SatAttackConfig};
use fall::trace;
use locking::{LockingScheme, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use netshim::Value;

// One test function, not several: the recorder is process-global, and the
// disabled-stays-empty check below must not race an armed run on another
// test thread.
#[test]
fn chrome_trace_export_is_structurally_valid() {
    let original = generate(&RandomCircuitSpec::new("trace_validate", 12, 3, 100));
    let locked = XorLock::new(8).with_seed(3).lock(&original).expect("lock");
    let oracle = SimOracle::new(original);

    // The zero-perturbation contract's observable half: with the recorder
    // off (the default), running an attack records nothing at all.
    let untraced = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
    assert!(untraced.is_success());
    assert_eq!(trace::phase_count("dip_iteration"), 0);
    assert!(trace::events().is_empty());

    trace::reset();
    trace::set_enabled(true);
    let result = sat_attack(&locked.locked, &oracle, &SatAttackConfig::default());
    trace::set_enabled(false);
    assert!(result.is_success(), "attack under tracing succeeds");
    assert_eq!(trace::events_dropped(), 0, "ring must not overflow");

    let json = trace::chrome_trace_json();
    let document = Value::parse(&json).expect("trace is valid JSON");
    assert_eq!(
        document.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = document
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "the traced attack recorded events");

    // Every event is a complete ("X") event with the members Perfetto needs;
    // `as_u64` succeeding doubles as the non-negativity check.
    let mut by_tid: BTreeMap<u64, Vec<(u64, u64, String)>> = BTreeMap::new();
    for event in events {
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .expect("event name");
        assert_eq!(
            event.get("ph").and_then(Value::as_str),
            Some("X"),
            "complete events only: {event}"
        );
        assert_eq!(event.get("pid").and_then(Value::as_u64), Some(1));
        let tid = event.get("tid").and_then(Value::as_u64).expect("tid");
        let ts = event
            .get("ts")
            .and_then(Value::as_u64)
            .expect("non-negative ts");
        let dur = event
            .get("dur")
            .and_then(Value::as_u64)
            .expect("non-negative dur");
        by_tid
            .entry(tid)
            .or_default()
            .push((ts, dur, name.to_string()));
    }

    // The attack's phase structure survives the export: one span per DIP
    // round plus the final UNSAT round, one per oracle query, and the
    // solver's "solve" spans are all present.
    let count = |wanted: &str| {
        by_tid
            .values()
            .flatten()
            .filter(|(_, _, name)| name == wanted)
            .count()
    };
    assert_eq!(count("dip_iteration"), result.iterations + 1);
    assert_eq!(count("oracle_query"), result.oracle_queries);
    assert!(count("solve") > 0);

    // Per-thread spans must nest: sorted by start (ties: longest first),
    // each span either starts after the enclosing one ended or lies inside
    // it.  Checkpoint events are backdated from durations the solver
    // measured itself, so a couple of microseconds of rounding slack is
    // allowed; anything beyond that is a genuine mis-nesting.
    const SLACK_US: u64 = 2;
    for (tid, spans) in &mut by_tid {
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64, &str)> = Vec::new();
        for (ts, dur, name) in spans.iter() {
            let end = ts + dur;
            while let Some(&(_, open_end, _)) = stack.last() {
                if *ts >= open_end {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_ts, open_end, open_name)) = stack.last() {
                assert!(
                    *ts + SLACK_US >= open_ts && end <= open_end + SLACK_US,
                    "span {name} [{ts}, {end}) on tid {tid} overlaps \
                     {open_name} [{open_ts}, {open_end}) without nesting"
                );
            }
            stack.push((*ts, end, name));
        }
    }
}
