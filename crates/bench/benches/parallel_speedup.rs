//! Worker-scaling of the parallel attack engine on Table 1 workloads.
//!
//! Measures the serial `partitioned_key_search` against
//! `parallel_partitioned_key_search` at 1/2/4/8 workers on scaled Table 1
//! circuits, plus the solver portfolio against the single-config SAT attack.
//! Speedups are wall-clock and therefore bounded by the machine's core
//! count: on a single-core host all worker counts collapse to roughly the
//! serial time plus scheduling overhead.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fall::key_confirmation::{partitioned_key_search, KeyConfirmationConfig};
use fall::oracle::SimOracle;
use fall::parallel::{parallel_partitioned_key_search, portfolio_sat_attack};
use fall::sat_attack::{sat_attack, SatAttackConfig};
use fall_bench::{HdPolicy, LockCase, Scale, TABLE1_CIRCUITS};
use locking::{LockingScheme, XorLock};
use sat::SolverConfig;

const PARTITION_BITS: [usize; 2] = [2, 3];

fn bench_parallel_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup");
    group
        .sample_size(3)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_secs(2));

    // Table 1 workloads: the first two circuits (10-bit keys at the scaled
    // size) locked with the TTLock/HD0 policy, the paper's
    // SAT-attack-resilient case where partitioned confirmation matters most.
    for spec in &TABLE1_CIRCUITS[..2] {
        let case = LockCase::build(spec, HdPolicy::Zero, Scale::Scaled);
        let oracle = SimOracle::new(case.locked.original.clone());
        let config = KeyConfirmationConfig::default();

        for partition_bits in PARTITION_BITS {
            let label = format!("{}_hd0_{}keys_p{partition_bits}", case.spec.name, case.keys);
            group.bench_with_input(BenchmarkId::new("serial", &label), &case, |b, case| {
                b.iter(|| {
                    partitioned_key_search(&case.locked.locked, &oracle, partition_bits, &config)
                })
            });
            for workers in [1usize, 2, 4, 8] {
                group.bench_with_input(
                    BenchmarkId::new(format!("parallel_{workers}w"), &label),
                    &case,
                    |b, case| {
                        b.iter(|| {
                            parallel_partitioned_key_search(
                                &case.locked.locked,
                                &oracle,
                                partition_bits,
                                workers,
                                &config,
                            )
                        })
                    },
                );
            }
        }
    }

    // Portfolio: diverse solver configurations racing one SAT-attack
    // instance, against the default single-solver attack.
    let original = netlist::random::generate(&netlist::random::RandomCircuitSpec::new(
        "ps_portfolio",
        12,
        3,
        120,
    ));
    let locked = XorLock::new(10).with_seed(1).lock(&original).expect("lock");
    let oracle = SimOracle::new(original);
    group.bench_function("sat_attack_single", |b| {
        b.iter(|| sat_attack(&locked.locked, &oracle, &SatAttackConfig::default()))
    });
    for racers in [2usize, 4] {
        group.bench_function(format!("sat_attack_portfolio_{racers}"), |b| {
            b.iter(|| {
                portfolio_sat_attack(
                    &locked.locked,
                    &oracle,
                    &SolverConfig::portfolio(racers),
                    &SatAttackConfig::default(),
                )
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_parallel_speedup);
criterion_main!(benches);
