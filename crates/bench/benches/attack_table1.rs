//! Table I workload benchmark: generating, locking and structurally hashing
//! one benchmark circuit under all four Hamming-distance policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fall_bench::{table1_rows, HdPolicy, LockCase, Scale, TABLE1_CIRCUITS};
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_table1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    // One row of Table I = lock one circuit with all four policies and count
    // gates after structural hashing.
    for spec in &TABLE1_CIRCUITS[..3] {
        group.bench_with_input(
            BenchmarkId::new("table1_row", spec.name),
            spec,
            |b, spec| b.iter(|| table1_rows(std::slice::from_ref(spec), Scale::Scaled)),
        );
    }

    group.bench_function("lock_case_build_hd_quarter", |b| {
        b.iter(|| LockCase::build(&TABLE1_CIRCUITS[3], HdPolicy::QuarterOfKeys, Scale::Scaled))
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
