//! Benchmarks of the functional analyses (§ IV) on cube-stripping nodes,
//! including the SlidingWindow-vs-Distance2H ablation as `h` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fall::equivalence::candidate_equals_strip;
use fall::functional::{analyze_unateness, distance_2h, sliding_window, CubeAssignment};
use netlist::hamming::hamming_distance_equals_const;
use netlist::sim::pattern_to_bits;
use netlist::strash::strash;
use netlist::{Netlist, NodeId};
use std::time::Duration;

/// Builds a strashed cube-stripping circuit strip_h(cube) over `m` inputs.
fn stripper(m: usize, cube: u64, h: usize) -> (Netlist, NodeId, CubeAssignment) {
    let mut nl = Netlist::new("bench_strip");
    let xs: Vec<NodeId> = (0..m).map(|i| nl.add_input(format!("x{i}"))).collect();
    let cube_bits = pattern_to_bits(cube, m);
    let out = hamming_distance_equals_const(&mut nl, &xs, &cube_bits, h);
    nl.add_output("strip", out);
    let optimized = strash(&nl);
    let root = optimized.outputs()[0].1;
    let assignment: CubeAssignment = optimized
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, (cube >> i) & 1 == 1))
        .collect();
    (optimized, root, assignment)
}

fn bench_functional(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_analyses");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let (nl0, root0, _) = stripper(16, 0xA53C, 0);
    group.bench_function("analyze_unateness_m16", |b| {
        b.iter(|| analyze_unateness(&nl0, root0).expect("cube"))
    });

    for h in [1usize, 2, 4] {
        let (nl, root, _) = stripper(16, 0x5AC3, h);
        group.bench_with_input(BenchmarkId::new("sliding_window_m16", h), &h, |b, &h| {
            b.iter(|| sliding_window(&nl, root, h).expect("cube"))
        });
        group.bench_with_input(BenchmarkId::new("distance_2h_m16", h), &h, |b, &h| {
            b.iter(|| distance_2h(&nl, root, h).expect("cube"))
        });
    }

    let (nl, root, cube) = stripper(16, 0x1234, 2);
    group.bench_function("equivalence_check_m16_h2", |b| {
        b.iter(|| assert!(candidate_equals_strip(&nl, root, &cube, 2)))
    });

    group.finish();
}

criterion_group!(benches, bench_functional);
criterion_main!(benches);
