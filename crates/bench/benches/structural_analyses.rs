//! Benchmarks of the structural analyses (§ III), including the
//! simulation-vs-SAT comparator-identification ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use fall::structural::{find_candidates, find_comparators, find_comparators_sat};
use locking::{LockingScheme, SfllHd};
use netlist::random::{generate, RandomCircuitSpec};
use std::time::Duration;

fn bench_structural(c: &mut Criterion) {
    let mut group = c.benchmark_group("structural_analyses");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let original = generate(&RandomCircuitSpec::new("struct_bench", 24, 6, 300));
    let locked = SfllHd::new(16, 2)
        .with_seed(1)
        .lock(&original)
        .expect("lock")
        .optimized();
    let netlist = &locked.locked;

    group.bench_function("comparator_id_simulation", |b| {
        b.iter(|| find_comparators(netlist))
    });
    group.bench_function("comparator_id_sat_ablation", |b| {
        b.iter(|| find_comparators_sat(netlist))
    });

    let comparators = find_comparators(netlist);
    group.bench_function("support_set_matching", |b| {
        b.iter(|| find_candidates(netlist, &comparators))
    });

    group.finish();
}

criterion_group!(benches, bench_structural);
criterion_main!(benches);
