//! Figure 6 workload benchmark: key confirmation (seeded with a shortlist)
//! versus the plain SAT attack on the same locked instance.

use criterion::{criterion_group, criterion_main, Criterion};
use fall::key_confirmation::{key_confirmation, KeyConfirmationConfig};
use fall::oracle::SimOracle;
use fall::sat_attack::{sat_attack, SatAttackConfig};
use locking::{LockingScheme, SfllHd};
use netlist::random::{generate, RandomCircuitSpec};
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_fig6");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let original = generate(&RandomCircuitSpec::new("fig6", 14, 3, 150));
    let locked = SfllHd::new(8, 1)
        .with_seed(5)
        .lock(&original)
        .expect("lock")
        .optimized();
    let oracle = SimOracle::new(original);
    let shortlist = vec![locked.key.clone(), locked.key.complement()];

    group.bench_function("key_confirmation_sfll_hd1_8_keys", |b| {
        b.iter(|| {
            key_confirmation(
                &locked.locked,
                &oracle,
                &shortlist,
                &KeyConfirmationConfig::default(),
            )
        })
    });

    group.bench_function("sat_attack_sfll_hd1_8_keys", |b| {
        b.iter(|| sat_attack(&locked.locked, &oracle, &SatAttackConfig::default()))
    });

    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
