//! Incremental `AttackSession` versus fresh-solver-per-query ablation.
//!
//! Measures the DIP loop of the SAT attack and the key-confirmation loop on
//! the Figure 5 / Figure 6 workloads, with session reuse (`sat_attack`,
//! `key_confirmation`) against the pre-session baselines that allocate fresh
//! solvers and re-encode the netlist per query (`sat_attack_fresh`,
//! `key_confirmation_fresh`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fall::key_confirmation::{key_confirmation, key_confirmation_fresh, KeyConfirmationConfig};
use fall::oracle::SimOracle;
use fall::sat_attack::{sat_attack, sat_attack_fresh, SatAttackConfig};
use fall_bench::{HdPolicy, LockCase, Scale, TABLE1_CIRCUITS};
use locking::{LockingScheme, SfllHd, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use std::time::Duration;

fn bench_incremental_vs_fresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_vs_fresh");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    // --- DIP loop: the Figure 5 SAT-attack workloads -----------------------
    let original = generate(&RandomCircuitSpec::new("ivf_xor", 12, 3, 120));
    let oracle = SimOracle::new(original.clone());
    let xor_locked = XorLock::new(10).with_seed(1).lock(&original).expect("lock");
    group.bench_function("sat_attack_session/xor_lock_10_keys", |b| {
        b.iter(|| sat_attack(&xor_locked.locked, &oracle, &SatAttackConfig::default()))
    });
    group.bench_function("sat_attack_fresh/xor_lock_10_keys", |b| {
        b.iter(|| sat_attack_fresh(&xor_locked.locked, &oracle, &SatAttackConfig::default()))
    });

    let sfll_small = SfllHd::new(6, 0)
        .with_seed(2)
        .lock(&original)
        .expect("lock");
    group.bench_function("sat_attack_session/sfll_hd0_6_keys", |b| {
        b.iter(|| sat_attack(&sfll_small.locked, &oracle, &SatAttackConfig::default()))
    });
    group.bench_function("sat_attack_fresh/sfll_hd0_6_keys", |b| {
        b.iter(|| sat_attack_fresh(&sfll_small.locked, &oracle, &SatAttackConfig::default()))
    });

    // --- Key confirmation: the Figure 6 / Table 1 workloads ----------------
    let fig6_original = generate(&RandomCircuitSpec::new("ivf_fig6", 14, 3, 150));
    let fig6_locked = SfllHd::new(8, 1)
        .with_seed(5)
        .lock(&fig6_original)
        .expect("lock")
        .optimized();
    let fig6_oracle = SimOracle::new(fig6_original);
    let shortlist = vec![fig6_locked.key.clone(), fig6_locked.key.complement()];
    group.bench_function("key_confirmation_session/sfll_hd1_8_keys", |b| {
        b.iter(|| {
            key_confirmation(
                &fig6_locked.locked,
                &fig6_oracle,
                &shortlist,
                &KeyConfirmationConfig::default(),
            )
        })
    });
    group.bench_function("key_confirmation_fresh/sfll_hd1_8_keys", |b| {
        b.iter(|| {
            key_confirmation_fresh(
                &fig6_locked.locked,
                &fig6_oracle,
                &shortlist,
                &KeyConfirmationConfig::default(),
            )
        })
    });

    // A Table 1 grid case (first circuit, h = m/8) confirmed from a
    // three-entry shortlist, as the FALL pipeline would produce.
    let case = LockCase::build(&TABLE1_CIRCUITS[0], HdPolicy::EighthOfKeys, Scale::Scaled);
    let case_oracle = SimOracle::new(case.locked.original.clone());
    let case_shortlist = vec![
        case.locked.key.complement(),
        case.locked.key.clone(),
        locking::Key::zeros(case.keys),
    ];
    let label = format!("{}_h{}", case.spec.name, case.h);
    group.bench_with_input(
        BenchmarkId::new("key_confirmation_session", &label),
        &case,
        |b, case| {
            b.iter(|| {
                key_confirmation(
                    &case.locked.locked,
                    &case_oracle,
                    &case_shortlist,
                    &KeyConfirmationConfig::default(),
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("key_confirmation_fresh", &label),
        &case,
        |b, case| {
            b.iter(|| {
                key_confirmation_fresh(
                    &case.locked.locked,
                    &case_oracle,
                    &case_shortlist,
                    &KeyConfirmationConfig::default(),
                )
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_incremental_vs_fresh);
criterion_main!(benches);
