//! Micro-benchmarks for the netlist substrate: generation, structural
//! hashing, simulation and CNF encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use netlist::cnf::{encode, PinBinding};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::strash::strash;
use sat::Solver;
use std::time::Duration;

fn bench_netlist_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_ops");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let spec = RandomCircuitSpec::new("bench_mid", 32, 8, 800);
    let circuit = generate(&spec);

    group.bench_function("generate_800_gates", |b| b.iter(|| generate(&spec)));

    group.bench_function("strash_800_gates", |b| b.iter(|| strash(&circuit)));

    let inputs = vec![0xDEAD_BEEF_F00D_1234u64; 32];
    group.bench_function("simulate_64_patterns", |b| {
        b.iter(|| circuit.evaluate_words(&inputs, &[]).expect("widths match"))
    });

    group.bench_function("tseitin_encode", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            encode(&circuit, &mut solver, &PinBinding::default())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_netlist_ops);
criterion_main!(benches);
