//! Benchmarks of the locking schemes themselves (lock + structural hash),
//! the workload behind the Table I gate counts.

use criterion::{criterion_group, criterion_main, Criterion};
use locking::{AntiSat, LockingScheme, SarLock, SfllHd, TtLock, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use std::time::Duration;

fn bench_locking(c: &mut Criterion) {
    let mut group = c.benchmark_group("locking_schemes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let original = generate(&RandomCircuitSpec::new("lock_bench", 32, 8, 500));

    group.bench_function("ttlock_16_keys", |b| {
        b.iter(|| TtLock::new(16).lock(&original).expect("lock").optimized())
    });
    group.bench_function("sfll_hd2_16_keys", |b| {
        b.iter(|| {
            SfllHd::new(16, 2)
                .lock(&original)
                .expect("lock")
                .optimized()
        })
    });
    group.bench_function("sfll_hd8_32_keys", |b| {
        b.iter(|| {
            SfllHd::new(32, 8)
                .lock(&original)
                .expect("lock")
                .optimized()
        })
    });
    group.bench_function("sarlock_16_keys", |b| {
        b.iter(|| SarLock::new(16).lock(&original).expect("lock").optimized())
    });
    group.bench_function("antisat_2x16_keys", |b| {
        b.iter(|| AntiSat::new(16).lock(&original).expect("lock").optimized())
    });
    group.bench_function("xor_lock_32_keys", |b| {
        b.iter(|| XorLock::new(32).lock(&original).expect("lock").optimized())
    });

    group.finish();
}

criterion_group!(benches, bench_locking);
criterion_main!(benches);
