//! Micro-benchmarks for the CDCL SAT solver substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sat::{Lit, Solver, Var};
use std::time::Duration;

/// Random 3-SAT at a satisfiable clause/variable ratio.
fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> Vec<Vec<Lit>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| {
                    Lit::new(
                        Var::from_index(rng.gen_range(0..num_vars)),
                        rng.gen::<bool>(),
                    )
                })
                .collect()
        })
        .collect()
}

fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let holes = n - 1;
    let v = |i: usize, j: usize| Lit::positive(Var::from_index(i * holes + j));
    let mut clauses = Vec::new();
    for i in 0..n {
        clauses.push((0..holes).map(|j| v(i, j)).collect());
    }
    for j in 0..holes {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                clauses.push(vec![!v(i1, j), !v(i2, j)]);
            }
        }
    }
    (n * holes, clauses)
}

fn solve(num_vars: usize, clauses: &[Vec<Lit>]) -> sat::SolveResult {
    let mut solver = Solver::new();
    solver.ensure_vars(num_vars);
    for clause in clauses {
        solver.add_clause(clause.iter().copied());
    }
    solver.solve()
}

fn bench_sat_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_solver");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let easy = random_3sat(150, 450, 1);
    group.bench_function("random_3sat_150v_450c", |b| b.iter(|| solve(150, &easy)));

    let hard = random_3sat(100, 420, 2);
    group.bench_function("random_3sat_100v_phase_transition", |b| {
        b.iter(|| solve(100, &hard))
    });

    let (vars, php) = pigeonhole(7);
    group.bench_function("pigeonhole_7_unsat", |b| b.iter(|| solve(vars, &php)));

    group.finish();
}

criterion_group!(benches, bench_sat_solver);
criterion_main!(benches);
