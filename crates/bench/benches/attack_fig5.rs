//! Figure 5 workload benchmark: the per-instance attack runs whose times form
//! the cactus plots (circuit analyses vs the SAT attack).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fall::attack::{fall_attack, FallAttackConfig};
use fall::functional::Analysis;
use fall::oracle::SimOracle;
use fall::sat_attack::{sat_attack, SatAttackConfig};
use fall_bench::{HdPolicy, LockCase, Scale, TABLE1_CIRCUITS};
use locking::{LockingScheme, XorLock};
use netlist::random::{generate, RandomCircuitSpec};
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_fig5");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    // FALL circuit analyses on the first Table I circuit at each Hamming
    // distance policy (the points of the four panels).
    let spec = &TABLE1_CIRCUITS[0];
    for policy in HdPolicy::all() {
        let case = LockCase::build(spec, policy, Scale::Scaled);
        let analysis = if case.h == 0 {
            Analysis::Unateness
        } else if 4 * case.h <= case.keys {
            Analysis::Distance2H
        } else {
            Analysis::SlidingWindow
        };
        let mut config = FallAttackConfig::for_h(case.h);
        config.analyses = Some(vec![analysis]);
        group.bench_with_input(
            BenchmarkId::new("fall_attack", format!("{}_h{}", spec.name, case.h)),
            &case,
            |b, case| b.iter(|| fall_attack(&case.locked.locked, None, &config)),
        );
    }

    // The SAT attack baseline: fast on random XOR locking, slow on SFLL —
    // benchmark the tractable case and a deliberately tiny SFLL key.
    let original = generate(&RandomCircuitSpec::new("fig5_xor", 12, 3, 120));
    let xor_locked = XorLock::new(10).with_seed(1).lock(&original).expect("lock");
    let oracle = SimOracle::new(original.clone());
    group.bench_function("sat_attack_xor_lock_10_keys", |b| {
        b.iter(|| sat_attack(&xor_locked.locked, &oracle, &SatAttackConfig::default()))
    });

    let sfll_small = locking::SfllHd::new(6, 0)
        .with_seed(2)
        .lock(&original)
        .expect("lock");
    group.bench_function("sat_attack_sfll_hd0_6_keys", |b| {
        b.iter(|| sat_attack(&sfll_small.locked, &oracle, &SatAttackConfig::default()))
    });

    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
