//! Experiment harness for the FALL attacks reproduction.
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! (§ VI) on top of the [`fall`], [`locking`] and [`netlist`] crates:
//!
//! * **Table I** — benchmark characteristics (`cargo run -p fall-bench --bin table1`).
//! * **Figure 5** — execution time vs number of benchmarks solved for the
//!   circuit analyses and the SAT attack (`--bin fig5`).
//! * **Figure 6** — key confirmation vs SAT attack execution time (`--bin fig6`).
//! * **§ VI-B headline numbers** — circuits defeated and unique-key rate
//!   (`--bin summary`).
//!
//! Criterion benchmarks live in `benches/`; `incremental_vs_fresh` measures
//! the persistent [`fall::session::AttackSession`] (one solver per attack,
//! cached encodings) against the fresh-solver-per-query ablation baselines
//! on the Figure 5 / Figure 6 workloads.
//!
//! The ISCAS'85/MCNC netlists used by the paper are not redistributable, so
//! the suite substitutes seeded random circuits with the same interface sizes
//! (see `DESIGN.md` for the substitution argument).  By default all binaries
//! run a *scaled* configuration sized for a laptop; pass `--full` for the
//! paper-sized circuits and key widths.

#![deny(missing_docs)]

pub mod report;
pub mod runner;
pub mod suite;

pub use report::{
    cactus_series, fig6_rows, format_fig5, format_fig6, format_headline, format_table1, headline,
    table1_rows, Headline, Metric, MetricReport, Regression, Table1Row,
};
pub use runner::{AttackKind, AttackRecord, Runner, RunnerConfig};
pub use suite::{
    lock_grid, lock_grid_subset, CircuitSpec, HdPolicy, LockCase, Scale, TABLE1_CIRCUITS,
};
