//! Formatting of the paper's tables and figure data series.

use std::collections::BTreeMap;
use std::time::Duration;

use netlist::strash::strash;

use crate::runner::{AttackKind, AttackRecord};
use crate::suite::{CircuitSpec, HdPolicy, LockCase, Scale};

/// One row of Table I: original and SFLL-locked gate counts for a circuit.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Key width.
    pub keys: usize,
    /// Gate count of the (generated) original circuit.
    pub original_gates: usize,
    /// Minimum gate count over the SFLL-locked variants.
    pub sfll_min_gates: usize,
    /// Maximum gate count over the SFLL-locked variants.
    pub sfll_max_gates: usize,
}

/// Builds the Table I rows for a set of circuits at a given scale by locking
/// each circuit with every Hamming-distance policy and counting gates after
/// structural hashing.
pub fn table1_rows(specs: &[CircuitSpec], scale: Scale) -> Vec<Table1Row> {
    specs
        .iter()
        .map(|spec| {
            let effective = spec.at_scale(scale);
            let original = spec.build(scale);
            let original_gates = strash(&original).num_gates();
            let mut min_gates = usize::MAX;
            let mut max_gates = 0usize;
            for policy in HdPolicy::all() {
                let case = LockCase::build(spec, policy, scale);
                let gates = case.locked.locked.num_gates();
                min_gates = min_gates.min(gates);
                max_gates = max_gates.max(gates);
            }
            Table1Row {
                name: effective.name.to_string(),
                inputs: effective.inputs,
                outputs: effective.outputs,
                keys: effective.keys,
                original_gates,
                sfll_min_gates: min_gates,
                sfll_max_gates: max_gates,
            }
        })
        .collect()
}

/// Formats Table I in the paper's column layout.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("ckt        #in  #out  #keys  gates(orig)  gates(SFLL min)  gates(SFLL max)\n");
    out.push_str("---------------------------------------------------------------------------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:>4} {:>5} {:>6} {:>12} {:>16} {:>16}\n",
            row.name,
            row.inputs,
            row.outputs,
            row.keys,
            row.original_gates,
            row.sfll_min_gates,
            row.sfll_max_gates
        ));
    }
    out
}

/// Builds a cactus-plot series (Figure 5): for each solved instance, the
/// cumulative number of benchmarks solved within a time budget.
///
/// Only records with `defeated == true` contribute.  The series is sorted by
/// time, so plotting `(time, index + 1)` reproduces the paper's curves.
pub fn cactus_series(records: &[AttackRecord]) -> Vec<(Duration, usize)> {
    let mut times: Vec<Duration> = records
        .iter()
        .filter(|r| r.defeated)
        .map(|r| r.elapsed)
        .collect();
    times.sort_unstable();
    times
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, i + 1))
        .collect()
}

/// Formats one Figure 5 panel: a cactus series per attack kind.
pub fn format_fig5(panel_label: &str, records: &[AttackRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== Figure 5 panel: {panel_label} ==\n"));
    let mut by_attack: BTreeMap<&'static str, Vec<AttackRecord>> = BTreeMap::new();
    for record in records {
        by_attack
            .entry(record.attack.label())
            .or_default()
            .push(record.clone());
    }
    for (label, group) in by_attack {
        let series = cactus_series(&group);
        let total = group.len();
        out.push_str(&format!(
            "{label}: {} of {} benchmarks solved\n",
            series.len(),
            total
        ));
        for (time, solved) in &series {
            out.push_str(&format!(
                "    {:>10.3}s  {:>3} solved\n",
                time.as_secs_f64(),
                solved
            ));
        }
    }
    out
}

/// Per-circuit mean/standard deviation of execution time for Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Circuit name.
    pub circuit: String,
    /// Mean and standard deviation of key-confirmation time (seconds).
    pub key_confirmation: (f64, f64),
    /// Mean and standard deviation of SAT-attack time (seconds).
    pub sat_attack: (f64, f64),
}

/// Aggregates attack records into Figure 6 rows (mean ± stddev per circuit).
pub fn fig6_rows(records: &[AttackRecord]) -> Vec<Fig6Row> {
    let mut per_circuit: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for record in records {
        let entry = per_circuit.entry(record.circuit.clone()).or_default();
        match record.attack {
            AttackKind::KeyConfirmation => entry.0.push(record.elapsed.as_secs_f64()),
            AttackKind::SatAttack => entry.1.push(record.elapsed.as_secs_f64()),
            _ => {}
        }
    }
    per_circuit
        .into_iter()
        .map(|(circuit, (kc, sa))| Fig6Row {
            circuit,
            key_confirmation: mean_std(&kc),
            sat_attack: mean_std(&sa),
        })
        .collect()
}

/// Formats the Figure 6 comparison.
pub fn format_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str("circuit     key-confirmation mean(s)  ±std     SAT-attack mean(s)  ±std\n");
    out.push_str("--------------------------------------------------------------------------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:>22.3} {:>8.3} {:>20.3} {:>8.3}\n",
            row.circuit,
            row.key_confirmation.0,
            row.key_confirmation.1,
            row.sat_attack.0,
            row.sat_attack.1
        ));
    }
    out
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, variance.sqrt())
}

/// The § VI-B headline numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Headline {
    /// Total locked circuits in the grid.
    pub total: usize,
    /// Circuits defeated by at least one analysis.
    pub defeated: usize,
    /// Defeated circuits for which exactly one key was shortlisted
    /// (oracle-less successes).
    pub unique_key: usize,
}

/// Computes the headline numbers from combined-FALL records (one per locked
/// circuit).
pub fn headline(records: &[AttackRecord]) -> Headline {
    Headline {
        total: records.len(),
        defeated: records.iter().filter(|r| r.defeated).count(),
        unique_key: records
            .iter()
            .filter(|r| r.defeated && r.unique_key)
            .count(),
    }
}

/// Formats the headline comparison with the paper's numbers (65/80 defeated,
/// 58/65 with a unique key).
pub fn format_headline(h: &Headline) -> String {
    let pct = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    format!(
        "circuits defeated: {}/{} ({:.0}%)   [paper: 65/80 (81%)]\n\
         unique key (oracle-less): {}/{} ({:.0}%)   [paper: 58/65 (90%)]\n",
        h.defeated,
        h.total,
        pct(h.defeated, h.total),
        h.unique_key,
        h.defeated,
        pct(h.unique_key, h.defeated)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        attack: AttackKind,
        circuit: &str,
        secs: f64,
        defeated: bool,
        unique: bool,
    ) -> AttackRecord {
        AttackRecord {
            circuit: circuit.to_string(),
            h: 1,
            keys: 8,
            attack,
            defeated,
            unique_key: unique,
            shortlisted: usize::from(defeated),
            elapsed: Duration::from_secs_f64(secs),
        }
    }

    #[test]
    fn cactus_series_is_sorted_and_counts_only_successes() {
        let records = vec![
            record(AttackKind::Distance2H, "a", 3.0, true, true),
            record(AttackKind::Distance2H, "b", 1.0, true, true),
            record(AttackKind::Distance2H, "c", 2.0, false, false),
        ];
        let series = cactus_series(&records);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1, 1);
        assert_eq!(series[1].1, 2);
        assert!(series[0].0 <= series[1].0);
    }

    #[test]
    fn fig6_rows_group_by_circuit() {
        let records = vec![
            record(AttackKind::KeyConfirmation, "c432", 0.5, true, false),
            record(AttackKind::KeyConfirmation, "c432", 1.5, true, false),
            record(AttackKind::SatAttack, "c432", 5.0, false, false),
        ];
        let rows = fig6_rows(&records);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].key_confirmation.0 - 1.0).abs() < 1e-9);
        assert!((rows[0].sat_attack.0 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn headline_counts() {
        let records = vec![
            record(AttackKind::Distance2H, "a", 1.0, true, true),
            record(AttackKind::Distance2H, "b", 1.0, true, false),
            record(AttackKind::Distance2H, "c", 1.0, false, false),
        ];
        let h = headline(&records);
        assert_eq!(
            h,
            Headline {
                total: 3,
                defeated: 2,
                unique_key: 1
            }
        );
        let text = format_headline(&h);
        assert!(text.contains("2/3"));
        assert!(text.contains("paper: 65/80"));
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let rows = vec![Table1Row {
            name: "c432".into(),
            inputs: 36,
            outputs: 7,
            keys: 36,
            original_gates: 209,
            sfll_min_gates: 1119,
            sfll_max_gates: 1155,
        }];
        let text = format_table1(&rows);
        assert!(text.contains("c432"));
        assert!(text.contains("1119"));
    }

    #[test]
    fn fig5_formatting_mentions_each_attack() {
        let records = vec![
            record(AttackKind::SatAttack, "a", 2.0, true, false),
            record(AttackKind::Distance2H, "a", 0.2, true, true),
        ];
        let text = format_fig5("SFLL-HDh where h = m/8", &records);
        assert!(text.contains("SAT-Attack"));
        assert!(text.contains("Distance2H"));
    }
}
