//! Formatting of the paper's tables and figure data series, plus the
//! machine-readable metric reports consumed by the benchmark-regression CI
//! gate (`./ci.sh --bench-smoke`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use netlist::strash::strash;

use crate::runner::{AttackKind, AttackRecord};
use crate::suite::{CircuitSpec, HdPolicy, LockCase, Scale};

/// One row of Table I: original and SFLL-locked gate counts for a circuit.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Key width.
    pub keys: usize,
    /// Gate count of the (generated) original circuit.
    pub original_gates: usize,
    /// Minimum gate count over the SFLL-locked variants.
    pub sfll_min_gates: usize,
    /// Maximum gate count over the SFLL-locked variants.
    pub sfll_max_gates: usize,
}

/// Builds the Table I rows for a set of circuits at a given scale by locking
/// each circuit with every Hamming-distance policy and counting gates after
/// structural hashing.
pub fn table1_rows(specs: &[CircuitSpec], scale: Scale) -> Vec<Table1Row> {
    specs
        .iter()
        .map(|spec| {
            let effective = spec.at_scale(scale);
            let original = spec.build(scale);
            let original_gates = strash(&original).num_gates();
            let mut min_gates = usize::MAX;
            let mut max_gates = 0usize;
            for policy in HdPolicy::all() {
                let case = LockCase::build(spec, policy, scale);
                let gates = case.locked.locked.num_gates();
                min_gates = min_gates.min(gates);
                max_gates = max_gates.max(gates);
            }
            Table1Row {
                name: effective.name.to_string(),
                inputs: effective.inputs,
                outputs: effective.outputs,
                keys: effective.keys,
                original_gates,
                sfll_min_gates: min_gates,
                sfll_max_gates: max_gates,
            }
        })
        .collect()
}

/// Formats Table I in the paper's column layout.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("ckt        #in  #out  #keys  gates(orig)  gates(SFLL min)  gates(SFLL max)\n");
    out.push_str("---------------------------------------------------------------------------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:>4} {:>5} {:>6} {:>12} {:>16} {:>16}\n",
            row.name,
            row.inputs,
            row.outputs,
            row.keys,
            row.original_gates,
            row.sfll_min_gates,
            row.sfll_max_gates
        ));
    }
    out
}

/// Builds a cactus-plot series (Figure 5): for each solved instance, the
/// cumulative number of benchmarks solved within a time budget.
///
/// Only records with `defeated == true` contribute.  The series is sorted by
/// time, so plotting `(time, index + 1)` reproduces the paper's curves.
pub fn cactus_series(records: &[AttackRecord]) -> Vec<(Duration, usize)> {
    let mut times: Vec<Duration> = records
        .iter()
        .filter(|r| r.defeated)
        .map(|r| r.elapsed)
        .collect();
    times.sort_unstable();
    times
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, i + 1))
        .collect()
}

/// Formats one Figure 5 panel: a cactus series per attack kind.
pub fn format_fig5(panel_label: &str, records: &[AttackRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== Figure 5 panel: {panel_label} ==\n"));
    let mut by_attack: BTreeMap<&'static str, Vec<AttackRecord>> = BTreeMap::new();
    for record in records {
        by_attack
            .entry(record.attack.label())
            .or_default()
            .push(record.clone());
    }
    for (label, group) in by_attack {
        let series = cactus_series(&group);
        let total = group.len();
        out.push_str(&format!(
            "{label}: {} of {} benchmarks solved\n",
            series.len(),
            total
        ));
        for (time, solved) in &series {
            out.push_str(&format!(
                "    {:>10.3}s  {:>3} solved\n",
                time.as_secs_f64(),
                solved
            ));
        }
    }
    out
}

/// Per-circuit mean/standard deviation of execution time for Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Circuit name.
    pub circuit: String,
    /// Mean and standard deviation of key-confirmation time (seconds).
    pub key_confirmation: (f64, f64),
    /// Mean and standard deviation of SAT-attack time (seconds).
    pub sat_attack: (f64, f64),
}

/// Aggregates attack records into Figure 6 rows (mean ± stddev per circuit).
pub fn fig6_rows(records: &[AttackRecord]) -> Vec<Fig6Row> {
    let mut per_circuit: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for record in records {
        let entry = per_circuit.entry(record.circuit.clone()).or_default();
        match record.attack {
            AttackKind::KeyConfirmation => entry.0.push(record.elapsed.as_secs_f64()),
            AttackKind::SatAttack => entry.1.push(record.elapsed.as_secs_f64()),
            _ => {}
        }
    }
    per_circuit
        .into_iter()
        .map(|(circuit, (kc, sa))| Fig6Row {
            circuit,
            key_confirmation: mean_std(&kc),
            sat_attack: mean_std(&sa),
        })
        .collect()
}

/// Formats the Figure 6 comparison.
pub fn format_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str("circuit     key-confirmation mean(s)  ±std     SAT-attack mean(s)  ±std\n");
    out.push_str("--------------------------------------------------------------------------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:>22.3} {:>8.3} {:>20.3} {:>8.3}\n",
            row.circuit,
            row.key_confirmation.0,
            row.key_confirmation.1,
            row.sat_attack.0,
            row.sat_attack.1
        ));
    }
    out
}

/// One tracked benchmark metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Metric {
    /// The measured value.
    pub value: f64,
    /// Direction of goodness: `true` if larger values are better (speedups,
    /// cache-hit counts), `false` if smaller values are better (times,
    /// query counts).
    pub higher_is_better: bool,
}

/// A named set of benchmark metrics, serialisable to/from a small JSON
/// dialect (flat object of `name -> {value, higher_is_better}`) so baselines
/// can be checked into the repository and compared in CI without external
/// dependencies.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricReport {
    /// Metrics by name (sorted, so serialisation is deterministic).
    pub metrics: BTreeMap<String, Metric>,
}

/// One metric that got worse than the baseline allows.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Currently measured value (`None` if the metric disappeared).
    pub current: Option<f64>,
    /// `current / baseline` (worsening direction normalised so > 1 is worse).
    pub factor: f64,
}

impl MetricReport {
    /// Creates an empty report.
    pub fn new() -> MetricReport {
        MetricReport::default()
    }

    /// Records a metric (replacing any previous value of the same name).
    pub fn record(&mut self, name: impl Into<String>, value: f64, higher_is_better: bool) {
        self.metrics.insert(
            name.into(),
            Metric {
                value,
                higher_is_better,
            },
        );
    }

    /// Serialises the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, metric)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "  \"{}\": {{\"value\": {}, \"higher_is_better\": {}}}{comma}",
                escape_json(name),
                metric.value,
                metric.higher_is_better
            );
        }
        out.push_str("}\n");
        out
    }

    /// Parses a report serialised by [`MetricReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem encountered.
    pub fn from_json(text: &str) -> Result<MetricReport, String> {
        let mut parser = JsonParser::new(text);
        let mut report = MetricReport::new();
        parser.expect('{')?;
        if parser.peek_is('}') {
            parser.expect('}')?;
            return Ok(report);
        }
        loop {
            let name = parser.string()?;
            parser.expect(':')?;
            parser.expect('{')?;
            let mut value: Option<f64> = None;
            let mut higher: Option<bool> = None;
            loop {
                let field = parser.string()?;
                parser.expect(':')?;
                match field.as_str() {
                    "value" => value = Some(parser.number()?),
                    "higher_is_better" => higher = Some(parser.boolean()?),
                    other => return Err(format!("unknown metric field {other:?}")),
                }
                if !parser.comma_or('}')? {
                    break;
                }
            }
            let value = value.ok_or_else(|| format!("metric {name:?} lacks a value"))?;
            report.record(name, value, higher.unwrap_or(false));
            if !parser.comma_or('}')? {
                break;
            }
        }
        parser.end()?;
        Ok(report)
    }

    /// Compares this (current) report against a baseline.
    ///
    /// A metric regresses when it moved in its *bad* direction by more than
    /// `tolerance` (a fraction: `0.2` allows 20 % worsening), or when a
    /// baseline metric is missing from the current report.  Metrics that only
    /// exist in the current report are ignored, so new measurements can be
    /// added before the baseline is regenerated.
    pub fn regressions_against(&self, baseline: &MetricReport, tolerance: f64) -> Vec<Regression> {
        let mut regressions = Vec::new();
        for (name, base) in &baseline.metrics {
            let Some(current) = self.metrics.get(name) else {
                regressions.push(Regression {
                    name: name.clone(),
                    baseline: base.value,
                    current: None,
                    factor: f64::INFINITY,
                });
                continue;
            };
            // Normalise so `factor > 1` means "worse".
            let factor = if base.higher_is_better {
                if current.value <= 0.0 && base.value <= 0.0 {
                    1.0
                } else if current.value <= 0.0 {
                    f64::INFINITY
                } else {
                    base.value / current.value
                }
            } else if base.value <= 0.0 {
                if current.value <= 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                current.value / base.value
            };
            if factor > 1.0 + tolerance {
                regressions.push(Regression {
                    name: name.clone(),
                    baseline: base.value,
                    current: Some(current.value),
                    factor,
                });
            }
        }
        regressions
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

/// A tiny recursive-descent scanner for the report JSON dialect.
struct JsonParser<'t> {
    rest: &'t str,
}

impl<'t> JsonParser<'t> {
    fn new(text: &'t str) -> JsonParser<'t> {
        JsonParser { rest: text }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.rest.starts_with(c)
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(format!("expected {c:?} at {:?}", self.context())),
        }
    }

    /// The next few characters, for error messages (char-boundary safe).
    fn context(&self) -> String {
        self.rest.chars().take(20).collect()
    }

    /// Consumes either a comma (returning `true`) or the closing character
    /// (returning `false`).
    fn comma_or(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        if self.rest.starts_with(',') {
            self.rest = &self.rest[1..];
            Ok(true)
        } else {
            self.expect(close)?;
            Ok(false)
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, escaped)) => out.push(escaped),
                    None => break,
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(self.rest.len());
        let (token, rest) = self.rest.split_at(end);
        let value: f64 = token
            .parse()
            .map_err(|_| format!("invalid number {token:?}"))?;
        self.rest = rest;
        Ok(value)
    }

    fn boolean(&mut self) -> Result<bool, String> {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix("true") {
            self.rest = rest;
            Ok(true)
        } else if let Some(rest) = self.rest.strip_prefix("false") {
            self.rest = rest;
            Ok(false)
        } else {
            Err(format!("expected boolean at {:?}", self.context()))
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing content {:?}", self.context()))
        }
    }
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, variance.sqrt())
}

/// The § VI-B headline numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Headline {
    /// Total locked circuits in the grid.
    pub total: usize,
    /// Circuits defeated by at least one analysis.
    pub defeated: usize,
    /// Defeated circuits for which exactly one key was shortlisted
    /// (oracle-less successes).
    pub unique_key: usize,
}

/// Computes the headline numbers from combined-FALL records (one per locked
/// circuit).
pub fn headline(records: &[AttackRecord]) -> Headline {
    Headline {
        total: records.len(),
        defeated: records.iter().filter(|r| r.defeated).count(),
        unique_key: records
            .iter()
            .filter(|r| r.defeated && r.unique_key)
            .count(),
    }
}

/// Formats the headline comparison with the paper's numbers (65/80 defeated,
/// 58/65 with a unique key).
pub fn format_headline(h: &Headline) -> String {
    let pct = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    format!(
        "circuits defeated: {}/{} ({:.0}%)   [paper: 65/80 (81%)]\n\
         unique key (oracle-less): {}/{} ({:.0}%)   [paper: 58/65 (90%)]\n",
        h.defeated,
        h.total,
        pct(h.defeated, h.total),
        h.unique_key,
        h.defeated,
        pct(h.unique_key, h.defeated)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        attack: AttackKind,
        circuit: &str,
        secs: f64,
        defeated: bool,
        unique: bool,
    ) -> AttackRecord {
        AttackRecord {
            circuit: circuit.to_string(),
            h: 1,
            keys: 8,
            attack,
            defeated,
            unique_key: unique,
            shortlisted: usize::from(defeated),
            elapsed: Duration::from_secs_f64(secs),
        }
    }

    #[test]
    fn cactus_series_is_sorted_and_counts_only_successes() {
        let records = vec![
            record(AttackKind::Distance2H, "a", 3.0, true, true),
            record(AttackKind::Distance2H, "b", 1.0, true, true),
            record(AttackKind::Distance2H, "c", 2.0, false, false),
        ];
        let series = cactus_series(&records);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1, 1);
        assert_eq!(series[1].1, 2);
        assert!(series[0].0 <= series[1].0);
    }

    #[test]
    fn fig6_rows_group_by_circuit() {
        let records = vec![
            record(AttackKind::KeyConfirmation, "c432", 0.5, true, false),
            record(AttackKind::KeyConfirmation, "c432", 1.5, true, false),
            record(AttackKind::SatAttack, "c432", 5.0, false, false),
        ];
        let rows = fig6_rows(&records);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].key_confirmation.0 - 1.0).abs() < 1e-9);
        assert!((rows[0].sat_attack.0 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn headline_counts() {
        let records = vec![
            record(AttackKind::Distance2H, "a", 1.0, true, true),
            record(AttackKind::Distance2H, "b", 1.0, true, false),
            record(AttackKind::Distance2H, "c", 1.0, false, false),
        ];
        let h = headline(&records);
        assert_eq!(
            h,
            Headline {
                total: 3,
                defeated: 2,
                unique_key: 1
            }
        );
        let text = format_headline(&h);
        assert!(text.contains("2/3"));
        assert!(text.contains("paper: 65/80"));
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let rows = vec![Table1Row {
            name: "c432".into(),
            inputs: 36,
            outputs: 7,
            keys: 36,
            original_gates: 209,
            sfll_min_gates: 1119,
            sfll_max_gates: 1155,
        }];
        let text = format_table1(&rows);
        assert!(text.contains("c432"));
        assert!(text.contains("1119"));
    }

    #[test]
    fn metric_report_round_trips_through_json() {
        let mut report = MetricReport::new();
        report.record("serial_elapsed_s", 1.25, false);
        report.record("parallel_speedup_4w", 2.5, true);
        report.record("oracle_queries", 132.0, false);
        let json = report.to_json();
        let parsed = MetricReport::from_json(&json).expect("round trip");
        assert_eq!(parsed, report);
        // An empty report round-trips too.
        let empty = MetricReport::new();
        assert_eq!(
            MetricReport::from_json(&empty.to_json()).expect("empty"),
            empty
        );
    }

    #[test]
    fn metric_report_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"a\": 1}",
            "{\"a\": {\"value\": x}}",
            // Syntax errors next to multi-byte characters must produce an
            // Err, not a char-boundary slice panic in the error formatter.
            "{\"µ×µ×µ×µ×µ×µ×µ×\": {\"value\": µ}}",
            "{\"a\": {\"value\": 1}} µ×trailing×µ garbage",
        ] {
            assert!(MetricReport::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn metric_report_errors_name_the_offending_field() {
        // A non-numeric value is rejected with the bad token in the message.
        let error = MetricReport::from_json("{\"a\": {\"value\": true}}").unwrap_err();
        assert!(error.contains("invalid number"), "{error}");
        let error =
            MetricReport::from_json("{\"a\": {\"value\": \"12\", \"higher_is_better\": false}}")
                .unwrap_err();
        assert!(error.contains("invalid number"), "{error}");

        // A metric without a value names the metric.
        let error = MetricReport::from_json("{\"oracle_queries\": {\"higher_is_better\": true}}")
            .unwrap_err();
        assert!(error.contains("oracle_queries"), "{error}");
        assert!(error.contains("lacks a value"), "{error}");

        // A non-boolean orientation is rejected too.
        let error = MetricReport::from_json("{\"a\": {\"value\": 1, \"higher_is_better\": 7}}")
            .unwrap_err();
        assert!(error.contains("expected boolean"), "{error}");

        // Unknown metric fields are rejected rather than silently dropped.
        let error = MetricReport::from_json("{\"a\": {\"value\": 1, \"unit\": 2}}").unwrap_err();
        assert!(error.contains("unit"), "{error}");
    }

    #[test]
    fn missing_orientation_defaults_to_lower_is_better() {
        // Orientation is optional on the wire: a bare value parses, and the
        // conservative default is "smaller is better" (so a metric that
        // grows can regress, never one that shrinks).
        let report = MetricReport::from_json("{\"queries\": {\"value\": 42}}").expect("parse");
        let metric = report.metrics.get("queries").expect("metric present");
        assert_eq!(metric.value, 42.0);
        assert!(!metric.higher_is_better);
    }

    #[test]
    fn regressions_respect_direction_and_tolerance() {
        let mut baseline = MetricReport::new();
        baseline.record("time_s", 1.0, false);
        baseline.record("speedup", 2.0, true);
        baseline.record("gone", 5.0, false);

        let mut current = MetricReport::new();
        current.record("time_s", 1.1, false); // 10% worse: within 20%
        current.record("speedup", 2.4, true); // better
        let ok = current.regressions_against(&baseline, 0.2);
        assert_eq!(ok.len(), 1, "{ok:?}");
        assert_eq!(ok[0].name, "gone");
        assert!(ok[0].current.is_none());

        current.record("gone", 5.0, false);
        current.record("time_s", 1.5, false); // 50% worse
        current.record("speedup", 1.0, true); // halved
        let bad = current.regressions_against(&baseline, 0.2);
        let names: Vec<&str> = bad.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["speedup", "time_s"]);
        assert!(bad.iter().all(|r| r.factor > 1.2));

        // Metrics only present in the current report never regress.
        current.record("brand_new", 9.0, false);
        assert_eq!(current.regressions_against(&baseline, 0.2).len(), 2);
    }

    #[test]
    fn fig5_formatting_mentions_each_attack() {
        let records = vec![
            record(AttackKind::SatAttack, "a", 2.0, true, false),
            record(AttackKind::Distance2H, "a", 0.2, true, true),
        ];
        let text = format_fig5("SFLL-HDh where h = m/8", &records);
        assert!(text.contains("SAT-Attack"));
        assert!(text.contains("Distance2H"));
    }
}
