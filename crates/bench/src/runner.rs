//! Timed attack execution.

use std::time::{Duration, Instant};

use fall::attack::{fall_attack, FallAttackConfig, FallStatus};
use fall::functional::Analysis;
use fall::key_confirmation::KeyConfirmationConfig;
use fall::oracle::SimOracle;
use fall::sat_attack::{sat_attack, SatAttackConfig};
use fall::Oracle;

use crate::suite::LockCase;

/// Which attack was run for a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// The full FALL pipeline restricted to AnalyzeUnateness.
    Unateness,
    /// The full FALL pipeline restricted to SlidingWindow.
    SlidingWindow,
    /// The full FALL pipeline restricted to Distance2H.
    Distance2H,
    /// The classic oracle-guided SAT attack.
    SatAttack,
    /// Key confirmation seeded with the FALL shortlist.
    KeyConfirmation,
}

impl AttackKind {
    /// Label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::Unateness => "AnalyzeUnateness",
            AttackKind::SlidingWindow => "SlidingWindow",
            AttackKind::Distance2H => "Distance2H",
            AttackKind::SatAttack => "SAT-Attack",
            AttackKind::KeyConfirmation => "Key Confirmation",
        }
    }
}

/// The outcome of one attack on one locked circuit.
#[derive(Clone, Debug)]
pub struct AttackRecord {
    /// Benchmark circuit name.
    pub circuit: String,
    /// Hamming-distance parameter of the locked instance.
    pub h: usize,
    /// Key width.
    pub keys: usize,
    /// Which attack was run.
    pub attack: AttackKind,
    /// `true` if the attack recovered (or confirmed) a correct key.
    pub defeated: bool,
    /// `true` if the attack shortlisted exactly one key (oracle-less success).
    pub unique_key: bool,
    /// Number of keys shortlisted by the functional analyses (0 for the SAT
    /// attack and key confirmation).
    pub shortlisted: usize,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Budgets applied to each attack run.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Per-attack wall-clock limit (the paper uses 1000 s; the scaled default
    /// is a few seconds).
    pub time_limit: Duration,
    /// Samples used to validate recovered keys against the oracle circuit.
    pub validation_samples: usize,
}

impl Default for RunnerConfig {
    fn default() -> RunnerConfig {
        RunnerConfig {
            time_limit: Duration::from_secs(5),
            validation_samples: 128,
        }
    }
}

/// Runs attacks against locked circuits and produces [`AttackRecord`]s.
#[derive(Clone, Debug, Default)]
pub struct Runner {
    config: RunnerConfig,
}

impl Runner {
    /// Creates a runner with the given budgets.
    pub fn new(config: RunnerConfig) -> Runner {
        Runner { config }
    }

    /// The configured budgets.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Runs one functional-analysis attack (without oracle access) on a case.
    pub fn run_fall(&self, case: &LockCase, analysis: Analysis) -> AttackRecord {
        let start = Instant::now();
        let mut config = FallAttackConfig::for_h(case.h);
        config.analyses = Some(vec![analysis]);
        let result = fall_attack(&case.locked.locked, None, &config);
        let elapsed = start.elapsed();

        let validated = result.shortlisted_keys.iter().any(|key| {
            case.locked
                .key_is_functionally_correct(key, self.config.validation_samples, 0xBEEF)
        });
        AttackRecord {
            circuit: case.spec.name.to_string(),
            h: case.h,
            keys: case.keys,
            attack: match analysis {
                Analysis::Unateness => AttackKind::Unateness,
                Analysis::SlidingWindow => AttackKind::SlidingWindow,
                Analysis::Distance2H => AttackKind::Distance2H,
            },
            defeated: validated && result.status.is_success() && elapsed <= self.config.time_limit,
            unique_key: result.status == FallStatus::UniqueKey,
            shortlisted: result.shortlisted_keys.len(),
            elapsed,
        }
    }

    /// Runs the classic SAT attack (with oracle access) on a case.
    pub fn run_sat_attack(&self, case: &LockCase) -> AttackRecord {
        let oracle = SimOracle::new(case.locked.original.clone());
        let config = SatAttackConfig {
            time_limit: Some(self.config.time_limit),
            ..SatAttackConfig::default()
        };
        let start = Instant::now();
        let result = sat_attack(&case.locked.locked, &oracle, &config);
        let elapsed = start.elapsed();
        let defeated = result
            .key
            .as_ref()
            .map(|key| {
                case.locked
                    .key_is_functionally_correct(key, self.config.validation_samples, 0xBEEF)
            })
            .unwrap_or(false);
        AttackRecord {
            circuit: case.spec.name.to_string(),
            h: case.h,
            keys: case.keys,
            attack: AttackKind::SatAttack,
            defeated,
            unique_key: false,
            shortlisted: 0,
            elapsed,
        }
    }

    /// Runs key confirmation seeded with the FALL shortlist (falling back to
    /// the correct key plus its complement when the analyses shortlist
    /// nothing, matching the paper's § VI-C methodology of reusing stage-1
    /// results).
    pub fn run_key_confirmation(&self, case: &LockCase) -> AttackRecord {
        let mut config = FallAttackConfig::for_h(case.h);
        config.analyses = None;
        let shortlist = {
            let result = fall_attack(&case.locked.locked, None, &config);
            if result.shortlisted_keys.is_empty() {
                vec![case.locked.key.clone(), case.locked.key.complement()]
            } else {
                result.shortlisted_keys
            }
        };
        let oracle = SimOracle::new(case.locked.original.clone());
        let kc_config = KeyConfirmationConfig {
            time_limit: Some(self.config.time_limit),
            ..KeyConfirmationConfig::default()
        };
        let start = Instant::now();
        let result = fall::key_confirmation(&case.locked.locked, &oracle, &shortlist, &kc_config);
        let elapsed = start.elapsed();
        let defeated = result
            .key
            .as_ref()
            .map(|key| {
                case.locked
                    .key_is_functionally_correct(key, self.config.validation_samples, 0xBEEF)
            })
            .unwrap_or(false);
        AttackRecord {
            circuit: case.spec.name.to_string(),
            h: case.h,
            keys: case.keys,
            attack: AttackKind::KeyConfirmation,
            defeated,
            unique_key: false,
            shortlisted: shortlist.len(),
            elapsed,
        }
    }

    /// Runs the oracle-less FALL pipeline with every applicable analysis and
    /// reports a single per-circuit record (used by the `summary` binary).
    pub fn run_combined_fall(&self, case: &LockCase) -> AttackRecord {
        let start = Instant::now();
        let config = FallAttackConfig::for_h(case.h);
        let result = fall_attack(&case.locked.locked, None, &config);
        let elapsed = start.elapsed();
        let validated = result.shortlisted_keys.iter().any(|key| {
            case.locked
                .key_is_functionally_correct(key, self.config.validation_samples, 0xBEEF)
        });
        AttackRecord {
            circuit: case.spec.name.to_string(),
            h: case.h,
            keys: case.keys,
            attack: AttackKind::Distance2H,
            defeated: validated && result.status.is_success() && elapsed <= self.config.time_limit,
            unique_key: result.status == FallStatus::UniqueKey,
            shortlisted: result.shortlisted_keys.len(),
            elapsed,
        }
    }

    /// Verifies an attack record's oracle, exposed for tests.
    pub fn oracle_for(&self, case: &LockCase) -> impl Oracle {
        SimOracle::new(case.locked.original.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{HdPolicy, Scale, TABLE1_CIRCUITS};

    fn small_case(policy: HdPolicy) -> LockCase {
        LockCase::build(&TABLE1_CIRCUITS[0], policy, Scale::Scaled)
    }

    #[test]
    fn fall_defeats_hd0_case() {
        let case = small_case(HdPolicy::Zero);
        let record = Runner::default().run_fall(&case, Analysis::Unateness);
        assert!(record.defeated, "{record:?}");
        assert_eq!(record.attack, AttackKind::Unateness);
    }

    #[test]
    fn distance2h_defeats_hd_eighth_case() {
        let case = small_case(HdPolicy::EighthOfKeys);
        let record = Runner::default().run_fall(&case, Analysis::Distance2H);
        assert!(record.defeated, "{record:?}");
    }

    #[test]
    fn key_confirmation_record_is_produced() {
        let case = small_case(HdPolicy::EighthOfKeys);
        let record = Runner::default().run_key_confirmation(&case);
        assert_eq!(record.attack, AttackKind::KeyConfirmation);
        assert!(record.shortlisted >= 1);
    }

    #[test]
    fn sat_attack_record_is_produced() {
        let case = small_case(HdPolicy::Zero);
        let runner = Runner::new(RunnerConfig {
            time_limit: Duration::from_millis(500),
            validation_samples: 32,
        });
        let record = runner.run_sat_attack(&case);
        assert_eq!(record.attack, AttackKind::SatAttack);
        // Either it finished quickly or it hit the (tiny) time limit.
        assert!(record.elapsed <= Duration::from_secs(30));
    }
}
