//! Regenerates Table I: benchmark circuits with original and SFLL-locked gate
//! counts.
//!
//! Usage: `cargo run -p fall-bench --release --bin table1 [--full] [--circuits N]`

use fall_bench::{format_table1, table1_rows, Scale, TABLE1_CIRCUITS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Paper
    } else {
        Scale::Scaled
    };
    let limit = args
        .iter()
        .position(|a| a == "--circuits")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(TABLE1_CIRCUITS.len());

    let specs = &TABLE1_CIRCUITS[..limit.min(TABLE1_CIRCUITS.len())];
    eprintln!(
        "Building Table I for {} circuits at {:?} scale (pass --full for paper sizes)...",
        specs.len(),
        scale
    );
    let rows = table1_rows(specs, scale);
    println!("TABLE I: Benchmark circuits (substituted, see DESIGN.md)");
    println!("{}", format_table1(&rows));
}
