//! Regenerates Figure 5: execution time vs number of benchmarks solved for
//! the circuit analyses (AnalyzeUnateness / SlidingWindow / Distance2H) and
//! the SAT attack, one panel per Hamming-distance policy.
//!
//! Usage:
//! `cargo run -p fall-bench --release --bin fig5 [--full] [--circuits N] [--timeout SECS] [--skip-sat]`

use std::time::Duration;

use fall::functional::Analysis;
use fall_bench::{
    format_fig5, AttackRecord, HdPolicy, LockCase, Runner, RunnerConfig, Scale, TABLE1_CIRCUITS,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Paper
    } else {
        Scale::Scaled
    };
    let skip_sat = args.iter().any(|a| a == "--skip-sat");
    let limit = arg_value(&args, "--circuits").unwrap_or(6);
    let timeout = Duration::from_secs_f64(arg_value(&args, "--timeout").unwrap_or(3) as f64);

    let runner = Runner::new(RunnerConfig {
        time_limit: timeout,
        validation_samples: 128,
    });
    let specs = &TABLE1_CIRCUITS[..limit.min(TABLE1_CIRCUITS.len())];
    eprintln!(
        "Figure 5: {} circuits x 4 Hamming-distance policies at {:?} scale, {:?} per attack",
        specs.len(),
        scale,
        timeout
    );

    for policy in HdPolicy::all() {
        let mut records: Vec<AttackRecord> = Vec::new();
        for spec in specs {
            let case = LockCase::build(spec, policy, scale);
            eprintln!("  [{}] {} (h = {})", policy.label(), spec.name, case.h);
            match policy {
                HdPolicy::Zero => {
                    records.push(runner.run_fall(&case, Analysis::Unateness));
                }
                _ => {
                    if 4 * case.h <= case.keys {
                        records.push(runner.run_fall(&case, Analysis::Distance2H));
                    }
                    if 2 * case.h < case.keys {
                        records.push(runner.run_fall(&case, Analysis::SlidingWindow));
                    }
                }
            }
            if !skip_sat {
                records.push(runner.run_sat_attack(&case));
            }
        }
        println!("{}", format_fig5(policy.label(), &records));
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
