//! Regenerates the § VI-B headline numbers: how many of the 80 locked
//! circuits the FALL attack defeats, and for how many it shortlists exactly
//! one key (oracle-less success).
//!
//! Usage:
//! `cargo run -p fall-bench --release --bin summary [--full] [--circuits N] [--timeout SECS]`

use std::time::Duration;

use fall_bench::{
    format_headline, headline, AttackRecord, HdPolicy, LockCase, Runner, RunnerConfig, Scale,
    TABLE1_CIRCUITS,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Paper
    } else {
        Scale::Scaled
    };
    let limit = arg_value(&args, "--circuits").unwrap_or(TABLE1_CIRCUITS.len());
    let timeout = Duration::from_secs_f64(arg_value(&args, "--timeout").unwrap_or(5) as f64);

    let runner = Runner::new(RunnerConfig {
        time_limit: timeout,
        validation_samples: 128,
    });
    let specs = &TABLE1_CIRCUITS[..limit.min(TABLE1_CIRCUITS.len())];
    eprintln!(
        "Summary: {} circuits x 4 policies = {} locked instances at {:?} scale",
        specs.len(),
        specs.len() * 4,
        scale
    );

    let mut records: Vec<AttackRecord> = Vec::new();
    for spec in specs {
        for policy in HdPolicy::all() {
            let case = LockCase::build(spec, policy, scale);
            let record = runner.run_combined_fall(&case);
            eprintln!(
                "  {:<8} h={:<2} keys={:<2} defeated={} unique={} shortlisted={} {:.2}s",
                spec.name,
                case.h,
                case.keys,
                record.defeated,
                record.unique_key,
                record.shortlisted,
                record.elapsed.as_secs_f64()
            );
            records.push(record);
        }
    }
    println!("SECTION VI-B headline numbers (scaled suite, see EXPERIMENTS.md)");
    println!("{}", format_headline(&headline(&records)));
}

fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
