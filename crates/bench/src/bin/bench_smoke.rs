//! Fast benchmark smoke run for the CI regression gate.
//!
//! Runs trimmed versions of the parallel-engine workloads, writes the
//! measured metrics as `BENCH_parallel.json` (via the report module's
//! [`MetricReport`]) and compares them against a checked-in baseline:
//!
//! ```text
//! bench_smoke [--baseline PATH] [--out PATH] [--write-baseline] [--tolerance F]
//!             [--trace-out PATH]
//! ```
//!
//! With `--write-baseline`, the baseline file is (re)written from this run
//! instead of being compared against.  Exit status 1 means at least one
//! tracked metric regressed beyond the tolerance.  With `--trace-out`, the
//! flight-recorder events captured during the single-SAT-attack section are
//! written as a Chrome trace-event JSON document (loadable in Perfetto; see
//! `docs/OBSERVABILITY.md`).
//!
//! Two classes of metric are reported:
//!
//! * deterministic counters (oracle queries, iterations, cone sizes, the
//!   per-worker `sessions_created`/`cone_encodings_built` counters of the
//!   frame-scoped-predicate engine, and the clause-arena memory counters —
//!   `*_arena_bytes`/`*_gc_runs`/`*_recycled_vars` from the single-threaded
//!   workloads, including the 100-generation long-lived-session run, the
//!   flight-recorder span counts `trace_*` from the traced single SAT
//!   attack, and the farm telemetry-report count
//!   `dist_worker_stats_reports`) — gated at the tolerance (default 20 %);
//!   any `*_s`/`*speedup*` metric that does land in a baseline gets a 3x
//!   band;
//! * `info_*` metrics (absolute seconds, single-shot speedup ratios,
//!   scheduler-dependent counts) — reported for humans and uploaded as a CI
//!   artifact, but excluded from the baseline: neither absolute timings nor
//!   one-shot ratios are comparable across machines or runs.  Use the
//!   `parallel_speedup` criterion bench for real scaling measurements.

use std::process::ExitCode;
use std::time::Instant;

use fall::attack::{fall_attack, FallAttackConfig};
use fall::functional::PrefilterStats;
use fall::key_confirmation::{
    key_confirmation, key_confirmation_in, partitioned_key_search, KeyConfirmationConfig,
};
use fall::oracle::{CountingOracle, SimOracle};
use fall::parallel::{parallel_partitioned_key_search, portfolio_sat_attack};
use fall::sat_attack::{sat_attack, SatAttackConfig};
use fall::session::AttackSession;
use fall_bench::{HdPolicy, LockCase, MetricReport, Scale, TABLE1_CIRCUITS};
use locking::{LockingScheme, SfllHd, TtLock, XorLock};
use netlist::cnf::KeyCone;
use netlist::random::{generate, RandomCircuitSpec};
use netlist::WideSim;
use netshim::Value;
use sat::SolverConfig;

// Two partition bits put ex1010's winning region into the first worker wave,
// so 4-worker cancellation speedups show up even on low-core CI machines,
// and the whole smoke stays fast.
const PARTITION_BITS: usize = 2;
// The frame-scoped-predicate acceptance workload: 8 regions on 4 workers,
// where per-worker session reuse (exactly 4 sessions / 4 full encodings, not
// 8 of each) is measured by deterministic counters.
const WIDE_PARTITION_BITS: usize = 3;
const WIDE_WORKERS: usize = 4;

struct Options {
    baseline: String,
    out: String,
    write_baseline: bool,
    tolerance: f64,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        baseline: "crates/bench/baseline/BENCH_parallel.json".to_string(),
        out: "BENCH_parallel.json".to_string(),
        write_baseline: false,
        tolerance: 0.2,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => options.baseline = value("--baseline")?,
            "--out" => options.out = value("--out")?,
            "--write-baseline" => options.write_baseline = true,
            "--tolerance" => {
                options.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "--tolerance expects a number".to_string())?
            }
            "--trace-out" => options.trace_out = Some(value("--trace-out")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(options)
}

fn measure() -> MetricReport {
    let mut report = MetricReport::new();

    // ---- Partitioned key search on a Table 1 workload ---------------------
    // ex1010 at the scaled size: 10-bit key, TTLock (HD0) — the
    // SAT-attack-resilient case where region partitioning matters.
    let case = LockCase::build(&TABLE1_CIRCUITS[0], HdPolicy::Zero, Scale::Scaled);
    let locked = &case.locked.locked;
    let oracle = SimOracle::new(case.locked.original.clone());
    let config = KeyConfirmationConfig::default();

    let cone = KeyCone::of(locked);
    report.record("key_cone_gates", cone.num_gates() as f64, false);

    let t = Instant::now();
    let serial = partitioned_key_search(locked, &oracle, PARTITION_BITS, &config);
    let serial_elapsed = t.elapsed().as_secs_f64();
    assert!(serial.completed && serial.key.is_some(), "serial search");
    report.record("info_partitioned_serial_s", serial_elapsed, false);
    report.record(
        "partitioned_serial_oracle_queries",
        serial.oracle_queries as f64,
        false,
    );
    report.record(
        "partitioned_serial_iterations",
        serial.iterations as f64,
        false,
    );

    for workers in [1usize, 2, 4] {
        let t = Instant::now();
        let parallel =
            parallel_partitioned_key_search(locked, &oracle, PARTITION_BITS, workers, &config);
        let elapsed = t.elapsed().as_secs_f64();
        assert!(
            parallel.completed && parallel.key.is_some(),
            "parallel search with {workers} workers"
        );
        report.record(
            format!("info_partitioned_parallel_{workers}w_s"),
            elapsed,
            false,
        );
        if workers == 1 {
            // One worker drains the region queue in the serial order on one
            // long-lived session, so this counter is deterministic (and
            // smaller than the serial count: the shared cache deduplicates
            // across regions and carried-over learnt clauses prune the
            // distinguishing-input search).
            report.record(
                "parallel_1w_unique_oracle_queries",
                parallel.oracle_queries as f64,
                false,
            );
            // Single-threaded, so the solver's memory counters are
            // deterministic too: the arena footprint after draining every
            // region, and how much the GC + variable recycling reclaimed.
            report.record(
                "parallel_1w_arena_bytes",
                parallel.peak_arena_bytes as f64,
                false,
            );
            report.record("parallel_1w_gc_runs", parallel.gc_runs as f64, false);
            report.record(
                "parallel_1w_recycled_vars",
                parallel.recycled_vars as f64,
                false,
            );
            // Search-effort counters of the modern CDCL core (tiered
            // reduction, EMA restarts, bounded variable elimination), from
            // the same deterministic single-worker drain: how many conflicts
            // and propagated literals the whole serial region sweep costs,
            // and how often the tiered learnt-database reduction ran.
            // Baseline-gated so a heuristic regression that silently blows
            // up search effort fails the smoke even when wall-clock noise
            // would hide it.
            let sat = &parallel.solver_stats;
            report.record("parallel_1w_conflicts", sat.conflicts as f64, false);
            report.record("parallel_1w_propagations", sat.propagations as f64, false);
            report.record("parallel_1w_reductions", sat.reductions as f64, false);
        } else {
            // Single-shot wall-clock ratio: scheduler jitter and per-machine
            // core counts make this unsuitable for a required gate, so it is
            // informational; the gated metrics are the deterministic
            // counters.
            report.record(
                format!("info_parallel_speedup_{workers}w"),
                serial_elapsed / elapsed,
                true,
            );
        }
        if workers == 4 {
            // How many queries in-flight regions issue before cancellation
            // depends on the core count, so this is informational only; the
            // deterministic dedup canary is the 1-worker counter above.
            report.record(
                "info_parallel_4w_unique_oracle_queries",
                parallel.oracle_queries as f64,
                false,
            );
        }
    }

    // ---- Frame-scoped predicate reuse: 8 regions on 4 workers -------------
    // Each worker keeps one long-lived session and rebinds ϕ per region, so
    // sessions and full circuit encodings are counted per *worker*.  Both
    // counters are deterministic by construction (workers create and prime
    // their session at thread start, before touching the region queue).
    let t = Instant::now();
    let wide = parallel_partitioned_key_search(
        locked,
        &oracle,
        WIDE_PARTITION_BITS,
        WIDE_WORKERS,
        &config,
    );
    report.record(
        format!("info_partitioned_parallel_{WIDE_WORKERS}w_8regions_s"),
        t.elapsed().as_secs_f64(),
        false,
    );
    assert!(
        wide.completed && wide.key.is_some(),
        "8-region parallel search"
    );
    assert_eq!(
        wide.sessions_created, WIDE_WORKERS,
        "one session per worker"
    );
    report.record("sessions_created", wide.sessions_created as f64, false);
    report.record(
        "cone_encodings_built",
        wide.cone_encodings_built as f64,
        false,
    );

    // ---- Long-lived session: bounded memory across 100 generations --------
    // One AttackSession runs 100 whole key-confirmation runs back to back
    // (alternating confirming and rejecting shortlists).  The flat clause
    // arena plus variable recycling must hold the variable count exactly
    // flat after warm-up and keep the arena bounded; all four counters are
    // deterministic (single-threaded) and baseline-tracked.
    let ll_original = generate(&RandomCircuitSpec::new("smoke_longlived", 8, 2, 50));
    let ll_locked = XorLock::new(5)
        .with_seed(4)
        .lock(&ll_original)
        .expect("lock");
    let ll_oracle = SimOracle::new(ll_original);
    let mut ll_session = AttackSession::new(&ll_locked.locked);
    const LL_WARMUP: usize = 10;
    const LL_GENERATIONS: usize = 100;
    let mut ll_warm_vars = 0usize;
    let mut ll_warm_arena = 0u64;
    let t = Instant::now();
    for generation in 0..LL_GENERATIONS {
        let shortlist = if generation % 2 == 0 {
            vec![ll_locked.key.clone(), ll_locked.key.complement()]
        } else {
            vec![ll_locked.key.complement()]
        };
        let result = key_confirmation_in(&mut ll_session, &ll_oracle, &shortlist, &config);
        assert!(
            result.completed && result.key.is_some() == (generation % 2 == 0),
            "long-lived generation {generation}"
        );
        if generation + 1 == LL_WARMUP {
            ll_warm_vars = ll_session.num_vars();
            ll_warm_arena = ll_session.stats().arena_bytes;
        }
    }
    report.record("info_longlived_100gen_s", t.elapsed().as_secs_f64(), false);
    let ll_stats = ll_session.stats();
    assert_eq!(
        ll_session.num_vars(),
        ll_warm_vars,
        "variable count must be flat after warm-up \
         (generation N + 1 reuses generation N's recycled variables)"
    );
    assert!(
        ll_stats.arena_bytes <= ll_warm_arena * 2,
        "the clause arena must stay flat after warm-up: {ll_warm_arena} bytes \
         at generation {LL_WARMUP}, {} at generation {LL_GENERATIONS}",
        ll_stats.arena_bytes
    );
    report.record("longlived_100gen_vars", ll_session.num_vars() as f64, false);
    report.record(
        "longlived_100gen_arena_bytes",
        ll_stats.arena_bytes as f64,
        false,
    );
    report.record("longlived_100gen_gc_runs", ll_stats.gc_runs as f64, false);
    report.record(
        "longlived_100gen_recycled_vars",
        ll_stats.recycled_vars as f64,
        false,
    );

    // ---- Wide bit-parallel simulation throughput --------------------------
    // The 8-word blocked engine versus the 64-way per-call-allocating
    // baseline (`node_words_fresh`) over an identical 32768-pattern budget.
    // The ratio is gated two ways: the in-run assert requires >= 2x on any
    // machine (the ISSUE acceptance floor — the blocked engine amortises the
    // per-gate dispatch over 8 words and allocates nothing per sweep), and
    // the baseline comparison applies the wall-clock 3x band because single
    // shot ratios jitter with the scheduler.
    let ws_nl = generate(&RandomCircuitSpec::new("smoke_widesim", 16, 4, 600));
    const WS_WORDS: usize = 8;
    const WS_SWEEPS: usize = 64; // 64 sweeps x 8 words x 64 bits = 32768 patterns
    let mut ws_state = 0x5EED_F00Du64;
    let wide_stimuli: Vec<Vec<u64>> = (0..WS_SWEEPS)
        .map(|_| {
            (0..ws_nl.num_inputs() * WS_WORDS)
                .map(|_| splitmix64(&mut ws_state))
                .collect()
        })
        .collect();
    // The same patterns re-blocked for the one-word baseline.
    let mut scalar_stimuli: Vec<Vec<u64>> = Vec::with_capacity(WS_SWEEPS * WS_WORDS);
    for block in &wide_stimuli {
        for lane in 0..WS_WORDS {
            scalar_stimuli.push(
                (0..ws_nl.num_inputs())
                    .map(|pin| block[pin * WS_WORDS + lane])
                    .collect(),
            );
        }
    }
    let mut best_fresh = f64::INFINITY;
    let mut best_wide = f64::INFINITY;
    let mut fresh_checksum = 0u64;
    let mut wide_checksum = 0u64;
    for _ in 0..3 {
        let t = Instant::now();
        let mut acc = 0u64;
        for stimulus in &scalar_stimuli {
            let values = ws_nl.node_words_fresh(stimulus, &[]).expect("widths");
            for &(_, id) in ws_nl.outputs() {
                acc ^= values[id.index()];
            }
        }
        best_fresh = best_fresh.min(t.elapsed().as_secs_f64());
        fresh_checksum = acc;

        let t = Instant::now();
        let mut acc = 0u64;
        let mut sim = WideSim::new(&ws_nl, WS_WORDS);
        for block in &wide_stimuli {
            sim.run(&ws_nl, block, &[]).expect("widths");
            for &(_, id) in ws_nl.outputs() {
                for &word in sim.node(id) {
                    acc ^= word;
                }
            }
        }
        best_wide = best_wide.min(t.elapsed().as_secs_f64());
        wide_checksum = acc;
    }
    assert_eq!(
        fresh_checksum, wide_checksum,
        "wide and baseline engines must simulate identical patterns"
    );
    let patterns = (WS_SWEEPS * WS_WORDS * 64) as f64;
    let ws_speedup = best_fresh / best_wide;
    report.record("wide_sim_speedup_8w_vs_fresh", ws_speedup, true);
    report.record(
        "info_wide_sim_mpatterns_per_s",
        patterns / best_wide / 1e6,
        true,
    );
    assert!(
        ws_speedup >= 2.0,
        "wide engine must be at least 2x the 64-way baseline, measured {ws_speedup:.2}x"
    );

    // ---- Wide prefilters + batched oracle path ----------------------------
    // Deterministic counters from full seeded attacks: how many SAT queries
    // the word-parallel prefilters refuted (h = 0 exercises the unateness
    // filter, h = 1 the Hamming-distance filter) and how much random
    // simulation they spent doing it.
    let wp_original = generate(&RandomCircuitSpec::new("smoke_wide_attack", 14, 3, 90));
    let wp_tt = TtLock::new(10)
        .with_seed(31)
        .lock(&wp_original)
        .expect("lock")
        .optimized();
    let wp_hd = SfllHd::new(10, 1)
        .with_seed(8)
        .lock(&wp_original)
        .expect("lock")
        .optimized();
    let t = Instant::now();
    let tt_result = fall_attack(&wp_tt.locked, None, &FallAttackConfig::for_h(0));
    let hd_result = fall_attack(&wp_hd.locked, None, &FallAttackConfig::for_h(1));
    report.record("info_fall_attacks_s", t.elapsed().as_secs_f64(), false);
    assert!(tt_result.status.is_success(), "TTLock attack");
    assert!(hd_result.status.is_success(), "SFLL-HD1 attack");
    let mut prefilter = PrefilterStats::default();
    prefilter.merge(&tt_result.prefilter);
    prefilter.merge(&hd_result.prefilter);
    assert!(
        prefilter.patterns_simulated > 0,
        "attacks must exercise the wide prefilters"
    );
    report.record("prefilter_refuted", prefilter.total_refuted() as f64, false);
    report.record(
        "prefilter_patterns_simulated",
        prefilter.patterns_simulated as f64,
        false,
    );

    // Word-batched oracle traffic: a screened key confirmation over a
    // two-key shortlist ships its 256 probe patterns as one 4-word
    // `query_words` batch, which the counting wrapper observes.  The screen
    // is opt-in (`screen_words`), so `parallel_1w_unique_oracle_queries`
    // above is untouched.
    let wo_oracle = CountingOracle::new(SimOracle::new(wp_hd.original.clone()));
    let wo_config = KeyConfirmationConfig {
        screen_words: 4,
        ..KeyConfirmationConfig::default()
    };
    let shortlist = vec![wp_hd.key.clone(), wp_hd.key.complement()];
    let confirmation = key_confirmation(&wp_hd.locked, &wo_oracle, &shortlist, &wo_config);
    assert!(
        confirmation.completed && confirmation.key == Some(wp_hd.key.clone()),
        "screened confirmation"
    );
    report.record(
        "oracle_words_batched",
        wo_oracle.batched_words() as f64,
        false,
    );
    assert!(
        wo_oracle.batched_words() >= 4,
        "the screen must ship at least one 4-word batch"
    );

    // ---- Solver portfolio on one SAT-attack instance ----------------------
    let pf_original = generate(&RandomCircuitSpec::new("smoke_pf", 12, 3, 120));
    let pf_locked = XorLock::new(10)
        .with_seed(1)
        .lock(&pf_original)
        .expect("lock");
    let pf_oracle = SimOracle::new(pf_original);
    // Arm the flight recorder for the single deterministic attack, and only
    // for it: the recorded span counts become gated metrics, proving the
    // tracing layer sees exactly the phases the attack runs.  (Spans only
    // read a clock, so the attack trajectory — and every other gated counter
    // — is identical whether the recorder is on or off.)
    fall::trace::reset();
    fall::trace::set_enabled(true);
    let t = Instant::now();
    let single = sat_attack(&pf_locked.locked, &pf_oracle, &SatAttackConfig::default());
    fall::trace::set_enabled(false);
    report.record("info_sat_attack_single_s", t.elapsed().as_secs_f64(), false);
    assert!(single.is_success(), "single sat attack");
    report.record("sat_attack_iterations", single.iterations as f64, false);
    // One span per DIP round plus the final UNSAT round that ends the loop.
    let traced_dips = fall::trace::phase_count("dip_iteration");
    assert_eq!(
        traced_dips,
        single.iterations as u64 + 1,
        "flight recorder must see every DIP iteration"
    );
    assert_eq!(
        fall::trace::phase_count("oracle_query"),
        single.oracle_queries as u64,
        "flight recorder must see every oracle query"
    );
    assert!(
        fall::trace::phase_count("solve") > 0,
        "solver checkpoints must be traced"
    );
    assert_eq!(fall::trace::events_dropped(), 0, "ring must not overflow");
    report.record("trace_dip_iterations", traced_dips as f64, false);
    report.record(
        "trace_oracle_queries",
        fall::trace::phase_count("oracle_query") as f64,
        false,
    );

    let t = Instant::now();
    let portfolio = portfolio_sat_attack(
        &pf_locked.locked,
        &pf_oracle,
        &SolverConfig::portfolio(4),
        &SatAttackConfig::default(),
    );
    report.record("info_portfolio_4_s", t.elapsed().as_secs_f64(), false);
    assert!(portfolio.result.is_success(), "portfolio sat attack");
    report.record(
        "info_portfolio_4_unique_oracle_queries",
        portfolio.oracle_queries as f64,
        false,
    );

    // ---- fall-serve: many-client smoke load -------------------------------
    // An in-process server (ephemeral port, 2 worker sessions) under 8
    // concurrent wire clients x 4 confirmation jobs each.  The job mix is
    // deterministic — every job confirms the true TTLock key against its
    // complement — so the completion/key-found/busy counters are exact and
    // baseline-gated; the end-to-end p50/p99 latencies land in the baseline
    // under the wall-clock 3x band (`_s` suffix).  The final `/metrics`
    // scrape is parsed with `MetricReport::from_json`, which pins the wire
    // format of the metrics surface to the report dialect.
    {
        const CLIENTS: usize = 8;
        const JOBS_PER_CLIENT: usize = 4;
        let mut server_config = fall_serve::ServerConfig::default();
        server_config.service.workers_per_target = 2;
        server_config.service.queue_capacity = 64;
        let server = fall_serve::Server::start(server_config).expect("start fall-serve");
        let addr = server.local_addr();

        let mut control = ServeClient::connect(addr);
        control.send(&Value::object([
            ("op", Value::from("register")),
            ("name", Value::from("smoke")),
            ("scheme", Value::from("ttlock")),
            ("h", Value::from(0u64)),
            (
                "locked",
                Value::from(netlist::bench_format::write(&wp_tt.locked)),
            ),
            (
                "oracle",
                Value::from(netlist::bench_format::write(&wp_original)),
            ),
        ]));
        let registered = control.recv();
        assert_eq!(
            registered.get("ok").and_then(Value::as_bool),
            Some(true),
            "register failed: {registered}"
        );

        let good: String = wp_tt
            .key
            .bits()
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        let bad: String = wp_tt
            .key
            .complement()
            .bits()
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        let t = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                let (good, bad) = (good.clone(), bad.clone());
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr);
                    for id in 0..JOBS_PER_CLIENT as u64 {
                        client.send(&Value::object([
                            ("op", Value::from("attack")),
                            ("id", Value::from(id)),
                            ("target", Value::from("smoke")),
                            ("kind", Value::from("confirm")),
                            (
                                "shortlist",
                                Value::Array(vec![
                                    Value::from(bad.as_str()),
                                    Value::from(good.as_str()),
                                ]),
                            ),
                        ]));
                    }
                    let mut reports = 0;
                    while reports < JOBS_PER_CLIENT {
                        let frame = client.recv();
                        if frame.get("event").and_then(Value::as_str) != Some("job") {
                            assert_eq!(
                                frame.get("ok").and_then(Value::as_bool),
                                Some(true),
                                "submission rejected: {frame}"
                            );
                            continue;
                        }
                        assert_eq!(
                            frame.get("status").and_then(Value::as_str),
                            Some("key_found"),
                            "{frame}"
                        );
                        assert_eq!(
                            frame.get("key").and_then(Value::as_str),
                            Some(good.as_str()),
                            "{frame}"
                        );
                        reports += 1;
                    }
                });
            }
        });
        report.record("info_serve_smoke_s", t.elapsed().as_secs_f64(), false);

        control.send(&Value::object([("op", Value::from("metrics"))]));
        let scraped = control.recv();
        let server_report =
            MetricReport::from_json(&scraped.get("metrics").expect("metrics member").to_string())
                .expect("serve /metrics must be MetricReport-compatible JSON");
        let sample = |name: &str| {
            server_report
                .metrics
                .get(name)
                .unwrap_or_else(|| panic!("serve /metrics misses {name}"))
                .value
        };
        let total = (CLIENTS * JOBS_PER_CLIENT) as f64;
        assert_eq!(sample("serve_jobs_completed"), total);
        assert_eq!(sample("serve_jobs_key_found"), total);
        assert_eq!(sample("serve_jobs_busy"), 0.0);
        report.record(
            "serve_8c_jobs_completed",
            sample("serve_jobs_completed"),
            false,
        );
        report.record(
            "serve_8c_jobs_key_found",
            sample("serve_jobs_key_found"),
            false,
        );
        report.record("serve_8c_jobs_busy", sample("serve_jobs_busy"), false);
        report.record("serve_8c_sessions", sample("serve_sessions_created"), false);
        report.record("serve_8c_p50_s", sample("serve_latency_p50_s"), false);
        report.record("serve_8c_p99_s", sample("serve_latency_p99_s"), false);
        report.record("info_serve_sat_solves", sample("sat_solves"), false);
    }

    // ---- fall-dist: multi-process farm smoke ------------------------------
    // A 2-worker pipes farm over stdin/stdout (workers are re-execs of this
    // binary — see `maybe_run_worker_process` in `main`).  Stealing and
    // cancel-on-winner are off and winners keep draining, so every worker
    // retires exactly its dealt share and the merged unique-oracle-query
    // count is a pure function of the workload — a point-gateable canary
    // that the cross-process cache sync keeps farm-wide oracle traffic
    // deduplicated.  A second run crashes worker 0 on its first lease
    // (deterministically region 0) and gates that exactly that one lease
    // requeues and the survivor still completes the whole region space.
    {
        let dist_original = generate(&RandomCircuitSpec::new("dist_farm", 8, 2, 50));
        let dist_locked = SfllHd::new(5, 0)
            .with_seed(2)
            .lock(&dist_original)
            .expect("lock dist smoke circuit");
        let mut farm_config = fall_dist::FarmConfig {
            workers: 2,
            partition_bits: 2,
            steal: false,
            cancel_on_winner: false,
            ..fall_dist::FarmConfig::default()
        };

        let t = Instant::now();
        let clean = fall_dist::Farm::spawn(&dist_locked.locked, &dist_original, &farm_config)
            .expect("spawn dist farm")
            .wait();
        report.record("info_dist_2w_s", t.elapsed().as_secs_f64(), false);
        assert!(clean.completed, "dist farm concludes");
        let key = clean.key.as_ref().expect("dist farm recovers a key");
        assert!(
            dist_locked.key_is_functionally_correct(key, 200, 4),
            "dist farm key unlocks the circuit"
        );
        report.record("dist_2w_key_found", 1.0, false);
        report.record(
            "dist_2w_unique_oracle_queries",
            clean.unique_oracle_queries as f64,
            false,
        );
        report.record(
            "dist_2w_regions_completed",
            clean.regions_completed as f64,
            false,
        );
        // Worker telemetry: every drain-all `complete` frame piggybacks a
        // cumulative SolverStats snapshot, so the report count equals the
        // region count, and the supervisor's farm-wide aggregate must be
        // exactly the field-wise sum of each worker's latest snapshot.
        assert_eq!(
            clean.stats_reports, clean.regions_completed,
            "every complete frame carries worker telemetry"
        );
        let mut summed = sat::SolverStats::default();
        for telemetry in clean.worker_telemetry.iter().flatten() {
            summed.absorb(&telemetry.solver);
        }
        assert_eq!(
            clean.solver_stats, summed,
            "supervisor aggregate equals the sum of worker-local stats"
        );
        assert!(clean.solver_stats.solves > 0, "workers did SAT work");
        report.record(
            "dist_worker_stats_reports",
            clean.stats_reports as f64,
            false,
        );

        farm_config.worker_args = vec![vec!["--crash-on-first-lease".to_string()]];
        let t = Instant::now();
        let crash = fall_dist::Farm::spawn(&dist_locked.locked, &dist_original, &farm_config)
            .expect("spawn dist crash farm")
            .wait();
        report.record("info_dist_crash_s", t.elapsed().as_secs_f64(), false);
        assert!(crash.completed, "dist farm survives a worker crash");
        let key = crash
            .key
            .as_ref()
            .expect("crash-run survivor recovers the key");
        assert!(dist_locked.key_is_functionally_correct(key, 200, 4));
        report.record(
            "dist_requeued_regions",
            crash.regions_requeued as f64,
            false,
        );
        report.record(
            "dist_crash_workers_crashed",
            crash.workers_crashed as f64,
            false,
        );
    }

    report
}

/// A minimal blocking wire client for the serve smoke section.
struct ServeClient {
    writer: std::net::TcpStream,
    reader: netshim::LineReader<std::net::TcpStream>,
}

impl ServeClient {
    fn connect(addr: std::net::SocketAddr) -> ServeClient {
        let stream = std::net::TcpStream::connect(addr).expect("connect to fall-serve");
        let writer = stream.try_clone().expect("clone stream");
        ServeClient {
            writer,
            reader: netshim::LineReader::new(stream, 4 << 20),
        }
    }

    fn send(&mut self, value: &Value) {
        netshim::write_line(&mut self.writer, &value.to_string()).expect("send frame");
    }

    fn recv(&mut self) -> Value {
        let line = self
            .reader
            .read_line()
            .expect("read frame")
            .expect("server closed the connection");
        Value::parse(&line).expect("frame is valid JSON")
    }
}

/// Deterministic stimulus generator for the throughput section: the bench
/// binaries avoid the `rand` dev-dependency, and splitmix64 is plenty for
/// filling simulation words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn is_wall_clock(name: &str) -> bool {
    name.ends_with("_s") || name.contains("speedup")
}

fn main() -> ExitCode {
    // The dist-farm section re-execs this binary as its worker processes;
    // a worker invocation never returns from this call.
    fall_dist::maybe_run_worker_process();

    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("bench_smoke: {message}");
            return ExitCode::from(2);
        }
    };

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("bench_smoke: measuring on {cores} core(s)");
    let report = measure();
    print!("{}", report.to_json());

    if let Err(error) = std::fs::write(&options.out, report.to_json()) {
        eprintln!("bench_smoke: cannot write {}: {error}", options.out);
        return ExitCode::from(2);
    }
    println!("bench_smoke: wrote {}", options.out);

    // The flight-recorder events from the traced attack section are still in
    // the rings (disabling the recorder keeps them); export on request.
    if let Some(path) = &options.trace_out {
        if let Err(error) = std::fs::write(path, fall::trace::chrome_trace_json()) {
            eprintln!("bench_smoke: cannot write {path}: {error}");
            return ExitCode::from(2);
        }
        println!("bench_smoke: wrote {path}");
    }

    if options.write_baseline {
        let mut tracked = report.clone();
        tracked.metrics.retain(|name, _| !name.starts_with("info_"));
        if let Err(error) = std::fs::write(&options.baseline, tracked.to_json()) {
            eprintln!("bench_smoke: cannot write {}: {error}", options.baseline);
            return ExitCode::from(2);
        }
        println!("bench_smoke: baseline {} updated", options.baseline);
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&options.baseline) {
        Ok(text) => text,
        Err(error) => {
            eprintln!(
                "bench_smoke: cannot read baseline {}: {error} \
                 (run with --write-baseline to create it)",
                options.baseline
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match MetricReport::from_json(&baseline_text) {
        Ok(baseline) => baseline,
        Err(message) => {
            eprintln!("bench_smoke: malformed baseline: {message}");
            return ExitCode::from(2);
        }
    };

    // Wall-clock metrics get a wider band than deterministic counters.
    let mut counters = MetricReport::new();
    let mut timings = MetricReport::new();
    for (name, metric) in &baseline.metrics {
        let target = if is_wall_clock(name) {
            &mut timings
        } else {
            &mut counters
        };
        target.metrics.insert(name.clone(), *metric);
    }
    let mut regressions = report.regressions_against(&counters, options.tolerance);
    regressions.extend(report.regressions_against(&timings, options.tolerance * 3.0));

    if regressions.is_empty() {
        println!(
            "bench_smoke: OK — no tracked metric regressed more than {:.0}% \
             (wall-clock band {:.0}%)",
            options.tolerance * 100.0,
            options.tolerance * 300.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_smoke: {} regression(s) detected:", regressions.len());
        for regression in &regressions {
            match regression.current {
                Some(current) => eprintln!(
                    "  {}: baseline {:.4} -> current {:.4} ({:.2}x worse)",
                    regression.name, regression.baseline, current, regression.factor
                ),
                None => eprintln!(
                    "  {}: baseline {:.4} -> metric missing from current run",
                    regression.name, regression.baseline
                ),
            }
        }
        ExitCode::FAILURE
    }
}
