//! Regenerates Figure 6: mean execution time of key confirmation vs the SAT
//! attack for every benchmark circuit.
//!
//! Usage:
//! `cargo run -p fall-bench --release --bin fig6 [--full] [--circuits N] [--timeout SECS]`

use std::time::Duration;

use fall_bench::{
    fig6_rows, format_fig6, AttackRecord, HdPolicy, LockCase, Runner, RunnerConfig, Scale,
    TABLE1_CIRCUITS,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Paper
    } else {
        Scale::Scaled
    };
    let limit = arg_value(&args, "--circuits").unwrap_or(6);
    let timeout = Duration::from_secs_f64(arg_value(&args, "--timeout").unwrap_or(3) as f64);

    let runner = Runner::new(RunnerConfig {
        time_limit: timeout,
        validation_samples: 128,
    });
    let specs = &TABLE1_CIRCUITS[..limit.min(TABLE1_CIRCUITS.len())];
    eprintln!(
        "Figure 6: {} circuits, key confirmation vs SAT attack, {:?} per attack",
        specs.len(),
        timeout
    );

    let mut records: Vec<AttackRecord> = Vec::new();
    for spec in specs {
        // Mean over the locking policies, as in the paper ("mean execution
        // time ... for a particular circuit encoded with the various locking
        // algorithms and parameters").
        for policy in HdPolicy::all() {
            let case = LockCase::build(spec, policy, scale);
            eprintln!("  {} (h = {})", spec.name, case.h);
            records.push(runner.run_key_confirmation(&case));
            records.push(runner.run_sat_attack(&case));
        }
    }
    println!("FIGURE 6: mean execution times (log-scale in the paper)");
    println!("{}", format_fig6(&fig6_rows(&records)));
}

fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
