//! The benchmark suite: the 20 circuits of Table I and the SFLL lock grid.

use locking::{LockedCircuit, LockingScheme, SfllHd, TtLock};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::Netlist;

/// Interface sizes of one benchmark circuit (one row of Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Circuit name (ISCAS'85 / MCNC benchmark name).
    pub name: &'static str,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Gate count of the original circuit as reported in Table I.
    pub gates: usize,
    /// Key width used by the paper (`min(inputs, 64)` in the 64-bit setup).
    pub keys: usize,
}

/// The 20 benchmark circuits of Table I with the paper's interface sizes.
pub const TABLE1_CIRCUITS: [CircuitSpec; 20] = [
    CircuitSpec {
        name: "ex1010",
        inputs: 10,
        outputs: 10,
        gates: 2754,
        keys: 10,
    },
    CircuitSpec {
        name: "apex4",
        inputs: 10,
        outputs: 19,
        gates: 2886,
        keys: 10,
    },
    CircuitSpec {
        name: "c1908",
        inputs: 33,
        outputs: 25,
        gates: 414,
        keys: 33,
    },
    CircuitSpec {
        name: "c432",
        inputs: 36,
        outputs: 7,
        gates: 209,
        keys: 36,
    },
    CircuitSpec {
        name: "apex2",
        inputs: 39,
        outputs: 3,
        gates: 345,
        keys: 39,
    },
    CircuitSpec {
        name: "c1355",
        inputs: 41,
        outputs: 32,
        gates: 504,
        keys: 41,
    },
    CircuitSpec {
        name: "seq",
        inputs: 41,
        outputs: 35,
        gates: 1964,
        keys: 41,
    },
    CircuitSpec {
        name: "c499",
        inputs: 41,
        outputs: 32,
        gates: 400,
        keys: 41,
    },
    CircuitSpec {
        name: "k2",
        inputs: 46,
        outputs: 45,
        gates: 1474,
        keys: 46,
    },
    CircuitSpec {
        name: "c3540",
        inputs: 50,
        outputs: 22,
        gates: 1038,
        keys: 50,
    },
    CircuitSpec {
        name: "c880",
        inputs: 60,
        outputs: 26,
        gates: 327,
        keys: 60,
    },
    CircuitSpec {
        name: "dalu",
        inputs: 75,
        outputs: 16,
        gates: 1202,
        keys: 64,
    },
    CircuitSpec {
        name: "i9",
        inputs: 88,
        outputs: 63,
        gates: 591,
        keys: 64,
    },
    CircuitSpec {
        name: "i8",
        inputs: 133,
        outputs: 81,
        gates: 1725,
        keys: 64,
    },
    CircuitSpec {
        name: "c5315",
        inputs: 178,
        outputs: 123,
        gates: 1773,
        keys: 64,
    },
    CircuitSpec {
        name: "i4",
        inputs: 192,
        outputs: 6,
        gates: 246,
        keys: 64,
    },
    CircuitSpec {
        name: "i7",
        inputs: 199,
        outputs: 67,
        gates: 663,
        keys: 64,
    },
    CircuitSpec {
        name: "c7552",
        inputs: 207,
        outputs: 108,
        gates: 2074,
        keys: 64,
    },
    CircuitSpec {
        name: "c2670",
        inputs: 233,
        outputs: 140,
        gates: 717,
        keys: 64,
    },
    CircuitSpec {
        name: "des",
        inputs: 256,
        outputs: 245,
        gates: 3839,
        keys: 64,
    },
];

/// How large the generated circuits and keys should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scale {
    /// Laptop-friendly sizes: inputs, gates and keys are capped so the whole
    /// grid runs in minutes.  This is the default for all harness binaries.
    #[default]
    Scaled,
    /// The paper's sizes (up to 256 inputs, 64-bit keys).
    Paper,
}

impl CircuitSpec {
    /// The spec actually used at a given scale.
    pub fn at_scale(&self, scale: Scale) -> CircuitSpec {
        match scale {
            Scale::Paper => *self,
            Scale::Scaled => CircuitSpec {
                name: self.name,
                inputs: self.inputs.min(24),
                outputs: self.outputs.min(8),
                gates: self.gates.min(400),
                keys: self.keys.min(14),
            },
        }
    }

    /// Deterministically generates the substitute netlist for this circuit.
    pub fn build(&self, scale: Scale) -> Netlist {
        let spec = self.at_scale(scale);
        generate(
            &RandomCircuitSpec::new(spec.name, spec.inputs, spec.outputs, spec.gates)
                .with_seed(seed_from_name(spec.name)),
        )
    }
}

fn seed_from_name(name: &str) -> u64 {
    // FNV-1a keeps the suite deterministic without external dependencies.
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |hash, byte| {
        (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// The Hamming-distance settings of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HdPolicy {
    /// SFLL-HD0 (equivalently TTLock).
    Zero,
    /// `h = floor(m / 8)`.
    EighthOfKeys,
    /// `h = floor(m / 4)`.
    QuarterOfKeys,
    /// `h = floor(m / 3)`.
    ThirdOfKeys,
}

impl HdPolicy {
    /// All policies, in the order of Figure 5's panels.
    pub fn all() -> [HdPolicy; 4] {
        [
            HdPolicy::Zero,
            HdPolicy::EighthOfKeys,
            HdPolicy::QuarterOfKeys,
            HdPolicy::ThirdOfKeys,
        ]
    }

    /// The concrete `h` for a key width `m`.
    pub fn h_for(self, m: usize) -> usize {
        match self {
            HdPolicy::Zero => 0,
            HdPolicy::EighthOfKeys => m / 8,
            HdPolicy::QuarterOfKeys => m / 4,
            HdPolicy::ThirdOfKeys => m / 3,
        }
    }

    /// Panel label used in Figure 5.
    pub fn label(self) -> &'static str {
        match self {
            HdPolicy::Zero => "SFLL-HD0",
            HdPolicy::EighthOfKeys => "SFLL-HDh where h = m/8",
            HdPolicy::QuarterOfKeys => "SFLL-HDh where h = m/4",
            HdPolicy::ThirdOfKeys => "SFLL-HDh where h = m/3",
        }
    }
}

/// One locked instance of the experiment grid.
#[derive(Clone, Debug)]
pub struct LockCase {
    /// The benchmark circuit.
    pub spec: CircuitSpec,
    /// The Hamming-distance policy.
    pub policy: HdPolicy,
    /// The concrete `h`.
    pub h: usize,
    /// Key width.
    pub keys: usize,
    /// The locked circuit (already structurally hashed).
    pub locked: LockedCircuit,
}

impl LockCase {
    /// Builds (generates + locks + optimises) one case of the grid.
    pub fn build(spec: &CircuitSpec, policy: HdPolicy, scale: Scale) -> LockCase {
        let effective = spec.at_scale(scale);
        let original = spec.build(scale);
        let h = policy.h_for(effective.keys);
        let seed = seed_from_name(effective.name) ^ (h as u64) << 32;
        let locked = if h == 0 && matches!(policy, HdPolicy::Zero) {
            // The paper's HD0 circuits use the TTLock structure.
            TtLock::new(effective.keys)
                .with_seed(seed)
                .lock(&original)
                .expect("suite circuits are large enough to lock")
        } else {
            SfllHd::new(effective.keys, h)
                .with_seed(seed)
                .lock(&original)
                .expect("suite circuits are large enough to lock")
        };
        LockCase {
            spec: effective,
            policy,
            h,
            keys: effective.keys,
            locked: locked.optimized(),
        }
    }
}

/// Builds the full 20 circuits × 4 Hamming-distance policies grid (80 locked
/// circuits, as in § VI).
pub fn lock_grid(scale: Scale) -> Vec<LockCase> {
    let mut cases = Vec::with_capacity(TABLE1_CIRCUITS.len() * 4);
    for spec in &TABLE1_CIRCUITS {
        for policy in HdPolicy::all() {
            cases.push(LockCase::build(spec, policy, scale));
        }
    }
    cases
}

/// Builds the grid for a subset of circuits (used by the quick binaries and
/// the criterion benches).
pub fn lock_grid_subset(scale: Scale, names: &[&str]) -> Vec<LockCase> {
    let mut cases = Vec::new();
    for spec in TABLE1_CIRCUITS.iter().filter(|s| names.contains(&s.name)) {
        for policy in HdPolicy::all() {
            cases.push(LockCase::build(spec, policy, scale));
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twenty_circuits_with_paper_sizes() {
        assert_eq!(TABLE1_CIRCUITS.len(), 20);
        let des = TABLE1_CIRCUITS.last().unwrap();
        assert_eq!(des.name, "des");
        assert_eq!(des.inputs, 256);
        assert_eq!(des.keys, 64);
        // Keys never exceed inputs and are capped at 64 as in the paper.
        for spec in &TABLE1_CIRCUITS {
            assert!(spec.keys <= spec.inputs);
            assert!(spec.keys <= 64);
        }
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let spec = &TABLE1_CIRCUITS[2]; // c1908
        let a = spec.build(Scale::Scaled);
        let b = spec.build(Scale::Scaled);
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.num_inputs(), spec.at_scale(Scale::Scaled).inputs);
    }

    #[test]
    fn hd_policies_match_figure5() {
        assert_eq!(HdPolicy::Zero.h_for(64), 0);
        assert_eq!(HdPolicy::EighthOfKeys.h_for(64), 8);
        assert_eq!(HdPolicy::QuarterOfKeys.h_for(64), 16);
        assert_eq!(HdPolicy::ThirdOfKeys.h_for(64), 21);
        assert_eq!(HdPolicy::all().len(), 4);
    }

    #[test]
    fn lock_case_is_correctly_keyed() {
        let case = LockCase::build(&TABLE1_CIRCUITS[0], HdPolicy::EighthOfKeys, Scale::Scaled);
        assert!(case.locked.correct_key_is_functionally_correct(64, 0));
        assert_eq!(case.locked.locked.num_key_inputs(), case.keys);
    }

    #[test]
    fn subset_grid_only_contains_requested_circuits() {
        let cases = lock_grid_subset(Scale::Scaled, &["c432", "c880"]);
        assert_eq!(cases.len(), 8);
        assert!(cases
            .iter()
            .all(|c| c.spec.name == "c432" || c.spec.name == "c880"));
    }
}
