//! End-to-end farm tests: pipes and TCP transports, crash requeue, and the
//! differential invariants the in-process engine gates
//! (`tests/parallel_engine.rs`) carried over to the multi-process farm.
//!
//! Worker processes are the `fall-dist` binary itself (Cargo exposes its
//! test-profile path as `CARGO_BIN_EXE_fall-dist`), so these tests exercise
//! the exact re-exec path production farms use.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use fall::key_confirmation::partitioned_key_search;
use fall::{KeyConfirmationConfig, SimOracle};
use fall_dist::{farm_over_tcp, Farm, FarmConfig, WorkerOptions, WORKER_SENTINEL};
use locking::{LockedCircuit, LockingScheme, SfllHd};
use netlist::random::{generate, RandomCircuitSpec};
use netlist::Netlist;

const PARTITION_BITS: usize = 2;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_fall-dist"))
}

/// The differential workload: a lockable circuit, its activated (key-free)
/// oracle netlist, and the serial reference result.
fn smoke_case() -> (LockedCircuit, Netlist, fall::KeyConfirmationResult) {
    let original = generate(&RandomCircuitSpec::new("dist_farm", 8, 2, 50));
    let locked = SfllHd::new(5, 0)
        .with_seed(2)
        .lock(&original)
        .expect("lock");
    let oracle = SimOracle::new(original.clone());
    let serial = partitioned_key_search(
        &locked.locked,
        &oracle,
        PARTITION_BITS,
        &KeyConfirmationConfig::default(),
    );
    assert!(serial.completed, "serial reference must conclude");
    assert!(serial.key.is_some(), "serial reference must find the key");
    (locked, original, serial)
}

fn base_config(workers: usize) -> FarmConfig {
    FarmConfig {
        workers,
        partition_bits: PARTITION_BITS,
        worker_exe: Some(worker_exe()),
        ..FarmConfig::default()
    }
}

#[test]
fn pipes_farm_recovers_the_serial_key_with_bounded_oracle_traffic() {
    let (locked, original, serial) = smoke_case();
    let farm = Farm::spawn(&locked.locked, &original, &base_config(2)).expect("spawn farm");
    let result = farm.wait();

    assert!(result.completed, "farm run concludes");
    assert_eq!(result.workers, 2);
    assert_eq!(result.workers_crashed, 0);
    assert_eq!(result.regions_requeued, 0);
    let key = result.key.as_ref().expect("farm recovers a key");
    assert!(
        locked.key_is_functionally_correct(key, 200, 4),
        "farm key unlocks the circuit"
    );
    // The invariant the in-process engine gates: cross-process dedup keeps
    // unique oracle traffic within a worker's-worth of the serial count.
    assert!(
        result.unique_oracle_queries <= serial.oracle_queries + result.workers,
        "farm {} vs serial {}",
        result.unique_oracle_queries,
        serial.oracle_queries
    );
}

#[test]
fn drain_all_mode_retires_every_region_deterministically() {
    let (locked, original, _serial) = smoke_case();
    let config = FarmConfig {
        steal: false,
        cancel_on_winner: false,
        ..base_config(2)
    };
    let first = Farm::spawn(&locked.locked, &original, &config)
        .expect("spawn farm")
        .wait();
    assert!(first.completed);
    assert_eq!(
        first.regions_completed as u64, first.regions,
        "drain-all retires every region"
    );
    assert_eq!(first.regions_stolen, 0, "stealing disabled");
    let key = first.key.as_ref().expect("key recovered");
    assert!(locked.key_is_functionally_correct(key, 200, 4));

    // Worker telemetry: every complete frame piggybacks a cumulative
    // snapshot, and the supervisor's farm-wide aggregate is exactly the
    // field-wise sum of each worker's latest snapshot.
    assert_eq!(
        first.stats_reports, first.regions_completed,
        "every complete carries telemetry"
    );
    assert!(
        first.worker_telemetry.iter().all(Option::is_some),
        "both workers reported telemetry"
    );
    let mut summed = sat::SolverStats::default();
    for telemetry in first.worker_telemetry.iter().flatten() {
        summed.absorb(&telemetry.solver);
    }
    assert_eq!(
        first.solver_stats, summed,
        "supervisor aggregate equals the sum of worker-local stats"
    );
    assert!(first.solver_stats.solves > 0, "workers did SAT work");
    assert!(
        first
            .worker_telemetry
            .iter()
            .flatten()
            .map(|telemetry| telemetry.oracle_unique)
            .sum::<u64>()
            > 0,
        "workers reported oracle traffic"
    );
    // No serial-count bound here: drain-all deliberately searches every
    // region, including those the early-stopping serial reference never
    // reached, so its unique-query count is not comparable to serial's.
    // The cancel-on-winner tests above carry that invariant.

    // With fixed round-robin shares, no stealing, no early cancel, and
    // winners that keep draining, every worker's region sequence — and
    // therefore the merged unique-query count — is a pure function of the
    // workload.  This determinism is what lets bench_smoke gate
    // `dist_2w_unique_oracle_queries` at a point value.
    let second = Farm::spawn(&locked.locked, &original, &config)
        .expect("spawn farm")
        .wait();
    assert_eq!(
        second.unique_oracle_queries, first.unique_oracle_queries,
        "drain-all unique-query count is reproducible"
    );
    assert_eq!(second.key, first.key);
}

#[test]
fn sigkill_mid_lease_requeues_the_region_and_recovers_the_key() {
    let (locked, original, serial) = smoke_case();
    let mut config = base_config(3);
    // Worker 0 parks on its first lease long enough for the test to SIGKILL
    // it provably mid-lease; the lease must requeue and a survivor must
    // finish the search.
    config.worker_args = vec![vec![
        "--stall-first-lease-ms".to_string(),
        "60000".to_string(),
    ]];
    let farm = Farm::spawn(&locked.locked, &original, &config).expect("spawn farm");

    let deadline = Instant::now() + Duration::from_secs(120);
    let leased = loop {
        if let Some(region) = farm.leased_region_of(0) {
            break region;
        }
        assert!(Instant::now() < deadline, "worker 0 never received a lease");
        std::thread::sleep(Duration::from_millis(10));
    };

    let status = Command::new("kill")
        .args(["-9", &farm.worker_pid(0).to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "SIGKILL delivered");

    let result = farm.wait();
    assert!(
        result.regions_requeued >= 1,
        "the killed worker's lease (region {leased}) must requeue"
    );
    assert!(result.workers_crashed >= 1);
    let key = result.key.as_ref().expect("survivors recover the key");
    assert!(
        locked.key_is_functionally_correct(key, 200, 4),
        "recovered key equals the serial result functionally"
    );
    assert!(
        result.unique_oracle_queries <= serial.oracle_queries + result.workers,
        "farm {} vs serial {}",
        result.unique_oracle_queries,
        serial.oracle_queries
    );
}

#[test]
fn crash_on_first_lease_hook_exercises_the_requeue_path_deterministically() {
    let (locked, original, _serial) = smoke_case();
    let config = FarmConfig {
        steal: false,
        cancel_on_winner: false,
        worker_args: vec![vec!["--crash-on-first-lease".to_string()]],
        ..base_config(2)
    };
    let result = Farm::spawn(&locked.locked, &original, &config)
        .expect("spawn farm")
        .wait();
    // Worker 0's first grant is deterministically region 0 (requeue lane
    // empty, own share front); it dies holding exactly that lease.
    assert_eq!(result.regions_requeued, 1);
    assert_eq!(result.workers_crashed, 1);
    assert!(result.completed, "survivor retires the whole region space");
    assert_eq!(result.regions_completed as u64, result.regions);
    let key = result.key.as_ref().expect("survivor recovers the key");
    assert!(locked.key_is_functionally_correct(key, 200, 4));
}

#[test]
fn tcp_farm_matches_the_pipes_transport() {
    let (locked, original, serial) = smoke_case();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();

    let mut workers = Vec::new();
    for _ in 0..2 {
        workers.push(
            Command::new(worker_exe())
                .args([WORKER_SENTINEL, "--connect", &addr])
                .spawn()
                .expect("spawn TCP worker"),
        );
    }
    let supervisor =
        farm_over_tcp(&locked.locked, &original, &listener, &base_config(2)).expect("accept");
    let result = supervisor.wait();
    for mut worker in workers {
        let _ = worker.wait();
    }

    assert!(result.completed);
    assert_eq!(result.workers_crashed, 0);
    let key = result.key.as_ref().expect("key recovered over TCP");
    assert!(locked.key_is_functionally_correct(key, 200, 4));
    assert!(result.unique_oracle_queries <= serial.oracle_queries + result.workers);
}

#[test]
fn hung_worker_is_reaped_by_heartbeat_loss_and_its_lease_requeued() {
    let (locked, original, _serial) = smoke_case();
    let mut config = base_config(2);
    // Worker 0 stalls its first lease far past the lease timeout; the
    // monitor must kill it and requeue the lease without outside help.
    config.worker_args = vec![vec![
        "--stall-first-lease-ms".to_string(),
        "120000".to_string(),
    ]];
    config.lease_timeout = Duration::from_millis(1500);
    let result = Farm::spawn(&locked.locked, &original, &config)
        .expect("spawn farm")
        .wait();
    assert!(result.regions_requeued >= 1, "timed-out lease requeued");
    assert!(result.workers_crashed >= 1);
    let key = result.key.as_ref().expect("survivor recovers the key");
    assert!(locked.key_is_functionally_correct(key, 200, 4));
}

/// The options type is exported for TCP workers embedded in other hosts;
/// keep its defaults stable (a frame must fit a whole shipped netlist).
#[test]
fn worker_options_defaults_are_generous_enough_for_netlists() {
    let options = WorkerOptions::default();
    assert!(options.max_frame >= 1 << 20);
    assert!(options.stall_first_lease.is_none());
    assert!(!options.crash_on_first_lease);
}
