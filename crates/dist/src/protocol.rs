//! Wire encoding of the farm protocol.
//!
//! One message is one JSON object on one line (netshim framing — the same
//! transport discipline as `fall-serve`; see `docs/PROTOCOL.md` for the
//! normative specification).  This module converts between
//! [`netshim::Value`] documents and the typed messages the supervisor and
//! worker loops exchange; it performs no I/O.

use fall::dist::IoPair;
use locking::Key;
use netshim::Value;
use sat::SolverStats;

/// Protocol revision carried by the worker's `hello`.
///
/// Version 2 adds the optional `stats` member of `complete` (cumulative
/// worker telemetry) — a pure extension, so version-1 peers interoperate:
/// an old supervisor ignores the member, an old worker never sends it.
pub const PROTOCOL_VERSION: u64 = 2;

/// Cumulative worker telemetry piggybacked on `complete` frames.
///
/// Snapshots are **cumulative over the worker's lifetime**, not per-region
/// deltas: the supervisor keeps the latest snapshot per worker and sums
/// across workers, which makes absorption idempotent (a resent frame
/// replaces, never double-counts) and exact for gauge-like fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// Cumulative [`SolverStats`] of the worker's long-lived session.
    pub solver: SolverStats,
    /// Queries the worker's syncing oracle cache answered locally.
    pub oracle_hits: u64,
    /// Distinct patterns the worker forwarded to its real oracle.
    pub oracle_unique: u64,
}

impl WorkerTelemetry {
    /// Encodes as the wire `stats` object: one member per
    /// [`SolverStats::fields`] entry plus the two oracle counters.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .solver
            .fields()
            .iter()
            .map(|&(name, value)| (name.to_string(), Value::from(value)))
            .collect();
        fields.push(("oracle_hits".to_string(), Value::from(self.oracle_hits)));
        fields.push(("oracle_unique".to_string(), Value::from(self.oracle_unique)));
        Value::object(fields)
    }

    /// Decodes the wire `stats` object.  Unknown members are ignored (a
    /// newer peer may report counters this build does not know), non-numeric
    /// values are rejected.
    pub fn from_value(value: &Value) -> Result<WorkerTelemetry, String> {
        let Some(members) = value.as_object() else {
            return Err("\"stats\" must be an object".into());
        };
        let mut telemetry = WorkerTelemetry::default();
        for (name, member) in members {
            let Some(number) = member.as_u64() else {
                return Err(format!(
                    "stats member {name:?} must be a non-negative integer"
                ));
            };
            match name.as_str() {
                "oracle_hits" => telemetry.oracle_hits = number,
                "oracle_unique" => telemetry.oracle_unique = number,
                other => {
                    // Unknown solver counters are forward-compatibility, not
                    // errors.
                    let _ = telemetry.solver.set_field(other, number);
                }
            }
        }
        Ok(telemetry)
    }
}

/// Renders a bit vector as the wire bitstring (`"0101"`, character `i` =
/// bit `i`).
pub fn bits_to_wire(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Parses a wire bitstring into a bit vector.
pub fn bits_from_wire(text: &str) -> Result<Vec<bool>, String> {
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid bit character {other:?}")),
        })
        .collect()
}

/// Encodes a batch of oracle (input, output) pairs as
/// `[["0101","10"], ...]`.
pub fn pairs_to_value(pairs: &[IoPair]) -> Value {
    Value::Array(
        pairs
            .iter()
            .map(|(input, output)| {
                Value::Array(vec![
                    Value::from(bits_to_wire(input)),
                    Value::from(bits_to_wire(output)),
                ])
            })
            .collect(),
    )
}

/// Decodes the optional `pairs` member of a message (absent = empty).
pub fn pairs_from_message(message: &Value) -> Result<Vec<IoPair>, String> {
    let Some(items) = message.get("pairs") else {
        return Ok(Vec::new());
    };
    let Some(items) = items.as_array() else {
        return Err("\"pairs\" must be an array".into());
    };
    let mut pairs = Vec::with_capacity(items.len());
    for item in items {
        let Some(pair) = item.as_array() else {
            return Err("each pair must be a two-element array".into());
        };
        let [input, output] = pair else {
            return Err("each pair must be a two-element array".into());
        };
        let (Some(input), Some(output)) = (input.as_str(), output.as_str()) else {
            return Err("pair members must be bitstrings".into());
        };
        pairs.push((bits_from_wire(input)?, bits_from_wire(output)?));
    }
    Ok(pairs)
}

/// A message from a worker to the supervisor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerMessage {
    /// First frame after process start: identifies the protocol revision.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u64,
    },
    /// Requests the next region, shipping pairs discovered since the last
    /// round-trip.
    Lease {
        /// Newly-discovered oracle pairs to merge into the shared store.
        pairs: Vec<IoPair>,
    },
    /// Reports the outcome of a leased region (the only way a lease is
    /// retired — a worker that dies mid-lease is detected by EOF or
    /// heartbeat loss, and its lease requeued).
    Complete {
        /// The region the outcome is for.
        region: u64,
        /// What happened in the region.
        outcome: RegionOutcome,
        /// Distinguishing-input iterations spent on the region.
        iterations: usize,
        /// The confirmed key, for [`RegionOutcome::Found`].
        key: Option<Key>,
        /// Newly-discovered oracle pairs.
        pairs: Vec<IoPair>,
        /// Cumulative worker telemetry (protocol ≥ 2; absent from older
        /// workers).  Boxed so the rare `complete` frame does not inflate
        /// the size of every queued `WorkerMessage`.
        stats: Option<Box<WorkerTelemetry>>,
    },
    /// Periodic liveness signal.
    Heartbeat,
}

/// How a leased region concluded, as reported by `complete`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionOutcome {
    /// The region completed and provably contains no key.
    Keyless,
    /// The region confirmed a key (carried in the `key` member).
    Found,
    /// The region hit its iteration/time/conflict budget; the run must be
    /// reported incomplete.
    Unfinished,
    /// The supervisor's `cancel` interrupted the region mid-search.
    Cancelled,
}

impl RegionOutcome {
    /// The stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            RegionOutcome::Keyless => "keyless",
            RegionOutcome::Found => "found",
            RegionOutcome::Unfinished => "unfinished",
            RegionOutcome::Cancelled => "cancelled",
        }
    }

    /// Parses a wire name.
    pub fn parse_str(text: &str) -> Result<RegionOutcome, String> {
        match text {
            "keyless" => Ok(RegionOutcome::Keyless),
            "found" => Ok(RegionOutcome::Found),
            "unfinished" => Ok(RegionOutcome::Unfinished),
            "cancelled" => Ok(RegionOutcome::Cancelled),
            other => Err(format!("unknown region outcome {other:?}")),
        }
    }
}

impl WorkerMessage {
    /// Serialises to one frame.
    pub fn to_frame(&self) -> String {
        match self {
            WorkerMessage::Hello { protocol } => Value::object([
                ("op", Value::from("hello")),
                ("protocol", Value::from(*protocol)),
            ]),
            WorkerMessage::Lease { pairs } => Value::object([
                ("op", Value::from("lease")),
                ("pairs", pairs_to_value(pairs)),
            ]),
            WorkerMessage::Complete {
                region,
                outcome,
                iterations,
                key,
                pairs,
                stats,
            } => {
                let mut fields = vec![
                    ("op".to_string(), Value::from("complete")),
                    ("region".to_string(), Value::from(*region)),
                    ("outcome".to_string(), Value::from(outcome.as_str())),
                    ("iterations".to_string(), Value::from(*iterations)),
                    ("pairs".to_string(), pairs_to_value(pairs)),
                ];
                if let Some(key) = key {
                    fields.push(("key".to_string(), Value::from(bits_to_wire(key.bits()))));
                }
                if let Some(stats) = stats {
                    fields.push(("stats".to_string(), stats.to_value()));
                }
                Value::object(fields)
            }
            WorkerMessage::Heartbeat => Value::object([("op", Value::from("heartbeat"))]),
        }
        .to_string()
    }

    /// Parses one frame.
    pub fn parse(frame: &str) -> Result<WorkerMessage, String> {
        let value = Value::parse(frame)?;
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing \"op\"")?;
        match op {
            "hello" => Ok(WorkerMessage::Hello {
                protocol: value
                    .get("protocol")
                    .and_then(Value::as_u64)
                    .ok_or("hello: missing \"protocol\"")?,
            }),
            "lease" => Ok(WorkerMessage::Lease {
                pairs: pairs_from_message(&value)?,
            }),
            "complete" => {
                let region = value
                    .get("region")
                    .and_then(Value::as_u64)
                    .ok_or("complete: missing \"region\"")?;
                let outcome = RegionOutcome::parse_str(
                    value
                        .get("outcome")
                        .and_then(Value::as_str)
                        .ok_or("complete: missing \"outcome\"")?,
                )?;
                let iterations = value
                    .get("iterations")
                    .and_then(Value::as_u64)
                    .ok_or("complete: missing \"iterations\"")?
                    as usize;
                let key = match value.get("key").and_then(Value::as_str) {
                    Some(text) => {
                        let bits = bits_from_wire(text)?;
                        if bits.is_empty() {
                            return Err("complete: empty key".into());
                        }
                        Some(Key::new(bits))
                    }
                    None => None,
                };
                if outcome == RegionOutcome::Found && key.is_none() {
                    return Err("complete: outcome \"found\" requires a key".into());
                }
                let stats = match value.get("stats") {
                    Some(stats) => Some(Box::new(WorkerTelemetry::from_value(stats)?)),
                    None => None,
                };
                Ok(WorkerMessage::Complete {
                    region,
                    outcome,
                    iterations,
                    key,
                    pairs: pairs_from_message(&value)?,
                    stats,
                })
            }
            "heartbeat" => Ok(WorkerMessage::Heartbeat),
            other => Err(format!("unknown worker op {other:?}")),
        }
    }
}

/// A message from the supervisor to a worker.
#[derive(Clone, Debug, PartialEq)]
pub enum SupervisorMessage {
    /// Reply to `hello`: everything the worker needs to build its session.
    Setup {
        /// The worker's index in the farm (stable for the run).
        worker: usize,
        /// The locked netlist, as `.bench` text.
        locked: String,
        /// The key-free oracle netlist, as `.bench` text — the worker
        /// simulates the activated chip locally behind its syncing cache.
        oracle: String,
        /// Number of fixed key bits (`2^partition_bits` regions).
        partition_bits: usize,
        /// Per-region iteration budget.
        max_iterations: usize,
        /// Per-region wall-clock budget, in milliseconds (0 = none).
        time_limit_ms: u64,
        /// Per-SAT-call conflict budget (absent = none).
        conflict_budget: Option<u64>,
        /// How often the worker must send `heartbeat`.
        heartbeat_ms: u64,
    },
    /// A lease grant: the region to search plus the oracle pairs the worker
    /// has not yet seen (cache-sync delta).
    Region {
        /// The granted region.
        region: u64,
        /// Whether the region came out of another worker's share.
        stolen: bool,
        /// Pairs appended to the shared store since this worker's last sync.
        pairs: Vec<IoPair>,
    },
    /// The region space is retired; the worker should exit cleanly.
    Drained,
    /// The network analogue of `CancelToken`: stop searching immediately.
    Cancel,
}

impl SupervisorMessage {
    /// Serialises to one frame.
    pub fn to_frame(&self) -> String {
        match self {
            SupervisorMessage::Setup {
                worker,
                locked,
                oracle,
                partition_bits,
                max_iterations,
                time_limit_ms,
                conflict_budget,
                heartbeat_ms,
            } => {
                let mut fields = vec![
                    ("op".to_string(), Value::from("setup")),
                    ("worker".to_string(), Value::from(*worker)),
                    ("locked".to_string(), Value::from(locked.as_str())),
                    ("oracle".to_string(), Value::from(oracle.as_str())),
                    ("partition_bits".to_string(), Value::from(*partition_bits)),
                    ("max_iterations".to_string(), Value::from(*max_iterations)),
                    ("time_limit_ms".to_string(), Value::from(*time_limit_ms)),
                    ("heartbeat_ms".to_string(), Value::from(*heartbeat_ms)),
                ];
                if let Some(budget) = conflict_budget {
                    fields.push(("conflict_budget".to_string(), Value::from(*budget)));
                }
                Value::object(fields)
            }
            SupervisorMessage::Region {
                region,
                stolen,
                pairs,
            } => Value::object([
                ("op", Value::from("region")),
                ("region", Value::from(*region)),
                ("stolen", Value::from(*stolen)),
                ("pairs", pairs_to_value(pairs)),
            ]),
            SupervisorMessage::Drained => Value::object([("op", Value::from("drained"))]),
            SupervisorMessage::Cancel => Value::object([("op", Value::from("cancel"))]),
        }
        .to_string()
    }

    /// Parses one frame.
    pub fn parse(frame: &str) -> Result<SupervisorMessage, String> {
        let value = Value::parse(frame)?;
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing \"op\"")?;
        match op {
            "setup" => Ok(SupervisorMessage::Setup {
                worker: value
                    .get("worker")
                    .and_then(Value::as_u64)
                    .ok_or("setup: missing \"worker\"")? as usize,
                locked: value
                    .get("locked")
                    .and_then(Value::as_str)
                    .ok_or("setup: missing \"locked\"")?
                    .to_string(),
                oracle: value
                    .get("oracle")
                    .and_then(Value::as_str)
                    .ok_or("setup: missing \"oracle\"")?
                    .to_string(),
                partition_bits: value
                    .get("partition_bits")
                    .and_then(Value::as_u64)
                    .ok_or("setup: missing \"partition_bits\"")?
                    as usize,
                max_iterations: value
                    .get("max_iterations")
                    .and_then(Value::as_u64)
                    .ok_or("setup: missing \"max_iterations\"")?
                    as usize,
                time_limit_ms: value
                    .get("time_limit_ms")
                    .and_then(Value::as_u64)
                    .ok_or("setup: missing \"time_limit_ms\"")?,
                conflict_budget: value.get("conflict_budget").and_then(Value::as_u64),
                heartbeat_ms: value
                    .get("heartbeat_ms")
                    .and_then(Value::as_u64)
                    .ok_or("setup: missing \"heartbeat_ms\"")?,
            }),
            "region" => Ok(SupervisorMessage::Region {
                region: value
                    .get("region")
                    .and_then(Value::as_u64)
                    .ok_or("region: missing \"region\"")?,
                stolen: value
                    .get("stolen")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                pairs: pairs_from_message(&value)?,
            }),
            "drained" => Ok(SupervisorMessage::Drained),
            "cancel" => Ok(SupervisorMessage::Cancel),
            other => Err(format!("unknown supervisor op {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_messages_round_trip() {
        let messages = [
            WorkerMessage::Hello {
                protocol: PROTOCOL_VERSION,
            },
            WorkerMessage::Lease {
                pairs: vec![(vec![true, false], vec![false])],
            },
            WorkerMessage::Complete {
                region: 3,
                outcome: RegionOutcome::Found,
                iterations: 17,
                key: Some(Key::new(vec![true, false, true])),
                pairs: vec![(vec![false, false], vec![true])],
                stats: None,
            },
            WorkerMessage::Complete {
                region: 1,
                outcome: RegionOutcome::Keyless,
                iterations: 4,
                key: None,
                pairs: Vec::new(),
                stats: Some(Box::new(WorkerTelemetry {
                    solver: SolverStats {
                        conflicts: 41,
                        solves: 7,
                        arena_bytes: 1 << 20,
                        ..SolverStats::default()
                    },
                    oracle_hits: 12,
                    oracle_unique: 5,
                })),
            },
            WorkerMessage::Heartbeat,
        ];
        for message in messages {
            let frame = message.to_frame();
            assert!(!frame.contains('\n'), "{frame}");
            assert_eq!(WorkerMessage::parse(&frame).expect("parse"), message);
        }
    }

    #[test]
    fn supervisor_messages_round_trip() {
        let messages = [
            SupervisorMessage::Setup {
                worker: 1,
                locked: "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n".into(),
                oracle: "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n".into(),
                partition_bits: 2,
                max_iterations: 100,
                time_limit_ms: 5000,
                conflict_budget: Some(1 << 20),
                heartbeat_ms: 250,
            },
            SupervisorMessage::Region {
                region: 2,
                stolen: true,
                pairs: vec![(vec![true], vec![false, true])],
            },
            SupervisorMessage::Drained,
            SupervisorMessage::Cancel,
        ];
        for message in messages {
            let frame = message.to_frame();
            assert!(!frame.contains('\n'), "{frame}");
            assert_eq!(SupervisorMessage::parse(&frame).expect("parse"), message);
        }
    }

    #[test]
    fn malformed_frames_are_rejected_with_reasons() {
        assert!(WorkerMessage::parse("not json").is_err());
        assert!(WorkerMessage::parse("{\"op\":\"nope\"}").is_err());
        // found without a key
        assert!(WorkerMessage::parse(
            "{\"op\":\"complete\",\"region\":0,\"outcome\":\"found\",\"iterations\":1}"
        )
        .is_err());
        assert!(SupervisorMessage::parse("{\"op\":\"region\"}").is_err());
        assert!(bits_from_wire("01x").is_err());
        // stats must be an object of non-negative integers...
        assert!(WorkerMessage::parse(
            "{\"op\":\"complete\",\"region\":0,\"outcome\":\"keyless\",\
             \"iterations\":1,\"stats\":7}"
        )
        .is_err());
        assert!(WorkerMessage::parse(
            "{\"op\":\"complete\",\"region\":0,\"outcome\":\"keyless\",\
             \"iterations\":1,\"stats\":{\"conflicts\":\"many\"}}"
        )
        .is_err());
    }

    #[test]
    fn telemetry_covers_every_solver_stats_field_and_skips_unknown() {
        // Every SolverStats counter must survive the wire round trip — the
        // encoding iterates `fields()`, so this guards the decoder's
        // `set_field` path.
        let mut telemetry = WorkerTelemetry::default();
        for (index, (name, _)) in WorkerTelemetry::default()
            .solver
            .fields()
            .iter()
            .enumerate()
        {
            assert!(telemetry.solver.set_field(name, index as u64 + 1));
        }
        telemetry.oracle_hits = 99;
        telemetry.oracle_unique = 44;
        let decoded = WorkerTelemetry::from_value(&telemetry.to_value()).expect("round trip");
        assert_eq!(decoded, telemetry);

        // Unknown members from a newer peer are ignored, not fatal.
        let forward = WorkerTelemetry::from_value(
            &Value::parse("{\"conflicts\":3,\"from_the_future\":8}").expect("json"),
        )
        .expect("forward compatible");
        assert_eq!(forward.solver.conflicts, 3);
    }
}
