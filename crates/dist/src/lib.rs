//! Distributed key-search farm for the FALL attacks.
//!
//! `fall-dist` splits [`fall::parallel`]'s §VI-D partitioned key search
//! across OS processes: a **supervisor** owns the global region queue
//! ([`fall::dist::RegionBoard`]) and the merged cross-process oracle cache
//! ([`fall::dist::PairStore`]), and N **workers** each run one long-lived
//! primed [`fall::AttackSession`], pulling key-space regions over a
//! line-delimited JSON wire (the same `netshim` framing as `fall-serve`;
//! protocol specified in `docs/PROTOCOL.md`).  Two transports share every
//! line of supervisor and worker code:
//!
//! * **Pipes** ([`Farm::spawn`]) — workers are child processes of the
//!   supervisor speaking over stdin/stdout.  Worker processes are re-execs
//!   of the current executable: any binary that links this crate and calls
//!   [`maybe_run_worker_process`] at the top of `main` can host a farm.
//! * **TCP** ([`farm_over_tcp`] / [`connect_worker`]) — the supervisor
//!   accepts worker connections on a listener; workers are started
//!   independently (any machine) with `fall-dist __fall-dist-worker
//!   --connect HOST:PORT`.
//!
//! The protocol carries region lease/complete messages with work-stealing,
//! a network analogue of [`fall::CancelToken`] (the supervisor broadcasts
//! `cancel` on the first winner; workers bridge it into their solver's
//! interrupt flag mid-search), worker heartbeats with crash/timeout
//! detection and leased-region requeue (a region is only retired on a
//! `complete` acknowledgement), and batched oracle-cache sync (workers ship
//! newly-discovered (input, output) pairs each round-trip; the supervisor
//! merges them and piggybacks deltas on lease replies, so farm-wide unique
//! oracle queries stay bounded near the single-process count).

#![deny(missing_docs)]

pub mod protocol;
pub mod supervisor;
pub mod worker;

use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fall::KeyConfirmationConfig;
use netlist::{bench_format, Netlist};

pub use supervisor::{FarmResult, Supervisor, WorkerLink};
pub use worker::{run_worker, WorkerOptions};

/// The `argv[1]` sentinel that turns a re-exec of the current executable
/// into a farm worker (see [`maybe_run_worker_process`]).
pub const WORKER_SENTINEL: &str = "__fall-dist-worker";

/// Configuration of a farm run.
#[derive(Clone, Debug)]
pub struct FarmConfig {
    /// Worker processes to run.
    pub workers: usize,
    /// Fixed key bits: the key space splits into `2^partition_bits` regions.
    /// Clamped to the key width; must stay `< 64` after clamping.
    pub partition_bits: usize,
    /// Allow a worker that drained its own share to steal from a peer's.
    /// Disable (together with `cancel_on_winner`) for runs whose per-worker
    /// region sequences must be deterministic, e.g. gated benchmarks.
    pub steal: bool,
    /// Broadcast `cancel` the moment a worker confirms a key.  Disable to
    /// drain every region regardless (deterministic counters).
    pub cancel_on_winner: bool,
    /// Per-region key-confirmation budgets, shipped to every worker.
    /// (`screen_words` is not forwarded; workers always run the plain
    /// scalar-query trajectory.)
    pub confirm: KeyConfirmationConfig,
    /// Worker heartbeat period.
    pub heartbeat: Duration,
    /// Silence longer than this kills the worker and requeues its lease.
    pub heartbeat_timeout: Duration,
    /// A single region search longer than this kills the worker and
    /// requeues its lease.
    pub lease_timeout: Duration,
    /// Maximum accepted frame length on either side.
    pub max_frame: usize,
    /// Executable to spawn pipes-mode workers from; `None` re-execs the
    /// current executable (which must call [`maybe_run_worker_process`]).
    pub worker_exe: Option<PathBuf>,
    /// Extra argv appended to worker `i`'s command line (test hooks such as
    /// `--crash-on-first-lease`); missing entries mean no extra args.
    pub worker_args: Vec<Vec<String>>,
}

impl Default for FarmConfig {
    fn default() -> FarmConfig {
        FarmConfig {
            workers: 2,
            partition_bits: 2,
            steal: true,
            cancel_on_winner: true,
            confirm: KeyConfirmationConfig::default(),
            heartbeat: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_secs(10),
            lease_timeout: Duration::from_secs(300),
            max_frame: 64 << 20,
            worker_exe: None,
            worker_args: Vec::new(),
        }
    }
}

/// Clamps the partition to the key width, mirroring the in-process engine.
fn effective_partition_bits(locked: &Netlist, requested: usize) -> usize {
    requested.min(locked.num_key_inputs())
}

/// A running pipes-mode farm: the supervisor plus its worker child
/// processes.
pub struct Farm {
    supervisor: Supervisor,
    children: Vec<Arc<Mutex<Child>>>,
    pids: Vec<u32>,
}

impl Farm {
    /// Spawns `config.workers` child processes and starts the supervisor
    /// over their stdin/stdout pipes.
    ///
    /// `locked` is the locked netlist under attack; `oracle` is the
    /// key-free netlist of the activated chip, which each worker simulates
    /// locally behind the farm's syncing cache.  Both are shipped to the
    /// workers as `.bench` text in their `setup` frame.
    ///
    /// # Panics
    ///
    /// Panics if the clamped partition width reaches 64 bits (an
    /// unenumerable region space — the serial and in-process engines reject
    /// it the same way).
    ///
    /// # Errors
    ///
    /// Propagates process-spawn failures.
    pub fn spawn(locked: &Netlist, oracle: &Netlist, config: &FarmConfig) -> io::Result<Farm> {
        let partition_bits = effective_partition_bits(locked, config.partition_bits);
        assert!(partition_bits < 64, "unenumerable partition");
        let exe = match &config.worker_exe {
            Some(exe) => exe.clone(),
            None => std::env::current_exe()?,
        };
        let workers = config.workers.max(1);
        let mut links = Vec::with_capacity(workers);
        let mut children = Vec::with_capacity(workers);
        let mut pids = Vec::with_capacity(workers);
        for worker in 0..workers {
            let mut command = Command::new(&exe);
            command.arg(WORKER_SENTINEL);
            command.arg("--max-frame").arg(config.max_frame.to_string());
            if let Some(extra) = config.worker_args.get(worker) {
                command.args(extra);
            }
            command
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            let mut child = command.spawn()?;
            let stdout = child.stdout.take().expect("piped stdout");
            let stdin = child.stdin.take().expect("piped stdin");
            let pid = child.id();
            let child = Arc::new(Mutex::new(child));
            let kill_handle = Arc::clone(&child);
            links.push(WorkerLink {
                reader: Box::new(stdout),
                writer: Box::new(stdin),
                kill: Box::new(move || {
                    let _ = kill_handle.lock().expect("child poisoned").kill();
                }),
                pid: Some(pid),
            });
            children.push(child);
            pids.push(pid);
        }
        let supervisor = Supervisor::start(
            links,
            bench_format::write(locked),
            bench_format::write(oracle),
            partition_bits,
            config,
        );
        Ok(Farm {
            supervisor,
            children,
            pids,
        })
    }

    /// OS process id of worker `index`.
    pub fn worker_pid(&self, index: usize) -> u32 {
        self.pids[index]
    }

    /// The region worker `index` currently holds a lease on, if any — a
    /// live view, usable while the run is in flight.
    pub fn leased_region_of(&self, index: usize) -> Option<u64> {
        self.supervisor.leased_region(index)
    }

    /// Blocks until the run concludes, reaps every child, and returns the
    /// aggregated result.
    pub fn wait(self) -> FarmResult {
        let result = self.supervisor.wait();
        for child in self.children {
            let _ = child.lock().expect("child poisoned").wait();
        }
        result
    }
}

/// Starts a TCP-mode supervisor: accepts `config.workers` worker
/// connections on `listener`, then runs the same supervisor the pipes mode
/// uses.  Workers connect with [`connect_worker`] (or
/// `fall-dist __fall-dist-worker --connect HOST:PORT`); their farm index is
/// their accept order.
///
/// # Errors
///
/// Propagates accept/clone failures while assembling the worker links.
pub fn farm_over_tcp(
    locked: &Netlist,
    oracle: &Netlist,
    listener: &TcpListener,
    config: &FarmConfig,
) -> io::Result<Supervisor> {
    let partition_bits = effective_partition_bits(locked, config.partition_bits);
    assert!(partition_bits < 64, "unenumerable partition");
    let workers = config.workers.max(1);
    let mut links = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (stream, _) = listener.accept()?;
        let reader = stream.try_clone()?;
        let kill_stream = stream.try_clone()?;
        links.push(WorkerLink {
            reader: Box::new(reader),
            writer: Box::new(stream),
            kill: Box::new(move || {
                let _ = kill_stream.shutdown(std::net::Shutdown::Both);
            }),
            pid: None,
        });
    }
    Ok(Supervisor::start(
        links,
        bench_format::write(locked),
        bench_format::write(oracle),
        partition_bits,
        config,
    ))
}

/// Runs a TCP-mode worker: connects to a [`farm_over_tcp`] supervisor and
/// drains regions until drained, cancelled, or disconnected.
///
/// # Errors
///
/// Returns connection and protocol errors as strings.
pub fn connect_worker(addr: &str, options: WorkerOptions) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|error| error.to_string())?;
    let reader = stream.try_clone().map_err(|error| error.to_string())?;
    run_worker(reader, stream, options)
}

/// Re-exec entry point for pipes-mode workers: call this at the **top** of
/// `main` in every binary that spawns a [`Farm`] (the `fall-dist` binary,
/// benches, test binaries).  When the process was started with
/// [`WORKER_SENTINEL`] as its first argument it runs the worker loop on
/// stdin/stdout (or the `--connect` socket) and **exits**; otherwise it
/// returns immediately.
///
/// Recognised worker flags: `--connect HOST:PORT`, `--max-frame BYTES`,
/// `--stall-first-lease-ms N`, `--crash-on-first-lease`.
pub fn maybe_run_worker_process() {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some(WORKER_SENTINEL) {
        return;
    }
    let mut options = WorkerOptions::default();
    let mut connect: Option<String> = None;
    let value_of = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("fall-dist worker: {flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--connect" => connect = Some(value_of("--connect", &mut args)),
            "--max-frame" => {
                options.max_frame =
                    value_of("--max-frame", &mut args)
                        .parse()
                        .unwrap_or_else(|_| {
                            eprintln!("fall-dist worker: invalid --max-frame");
                            std::process::exit(2);
                        });
            }
            "--stall-first-lease-ms" => {
                let millis: u64 = value_of("--stall-first-lease-ms", &mut args)
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("fall-dist worker: invalid --stall-first-lease-ms");
                        std::process::exit(2);
                    });
                options.stall_first_lease = Some(Duration::from_millis(millis));
            }
            "--crash-on-first-lease" => options.crash_on_first_lease = true,
            other => {
                eprintln!("fall-dist worker: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let outcome = match connect {
        Some(addr) => connect_worker(&addr, options),
        None => run_worker(io::stdin(), io::stdout(), options),
    };
    match outcome {
        Ok(()) => std::process::exit(0),
        Err(error) => {
            eprintln!("fall-dist worker: {error}");
            std::process::exit(1);
        }
    }
}
