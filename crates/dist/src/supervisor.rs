//! The farm supervisor: region scheduling, cache merging, liveness.
//!
//! A [`Supervisor`] owns one reader thread per worker link plus a monitor
//! thread.  All scheduling state — the [`fall::dist::RegionBoard`], the
//! merged [`fall::dist::PairStore`], per-worker sync positions and
//! heartbeat/lease clocks — lives behind one mutex; reader threads mutate it
//! as messages arrive, so the supervisor itself has no event loop.
//! Termination is structural: the run is over exactly when every reader
//! thread has seen EOF (workers exit after `drained`, their final
//! `complete`, or a `cancel`), and a worker that *cannot* produce EOF —
//! hung, or its transport wedged — is killed by the monitor thread when its
//! heartbeat or lease clock expires, which forces the EOF.

use std::io::{Read, Write};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use fall::dist::{Lease, PairStore, RegionBoard};
use fall::service::MetricSample;
use fall::KeyConfirmationConfig;
use locking::Key;
use netshim::{write_line, LineReader};
use sat::SolverStats;

use crate::protocol::{
    RegionOutcome, SupervisorMessage, WorkerMessage, WorkerTelemetry, PROTOCOL_VERSION,
};
use crate::FarmConfig;

/// One worker's transport, as the supervisor sees it: where its messages
/// come from, where replies go, and a way to force its death.
pub struct WorkerLink {
    /// The worker's outbound stream (child stdout, or the TCP socket).
    pub reader: Box<dyn Read + Send>,
    /// The worker's inbound stream (child stdin, or the TCP socket).
    pub writer: Box<dyn Write + Send>,
    /// Best-effort terminate: kill the child process / shut the socket down.
    /// Invoked by the monitor on heartbeat or lease timeout; must make the
    /// `reader` reach EOF.
    pub kill: Box<dyn FnMut() + Send>,
    /// The worker's OS process id, when the transport knows it.
    pub pid: Option<u32>,
}

/// The outcome of a farm run.
#[derive(Clone, Debug)]
pub struct FarmResult {
    /// The confirmed key, or `None` if no region contained one.
    pub key: Option<Key>,
    /// `true` if the search finished: a key was confirmed, or every region
    /// was retired keyless (crashed workers' leases included — a requeued
    /// region completed by a survivor still counts).  `false` when a region
    /// hit its budgets, the run was cancelled with regions unsettled, or
    /// every worker died.
    pub completed: bool,
    /// Distinguishing-input iterations summed across all workers.
    pub iterations: usize,
    /// Distinct input patterns in the supervisor's merged oracle store — the
    /// farm-wide unique oracle-query count once every worker has synced.
    pub unique_oracle_queries: usize,
    /// Total regions in the partition (`2^partition_bits`).
    pub regions: u64,
    /// Regions retired by a `complete` acknowledgement (any outcome).
    pub regions_completed: usize,
    /// Mid-flight leases returned to the queue because their worker died.
    pub regions_requeued: usize,
    /// Leases granted out of another worker's share (work-stealing).
    pub regions_stolen: usize,
    /// Workers the farm started with.
    pub workers: usize,
    /// Workers that died owing work (crash, kill, or timeout mid-lease).
    pub workers_crashed: usize,
    /// Farm-wide [`SolverStats`] aggregate: the field-wise sum of the latest
    /// cumulative telemetry snapshot of every worker that reported one.
    pub solver_stats: SolverStats,
    /// The latest telemetry snapshot per worker (`None` for a worker that
    /// never completed a region, e.g. one that crashed on its first lease or
    /// spoke protocol version 1).
    pub worker_telemetry: Vec<Option<WorkerTelemetry>>,
    /// `complete` frames that carried a `stats` member.
    pub stats_reports: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl FarmResult {
    /// Renders the end-of-run counters as the `dist_*` metric surface (the
    /// same dialect as `AttackService::metrics`), including the farm-wide
    /// aggregated worker [`SolverStats`] as `dist_sat_<field>` — ready for
    /// [`fall::trace::prometheus_text`] or a `MetricReport`.
    pub fn metric_samples(&self) -> Vec<MetricSample> {
        let mut samples = Vec::new();
        let mut push = |name: String, value: f64| {
            samples.push(MetricSample {
                name,
                value,
                higher_is_better: false,
            });
        };
        push("dist_workers".into(), self.workers as f64);
        push("dist_workers_crashed".into(), self.workers_crashed as f64);
        push("dist_regions_total".into(), self.regions as f64);
        push(
            "dist_regions_completed".into(),
            self.regions_completed as f64,
        );
        push("dist_regions_requeued".into(), self.regions_requeued as f64);
        push("dist_regions_stolen".into(), self.regions_stolen as f64);
        push("dist_iterations".into(), self.iterations as f64);
        push(
            "dist_unique_oracle_queries".into(),
            self.unique_oracle_queries as f64,
        );
        push("dist_stats_reports".into(), self.stats_reports as f64);
        push("dist_elapsed_s".into(), self.elapsed.as_secs_f64());
        for (field, value) in self.solver_stats.fields() {
            push(format!("dist_sat_{field}"), value as f64);
        }
        samples
    }
}

/// Scheduling state shared by the reader threads and the monitor.
struct State {
    board: RegionBoard,
    pairs: PairStore,
    /// Per-worker position in the pair store's delta log: everything before
    /// it has already been shipped to (or came from) that worker.
    sync_pos: Vec<usize>,
    /// Workers whose lease request is waiting for the queue to refill.
    parked: Vec<bool>,
    winner: Option<Key>,
    exhausted: bool,
    cancelled_regions: usize,
    iterations: usize,
    workers_crashed: usize,
    /// Latest cumulative telemetry per worker.  Replacement, not addition:
    /// snapshots are cumulative, so absorbing a frame is idempotent and the
    /// farm aggregate is exactly the sum of the latest snapshots.
    telemetry: Vec<Option<WorkerTelemetry>>,
    /// `complete` frames that carried telemetry.
    stats_reports: usize,
    cancel_sent: bool,
    last_heartbeat: Vec<Instant>,
    lease_start: Vec<Option<Instant>>,
    live: Vec<bool>,
}

/// Everything the threads share.
struct Shared {
    state: Mutex<State>,
    writers: Vec<Mutex<Box<dyn Write + Send>>>,
    kills: Vec<Mutex<Box<dyn FnMut() + Send>>>,
    config: SetupParams,
}

/// The per-run constants shipped in `setup` frames.
struct SetupParams {
    locked: String,
    oracle: String,
    partition_bits: usize,
    confirm: KeyConfirmationConfig,
    heartbeat: Duration,
}

/// A running farm supervisor.  Created by [`Supervisor::start`]; consume
/// with [`Supervisor::wait`].
pub struct Supervisor {
    shared: Arc<Shared>,
    readers: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    monitor_stop: Arc<std::sync::atomic::AtomicBool>,
    regions: u64,
    workers: usize,
    started: Instant,
}

impl Supervisor {
    /// Starts the supervisor over already-established worker links.
    ///
    /// `locked` and `oracle` are `.bench` netlist texts shipped verbatim in
    /// each worker's `setup`.  `partition_bits` must already be clamped to
    /// the key width and `< 64` (the farm front ends guarantee this).
    pub fn start(
        links: Vec<WorkerLink>,
        locked: String,
        oracle: String,
        partition_bits: usize,
        config: &FarmConfig,
    ) -> Supervisor {
        let workers = links.len();
        assert!(workers > 0, "a farm needs at least one worker");
        assert!(partition_bits < 64, "unenumerable partition");
        let regions = 1u64 << partition_bits;
        let now = Instant::now();

        let mut readers_io = Vec::with_capacity(workers);
        let mut writers = Vec::with_capacity(workers);
        let mut kills = Vec::with_capacity(workers);
        for link in links {
            readers_io.push(link.reader);
            writers.push(Mutex::new(link.writer));
            kills.push(Mutex::new(link.kill));
        }

        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                board: RegionBoard::new(regions, workers, config.steal),
                pairs: PairStore::new(),
                sync_pos: vec![0; workers],
                parked: vec![false; workers],
                winner: None,
                exhausted: false,
                cancelled_regions: 0,
                iterations: 0,
                workers_crashed: 0,
                telemetry: vec![None; workers],
                stats_reports: 0,
                cancel_sent: false,
                last_heartbeat: vec![now; workers],
                lease_start: vec![None; workers],
                live: vec![true; workers],
            }),
            writers,
            kills,
            config: SetupParams {
                locked,
                oracle,
                partition_bits,
                confirm: config.confirm.clone(),
                heartbeat: config.heartbeat,
            },
        });

        let cancel_on_winner = config.cancel_on_winner;
        let max_frame = config.max_frame;
        let readers = readers_io
            .into_iter()
            .enumerate()
            .map(|(worker, reader)| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    reader_loop(&shared, worker, reader, max_frame, cancel_on_winner);
                })
            })
            .collect();

        let monitor_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let monitor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&monitor_stop);
            let heartbeat_timeout = config.heartbeat_timeout;
            let lease_timeout = config.lease_timeout;
            let tick = (config.heartbeat / 2).max(Duration::from_millis(10));
            Some(thread::spawn(move || {
                monitor_loop(&shared, &stop, tick, heartbeat_timeout, lease_timeout);
            }))
        };

        Supervisor {
            shared,
            readers,
            monitor,
            monitor_stop,
            regions,
            workers,
            started: now,
        }
    }

    /// The region `worker` currently holds a lease on, if any — live view,
    /// usable while the run is in flight (the crash tests poll this to kill
    /// a worker provably mid-lease).
    pub fn leased_region(&self, worker: usize) -> Option<u64> {
        self.shared
            .state
            .lock()
            .expect("farm state poisoned")
            .board
            .leased(worker)
    }

    /// Blocks until every worker's stream reaches EOF and returns the
    /// aggregated result.
    pub fn wait(mut self) -> FarmResult {
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
        self.monitor_stop
            .store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        let state = self.shared.state.lock().expect("farm state poisoned");
        let completed = state.winner.is_some()
            || (!state.exhausted && state.cancelled_regions == 0 && state.board.done());
        FarmResult {
            key: state.winner.clone(),
            completed,
            iterations: state.iterations,
            unique_oracle_queries: state.pairs.unique(),
            regions: self.regions,
            regions_completed: state.board.completed(),
            regions_requeued: state.board.requeued(),
            regions_stolen: state.board.stolen(),
            workers: self.workers,
            workers_crashed: state.workers_crashed,
            solver_stats: aggregate_stats(&state.telemetry),
            worker_telemetry: state.telemetry.clone(),
            stats_reports: state.stats_reports,
            elapsed: self.started.elapsed(),
        }
    }

    /// Snapshots the farm's live metric surface — usable mid-run, the
    /// supervisor-side analogue of `AttackService::metrics`.
    ///
    /// Farm-wide gauges (`dist_*`), the aggregated worker [`SolverStats`]
    /// (`dist_sat_<field>`, summed over the latest cumulative snapshot of
    /// each reporting worker), and per-worker lease/liveness/telemetry
    /// gauges (`dist_worker<i>_*`).
    pub fn status(&self) -> Vec<MetricSample> {
        let state = self.shared.state.lock().expect("farm state poisoned");
        let mut samples = Vec::new();
        let mut push = |name: String, value: f64| {
            samples.push(MetricSample {
                name,
                value,
                higher_is_better: false,
            });
        };
        push("dist_workers".into(), self.workers as f64);
        push(
            "dist_workers_live".into(),
            state.live.iter().filter(|&&l| l).count() as f64,
        );
        push("dist_workers_crashed".into(), state.workers_crashed as f64);
        push(
            "dist_workers_parked".into(),
            state.parked.iter().filter(|&&p| p).count() as f64,
        );
        push("dist_regions_total".into(), self.regions as f64);
        push(
            "dist_regions_completed".into(),
            state.board.completed() as f64,
        );
        push(
            "dist_regions_requeued".into(),
            state.board.requeued() as f64,
        );
        push("dist_regions_stolen".into(), state.board.stolen() as f64);
        push("dist_iterations".into(), state.iterations as f64);
        push(
            "dist_unique_oracle_queries".into(),
            state.pairs.unique() as f64,
        );
        push("dist_stats_reports".into(), state.stats_reports as f64);
        push("dist_uptime_s".into(), self.started.elapsed().as_secs_f64());
        for (field, value) in aggregate_stats(&state.telemetry).fields() {
            push(format!("dist_sat_{field}"), value as f64);
        }
        for (worker, telemetry) in state.telemetry.iter().enumerate() {
            push(
                format!("dist_worker{worker}_live"),
                f64::from(u8::from(state.live[worker])),
            );
            push(
                format!("dist_worker{worker}_leased"),
                f64::from(u8::from(state.board.leased(worker).is_some())),
            );
            if let Some(telemetry) = telemetry {
                push(
                    format!("dist_worker{worker}_conflicts"),
                    telemetry.solver.conflicts as f64,
                );
                push(
                    format!("dist_worker{worker}_solves"),
                    telemetry.solver.solves as f64,
                );
                push(
                    format!("dist_worker{worker}_oracle_unique"),
                    telemetry.oracle_unique as f64,
                );
                push(
                    format!("dist_worker{worker}_oracle_hits"),
                    telemetry.oracle_hits as f64,
                );
            }
        }
        samples
    }
}

/// The farm-wide aggregate: field-wise sum of the latest cumulative snapshot
/// of every worker that reported telemetry.
fn aggregate_stats(telemetry: &[Option<WorkerTelemetry>]) -> SolverStats {
    let mut aggregate = SolverStats::default();
    for snapshot in telemetry.iter().flatten() {
        aggregate.absorb(&snapshot.solver);
    }
    aggregate
}

/// Sends one frame to `worker`, ignoring transport errors (a dead worker's
/// EOF is handled by its reader thread; writes to it are harmless no-ops).
fn send(shared: &Shared, worker: usize, message: &SupervisorMessage) {
    let mut writer = shared.writers[worker].lock().expect("writer poisoned");
    let _ = write_line(&mut *writer, &message.to_frame());
}

/// Broadcasts `cancel` to every worker, once.  Caller holds the state lock.
fn broadcast_cancel(shared: &Shared, state: &mut State) {
    if state.cancel_sent {
        return;
    }
    state.cancel_sent = true;
    for worker in 0..shared.writers.len() {
        send(shared, worker, &SupervisorMessage::Cancel);
    }
}

/// Grants a lease to `worker` (or parks/drains it).  Caller holds the state
/// lock; replies are sent inline.
fn grant(shared: &Shared, state: &mut State, worker: usize) {
    if state.cancel_sent {
        // The run is being torn down: let the requester exit.
        send(shared, worker, &SupervisorMessage::Drained);
        return;
    }
    match state.board.lease(worker) {
        Lease::Grant { region, stolen } => {
            let pairs = state.pairs.delta_since(state.sync_pos[worker]).to_vec();
            state.sync_pos[worker] = state.pairs.log_len();
            state.lease_start[worker] = Some(Instant::now());
            state.parked[worker] = false;
            send(
                shared,
                worker,
                &SupervisorMessage::Region {
                    region,
                    stolen,
                    pairs,
                },
            );
        }
        Lease::Parked => state.parked[worker] = true,
        Lease::Drained => {
            state.parked[worker] = false;
            send(shared, worker, &SupervisorMessage::Drained);
        }
    }
}

/// Re-offers leases to every parked worker after the queue changed (a
/// completion freed the run's end condition, or a crash requeued regions).
fn flush_parked(shared: &Shared, state: &mut State) {
    for worker in 0..shared.writers.len() {
        if state.parked[worker] && state.live[worker] {
            grant(shared, state, worker);
        }
    }
}

/// Terminates `worker` out-of-band (protocol violation or timeout).
fn kill_worker(shared: &Shared, worker: usize) {
    let mut kill = shared.kills[worker].lock().expect("kill handle poisoned");
    kill();
}

fn reader_loop(
    shared: &Shared,
    worker: usize,
    reader: Box<dyn Read + Send>,
    max_frame: usize,
    cancel_on_winner: bool,
) {
    let mut lines = LineReader::new(reader, max_frame);
    while let Ok(Some(line)) = lines.read_line() {
        let message = match WorkerMessage::parse(&line) {
            Ok(message) => message,
            Err(_) => {
                // A worker speaking garbage is indistinguishable from a
                // corrupted transport: kill it and let the EOF path requeue
                // its lease.
                kill_worker(shared, worker);
                break;
            }
        };
        let mut state = shared.state.lock().expect("farm state poisoned");
        state.last_heartbeat[worker] = Instant::now();
        match message {
            WorkerMessage::Hello { protocol } => {
                if protocol != PROTOCOL_VERSION {
                    drop(state);
                    kill_worker(shared, worker);
                    break;
                }
                let setup = SupervisorMessage::Setup {
                    worker,
                    locked: shared.config.locked.clone(),
                    oracle: shared.config.oracle.clone(),
                    partition_bits: shared.config.partition_bits,
                    max_iterations: shared.config.confirm.max_iterations,
                    time_limit_ms: shared
                        .config
                        .confirm
                        .time_limit
                        .map_or(0, |limit| limit.as_millis() as u64),
                    conflict_budget: shared.config.confirm.conflict_budget,
                    heartbeat_ms: shared.config.heartbeat.as_millis() as u64,
                };
                drop(state);
                send(shared, worker, &setup);
            }
            WorkerMessage::Lease { pairs } => {
                state.pairs.merge(pairs);
                if state.board.leased(worker).is_some() {
                    // Protocol violation: lease while holding a lease.
                    drop(state);
                    kill_worker(shared, worker);
                    break;
                }
                grant(shared, &mut state, worker);
            }
            WorkerMessage::Complete {
                region,
                outcome,
                iterations,
                key,
                pairs,
                stats,
            } => {
                if state.board.leased(worker) != Some(region) {
                    drop(state);
                    kill_worker(shared, worker);
                    break;
                }
                state.pairs.merge(pairs);
                state.iterations += iterations;
                if let Some(stats) = stats {
                    state.telemetry[worker] = Some(*stats);
                    state.stats_reports += 1;
                }
                state.lease_start[worker] = None;
                state.board.complete(worker, region);
                match outcome {
                    RegionOutcome::Keyless => {}
                    RegionOutcome::Found => {
                        if state.winner.is_none() {
                            state.winner = key;
                        }
                        if cancel_on_winner {
                            broadcast_cancel(shared, &mut state);
                        }
                    }
                    RegionOutcome::Unfinished => {
                        state.exhausted = true;
                        broadcast_cancel(shared, &mut state);
                    }
                    RegionOutcome::Cancelled => state.cancelled_regions += 1,
                }
                flush_parked(shared, &mut state);
            }
            WorkerMessage::Heartbeat => {}
        }
    }
    // EOF (clean exit, crash, or kill): reclaim whatever the worker owed.
    // Dying while *holding a lease* is a crash — a region was at risk and
    // must requeue.  Exiting with undealt regions still in the share is the
    // normal shape of a cancelled run, not a crash.
    let mut state = shared.state.lock().expect("farm state poisoned");
    state.live[worker] = false;
    state.parked[worker] = false;
    let crashed = state.board.leased(worker).is_some();
    state.board.fail_worker(worker);
    if crashed {
        state.workers_crashed += 1;
    }
    flush_parked(shared, &mut state);
}

fn monitor_loop(
    shared: &Shared,
    stop: &std::sync::atomic::AtomicBool,
    tick: Duration,
    heartbeat_timeout: Duration,
    lease_timeout: Duration,
) {
    while !stop.load(std::sync::atomic::Ordering::SeqCst) {
        thread::sleep(tick);
        let expired: Vec<usize> = {
            let state = shared.state.lock().expect("farm state poisoned");
            (0..shared.writers.len())
                .filter(|&worker| {
                    state.live[worker]
                        && (state.last_heartbeat[worker].elapsed() > heartbeat_timeout
                            || state.lease_start[worker]
                                .is_some_and(|start| start.elapsed() > lease_timeout))
                })
                .collect()
        };
        for worker in expired {
            // Forcing the transport closed makes the worker's reader thread
            // observe EOF, which requeues its lease — the same path a crash
            // takes, so timeouts and crashes are handled identically.
            kill_worker(shared, worker);
        }
    }
}
