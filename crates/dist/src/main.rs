//! The `fall-dist` binary: supervise a distributed key-search farm.
//!
//! ```text
//! fall-dist --locked FILE.bench --oracle FILE.bench
//!           [--workers N] [--partition-bits N]
//!           [--no-steal] [--no-cancel-on-winner]
//!           [--listen HOST:PORT]
//!           [--max-iterations N] [--time-limit-ms N]
//!           [--heartbeat-ms N] [--heartbeat-timeout-ms N] [--lease-timeout-ms N]
//!           [--metrics-out FILE] [--trace-out FILE]
//! ```
//!
//! By default workers are child processes over stdin/stdout pipes (re-execs
//! of this binary).  With `--listen` the supervisor instead waits for
//! `--workers` TCP connections from independently-started workers:
//!
//! ```text
//! fall-dist __fall-dist-worker --connect HOST:PORT
//! ```
//!
//! The result is printed as one JSON line (the farm counters gated by the
//! bench suite), plus a human summary on stderr.

use std::net::TcpListener;
use std::time::Duration;

use fall_dist::{farm_over_tcp, maybe_run_worker_process, Farm, FarmConfig, FarmResult};
use netlist::bench_format;
use netshim::Value;

fn usage() -> ! {
    eprintln!(
        "usage: fall-dist --locked FILE.bench --oracle FILE.bench [--workers N] \
         [--partition-bits N] [--no-steal] [--no-cancel-on-winner] [--listen HOST:PORT] \
         [--max-iterations N] [--time-limit-ms N] [--heartbeat-ms N] \
         [--heartbeat-timeout-ms N] [--lease-timeout-ms N] \
         [--metrics-out FILE] [--trace-out FILE]\n\
         \n\
         worker mode (started by the supervisor, or manually for --listen farms):\n\
         fall-dist __fall-dist-worker [--connect HOST:PORT] [--max-frame BYTES]"
    );
    std::process::exit(2);
}

fn parse_value<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let Some(text) = args.next() else {
        eprintln!("fall-dist: {flag} requires a value");
        usage();
    };
    let Ok(value) = text.parse() else {
        eprintln!("fall-dist: invalid value {text:?} for {flag}");
        usage();
    };
    value
}

fn result_json(result: &FarmResult) -> String {
    Value::object([
        (
            "key",
            match &result.key {
                Some(key) => Value::from(fall_dist::protocol::bits_to_wire(key.bits())),
                None => Value::Null,
            },
        ),
        ("completed", Value::from(result.completed)),
        ("iterations", Value::from(result.iterations)),
        (
            "unique_oracle_queries",
            Value::from(result.unique_oracle_queries),
        ),
        ("regions", Value::from(result.regions)),
        ("regions_completed", Value::from(result.regions_completed)),
        ("regions_requeued", Value::from(result.regions_requeued)),
        ("regions_stolen", Value::from(result.regions_stolen)),
        ("workers", Value::from(result.workers)),
        ("workers_crashed", Value::from(result.workers_crashed)),
        ("stats_reports", Value::from(result.stats_reports)),
        (
            "solver_stats",
            Value::object(
                result
                    .solver_stats
                    .fields()
                    .iter()
                    .map(|&(name, value)| (name.to_string(), Value::from(value)))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "elapsed_ms",
            Value::from(result.elapsed.as_secs_f64() * 1e3),
        ),
    ])
    .to_string()
}

fn main() {
    maybe_run_worker_process();

    let mut config = FarmConfig::default();
    let mut locked_path: Option<String> = None;
    let mut oracle_path: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args();
    let _ = args.next();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--locked" => locked_path = Some(parse_value(&mut args, "--locked")),
            "--oracle" => oracle_path = Some(parse_value(&mut args, "--oracle")),
            "--workers" => config.workers = parse_value(&mut args, "--workers"),
            "--partition-bits" => {
                config.partition_bits = parse_value(&mut args, "--partition-bits");
            }
            "--no-steal" => config.steal = false,
            "--no-cancel-on-winner" => config.cancel_on_winner = false,
            "--listen" => listen = Some(parse_value(&mut args, "--listen")),
            "--max-iterations" => {
                config.confirm.max_iterations = parse_value(&mut args, "--max-iterations");
            }
            "--time-limit-ms" => {
                config.confirm.time_limit = Some(Duration::from_millis(parse_value(
                    &mut args,
                    "--time-limit-ms",
                )));
            }
            "--heartbeat-ms" => {
                config.heartbeat = Duration::from_millis(parse_value(&mut args, "--heartbeat-ms"));
            }
            "--heartbeat-timeout-ms" => {
                config.heartbeat_timeout =
                    Duration::from_millis(parse_value(&mut args, "--heartbeat-timeout-ms"));
            }
            "--lease-timeout-ms" => {
                config.lease_timeout =
                    Duration::from_millis(parse_value(&mut args, "--lease-timeout-ms"));
            }
            "--metrics-out" => metrics_out = Some(parse_value(&mut args, "--metrics-out")),
            "--trace-out" => trace_out = Some(parse_value(&mut args, "--trace-out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fall-dist: unknown flag {other:?}");
                usage();
            }
        }
    }
    let (Some(locked_path), Some(oracle_path)) = (locked_path, oracle_path) else {
        eprintln!("fall-dist: --locked and --oracle are required");
        usage();
    };
    let locked = match std::fs::read_to_string(&locked_path)
        .map_err(|error| error.to_string())
        .and_then(|text| bench_format::parse(&text).map_err(|error| format!("{error:?}")))
    {
        Ok(netlist) => netlist,
        Err(error) => {
            eprintln!("fall-dist: cannot load {locked_path}: {error}");
            std::process::exit(1);
        }
    };
    let oracle = match std::fs::read_to_string(&oracle_path)
        .map_err(|error| error.to_string())
        .and_then(|text| bench_format::parse(&text).map_err(|error| format!("{error:?}")))
    {
        Ok(netlist) => netlist,
        Err(error) => {
            eprintln!("fall-dist: cannot load {oracle_path}: {error}");
            std::process::exit(1);
        }
    };

    if trace_out.is_some() {
        fall::trace::set_enabled(true);
    }

    let result = match listen {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(listener) => listener,
                Err(error) => {
                    eprintln!("fall-dist: cannot bind {addr}: {error}");
                    std::process::exit(1);
                }
            };
            let local = listener
                .local_addr()
                .expect("bound listener has an address");
            eprintln!(
                "fall-dist supervising on {local}, waiting for {} workers",
                config.workers
            );
            match farm_over_tcp(&locked, &oracle, &listener, &config) {
                Ok(supervisor) => supervisor.wait(),
                Err(error) => {
                    eprintln!("fall-dist: accept failed: {error}");
                    std::process::exit(1);
                }
            }
        }
        None => match Farm::spawn(&locked, &oracle, &config) {
            Ok(farm) => farm.wait(),
            Err(error) => {
                eprintln!("fall-dist: cannot spawn workers: {error}");
                std::process::exit(1);
            }
        },
    };

    eprintln!(
        "fall-dist: {} in {:.2}s — {} unique oracle queries, {}/{} regions completed, \
         {} requeued, {} stolen, {}/{} workers crashed",
        match &result.key {
            Some(_) => "key recovered",
            None if result.completed => "key space exhausted (no key)",
            None => "incomplete",
        },
        result.elapsed.as_secs_f64(),
        result.unique_oracle_queries,
        result.regions_completed,
        result.regions,
        result.regions_requeued,
        result.regions_stolen,
        result.workers_crashed,
        result.workers,
    );
    if let Some(path) = &metrics_out {
        let text = fall::trace::prometheus_text(&result.metric_samples());
        if let Err(error) = std::fs::write(path, text) {
            eprintln!("fall-dist: cannot write {path}: {error}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &trace_out {
        if let Err(error) = std::fs::write(path, fall::trace::chrome_trace_json()) {
            eprintln!("fall-dist: cannot write {path}: {error}");
            std::process::exit(1);
        }
    }
    println!("{}", result_json(&result));
    if !result.completed {
        std::process::exit(3);
    }
}
