//! The farm worker: one long-lived primed session draining wire regions.
//!
//! [`run_worker`] is transport-generic — the pipes mode hands it the
//! process's stdin/stdout, the TCP mode a connected socket — and is the
//! *only* worker implementation: the actual region loop is
//! [`fall::parallel::drain_regions`], the exact function the in-process
//! engine runs, driven by a [`fall::parallel::RegionSource`] whose
//! `next_region` is a wire round-trip.  Three auxiliary threads surround
//! the drain: a router that demultiplexes supervisor messages (bridging
//! `cancel` into the session's interrupt flag mid-search), a heartbeat
//! ticker, and the implicit main thread running the SAT work.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use fall::dist::SyncingOracle;
use fall::parallel::{drain_regions, CancelToken, RegionDrainOutcome, RegionSource};
use fall::{AttackSession, KeyConfirmationConfig, SimOracle};
use netlist::bench_format;
use netshim::{write_line, LineReader};
use sat::SolverStats;

use crate::protocol::{
    RegionOutcome, SupervisorMessage, WorkerMessage, WorkerTelemetry, PROTOCOL_VERSION,
};

/// The cumulative telemetry snapshot attached to every `complete` frame:
/// the session's lifetime [`SolverStats`] plus the syncing cache's counters.
fn telemetry(stats: SolverStats, oracle: &SyncingOracle<'_>) -> Option<Box<WorkerTelemetry>> {
    Some(Box::new(WorkerTelemetry {
        solver: stats,
        oracle_hits: oracle.hits() as u64,
        oracle_unique: oracle.local_unique() as u64,
    }))
}

/// Tuning and test knobs of a worker process.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Maximum accepted frame length (the `setup` frame carries whole
    /// netlists, so this is generous by default).
    pub max_frame: usize,
    /// Test hook: sleep this long after receiving the *first* lease before
    /// searching it — holds the worker provably mid-lease so crash tests
    /// can kill it there.
    pub stall_first_lease: Option<Duration>,
    /// Test hook: abort the process the moment the first lease is granted,
    /// simulating a crash with a region in flight.
    pub crash_on_first_lease: bool,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            max_frame: 64 << 20,
            stall_first_lease: None,
            crash_on_first_lease: false,
        }
    }
}

/// What the router thread forwards to the (possibly blocked) drain loop.
enum Inbound {
    Region {
        region: u64,
        pairs: Vec<fall::dist::IoPair>,
    },
    Drained,
    Cancelled,
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn send_message(writer: &SharedWriter, message: &WorkerMessage) -> Result<(), String> {
    let mut writer = writer.lock().expect("writer poisoned");
    write_line(&mut *writer, &message.to_frame()).map_err(|error| error.to_string())
}

/// The wire-backed [`RegionSource`]: `next_region` is a
/// `lease` → `region`/`drained` round-trip (shipping the oracle outbox and
/// seeding the reply's cache delta), `complete_region` a `complete` with
/// outcome `keyless`.
struct WireSource<'o> {
    writer: SharedWriter,
    inbound: Mutex<Receiver<Inbound>>,
    oracle: &'o SyncingOracle<'o>,
    outstanding: Mutex<Option<u64>>,
    reported_iterations: Mutex<usize>,
    first_lease_seen: AtomicBool,
    options: WorkerOptions,
}

impl RegionSource for WireSource<'_> {
    fn next_region(&self) -> Option<u64> {
        let pairs = self.oracle.take_outbox();
        send_message(&self.writer, &WorkerMessage::Lease { pairs }).ok()?;
        let inbound = self.inbound.lock().expect("inbound poisoned");
        match inbound.recv() {
            Ok(Inbound::Region { region, pairs }) => {
                self.oracle.seed(pairs);
                *self.outstanding.lock().expect("lease slot poisoned") = Some(region);
                if !self.first_lease_seen.swap(true, Ordering::SeqCst) {
                    if self.options.crash_on_first_lease {
                        // Simulated crash: die without a word, lease in hand.
                        std::process::abort();
                    }
                    if let Some(stall) = self.options.stall_first_lease {
                        thread::sleep(stall);
                    }
                }
                Some(region)
            }
            Ok(Inbound::Drained | Inbound::Cancelled) | Err(_) => None,
        }
    }

    fn complete_region(&self, region: u64, iterations: usize, stats: &SolverStats) {
        *self.outstanding.lock().expect("lease slot poisoned") = None;
        *self
            .reported_iterations
            .lock()
            .expect("iteration count poisoned") += iterations;
        let _ = send_message(
            &self.writer,
            &WorkerMessage::Complete {
                region,
                outcome: RegionOutcome::Keyless,
                iterations,
                key: None,
                pairs: self.oracle.take_outbox(),
                stats: telemetry(*stats, self.oracle),
            },
        );
    }
}

/// Runs one worker over an established transport until the supervisor
/// drains or cancels it (or the transport dies).  Blocks for the whole run.
pub fn run_worker(
    reader: impl Read + Send + 'static,
    writer: impl Write + Send + 'static,
    options: WorkerOptions,
) -> Result<(), String> {
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(writer)));
    send_message(
        &writer,
        &WorkerMessage::Hello {
            protocol: PROTOCOL_VERSION,
        },
    )?;

    let mut lines = LineReader::new(reader, options.max_frame);
    let first = lines
        .read_line()
        .map_err(|error| error.to_string())?
        .ok_or("supervisor closed before setup")?;
    let SupervisorMessage::Setup {
        locked,
        oracle,
        partition_bits,
        max_iterations,
        time_limit_ms,
        conflict_budget,
        heartbeat_ms,
        ..
    } = SupervisorMessage::parse(&first)?
    else {
        return Err("expected a setup frame first".into());
    };

    let locked =
        bench_format::parse(&locked).map_err(|error| format!("bad locked netlist: {error:?}"))?;
    let oracle_netlist =
        bench_format::parse(&oracle).map_err(|error| format!("bad oracle netlist: {error:?}"))?;
    if oracle_netlist.num_key_inputs() != 0 {
        return Err("oracle netlist must be key-free".into());
    }
    let config = KeyConfirmationConfig {
        max_iterations,
        time_limit: (time_limit_ms > 0).then(|| Duration::from_millis(time_limit_ms)),
        conflict_budget,
        screen_words: 0,
    };

    let sim = SimOracle::new(oracle_netlist);
    let sync = SyncingOracle::new(&sim);
    let cancel = CancelToken::new();

    // Router: demultiplex supervisor frames.  `cancel` flips the interrupt
    // flag immediately (reaching a mid-search solver), everything else is
    // forwarded to the drain loop's channel.
    let (tx, rx) = std::sync::mpsc::channel();
    let router = {
        let tx: Sender<Inbound> = tx.clone();
        let cancel = cancel.clone();
        thread::spawn(move || loop {
            let line = match lines.read_line() {
                Ok(Some(line)) => line,
                Ok(None) | Err(_) => {
                    let _ = tx.send(Inbound::Drained);
                    break;
                }
            };
            match SupervisorMessage::parse(&line) {
                Ok(SupervisorMessage::Region { region, pairs, .. }) => {
                    let _ = tx.send(Inbound::Region { region, pairs });
                }
                Ok(SupervisorMessage::Drained) => {
                    let _ = tx.send(Inbound::Drained);
                }
                Ok(SupervisorMessage::Cancel) => {
                    cancel.cancel();
                    let _ = tx.send(Inbound::Cancelled);
                }
                Ok(SupervisorMessage::Setup { .. }) | Err(_) => {}
            }
        })
    };

    // Heartbeat ticker: liveness, independent of how long a SAT call runs.
    let stop_heartbeat = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop_heartbeat);
        let interval = Duration::from_millis(heartbeat_ms.max(10));
        thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                thread::sleep(interval);
                if stop.load(Ordering::SeqCst)
                    || send_message(&writer, &WorkerMessage::Heartbeat).is_err()
                {
                    break;
                }
            }
        })
    };

    // One long-lived session for the whole worker lifetime, primed before
    // the first lease — the same discipline as the in-process engine.
    let mut session = AttackSession::new(&locked);
    session.set_interrupt(Some(cancel.as_flag()));
    session.prime();

    let source = WireSource {
        writer: Arc::clone(&writer),
        inbound: Mutex::new(rx),
        oracle: &sync,
        outstanding: Mutex::new(None),
        reported_iterations: Mutex::new(0),
        first_lease_seen: AtomicBool::new(false),
        options: options.clone(),
    };
    // The drain runs in a loop because a winner does not end the *worker*:
    // it reports `found` and keeps leasing.  In cancel-on-winner farms the
    // supervisor's next reply is `drained` (or a `cancel` lands first), so
    // the loop ends after one round-trip; in drain-all farms the worker
    // carries on retiring regions — which is what makes the deterministic
    // counters hold even when the winner is the only survivor.
    loop {
        *source
            .reported_iterations
            .lock()
            .expect("iteration count poisoned") = 0;
        let drain = drain_regions(
            &mut session,
            &sync,
            &source,
            partition_bits,
            &config,
            &cancel,
        );
        let remaining_iterations = drain.iterations
            - *source
                .reported_iterations
                .lock()
                .expect("iteration count poisoned");
        let outstanding = source
            .outstanding
            .lock()
            .expect("lease slot poisoned")
            .take();
        match drain.outcome {
            RegionDrainOutcome::Winner { region, key } => {
                let _ = send_message(
                    &writer,
                    &WorkerMessage::Complete {
                        region,
                        outcome: RegionOutcome::Found,
                        iterations: remaining_iterations,
                        key: Some(key),
                        pairs: sync.take_outbox(),
                        stats: telemetry(session.stats(), &sync),
                    },
                );
            }
            RegionDrainOutcome::Exhausted { region } => {
                let _ = send_message(
                    &writer,
                    &WorkerMessage::Complete {
                        region,
                        outcome: RegionOutcome::Unfinished,
                        iterations: remaining_iterations,
                        key: None,
                        pairs: sync.take_outbox(),
                        stats: telemetry(session.stats(), &sync),
                    },
                );
                break;
            }
            RegionDrainOutcome::Cancelled => {
                if let Some(region) = outstanding {
                    let _ = send_message(
                        &writer,
                        &WorkerMessage::Complete {
                            region,
                            outcome: RegionOutcome::Cancelled,
                            iterations: remaining_iterations,
                            key: None,
                            pairs: sync.take_outbox(),
                            stats: telemetry(session.stats(), &sync),
                        },
                    );
                }
                break;
            }
            RegionDrainOutcome::Drained => break,
        }
    }

    stop_heartbeat.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    drop(router); // detached: it unblocks when the supervisor closes the pipe
    Ok(())
}
