//! SFLL-HDh: Stripped-Functionality Logic Locking with Hamming-distance
//! cube stripping (Yasin et al., CCS 2017), the scheme the FALL attacks
//! target.

use netlist::hamming::{hamming_distance_equals, hamming_distance_equals_const};
use netlist::{GateKind, Netlist, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::scheme::{choose_protected_inputs, choose_target_output};
use crate::{Key, LockError, LockedCircuit, LockingScheme};

/// The SFLL-HDh locking scheme.
///
/// A protected cube `Kc` over `key_bits` primary inputs is chosen at random.
/// The *functionality-stripped circuit* flips the protected output for every
/// input at Hamming distance exactly `h` from `Kc`; the *functionality
/// restoration unit* flips it back for every input at Hamming distance `h`
/// from the key inputs.  The circuit therefore behaves like the original iff
/// the key equals `Kc`.
///
/// `h = 0` is exactly the TTLock construction (see [`crate::TtLock`] for the
/// AND-cube variant used in the paper's worked example).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SfllHd {
    key_bits: usize,
    h: usize,
    seed: u64,
    target_output: Option<usize>,
}

impl SfllHd {
    /// Creates an SFLL-HDh locker with the given key width and distance `h`.
    pub fn new(key_bits: usize, h: usize) -> SfllHd {
        SfllHd {
            key_bits,
            h,
            seed: 0x5F11,
            target_output: None,
        }
    }

    /// Sets the PRNG seed that determines the protected cube and input choice.
    pub fn with_seed(mut self, seed: u64) -> SfllHd {
        self.seed = seed;
        self
    }

    /// Protects a specific output instead of the widest one.
    pub fn with_target_output(mut self, index: usize) -> SfllHd {
        self.target_output = Some(index);
        self
    }

    /// The key width in bits.
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }

    /// The Hamming-distance parameter `h`.
    pub fn h(&self) -> usize {
        self.h
    }
}

impl LockingScheme for SfllHd {
    fn name(&self) -> String {
        format!("SFLL-HD{}", self.h)
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit, LockError> {
        if self.h > self.key_bits {
            return Err(LockError::BadParameters(format!(
                "h = {} exceeds key width {}",
                self.h, self.key_bits
            )));
        }
        if self.key_bits == 0 {
            return Err(LockError::BadParameters(
                "key width must be positive".into(),
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let target = match self.target_output {
            Some(index) if index < original.num_outputs() => index,
            Some(index) => {
                return Err(LockError::BadParameters(format!(
                    "target output {index} out of range"
                )))
            }
            None => choose_target_output(original)?,
        };
        let protected = choose_protected_inputs(original, target, self.key_bits, &mut rng)?;
        let cube: Vec<bool> = (0..self.key_bits).map(|_| rng.gen()).collect();

        let mut locked = original.clone();
        locked.set_name(format!(
            "{}_{}",
            original.name(),
            self.name().to_lowercase()
        ));

        // Functionality-stripped circuit: flip the protected output for every
        // input pattern at Hamming distance h from the (hard-coded) cube.
        let strip = hamming_distance_equals_const(&mut locked, &protected, &cube, self.h);
        let y_original = locked.outputs()[target].1;
        let y_name = locked.fresh_name("_sfll_fsc_");
        let y_stripped = locked.add_gate(y_name, GateKind::Xor, &[y_original, strip]);

        // Functionality restoration unit: flip it back when HD(X, K) == h.
        let key_inputs: Vec<NodeId> = (0..self.key_bits)
            .map(|i| locked.add_key_input(format!("keyinput{i}")))
            .collect();
        let restore = hamming_distance_equals(&mut locked, &protected, &key_inputs, self.h);
        let y_locked_name = locked.fresh_name("_sfll_out_");
        let y_locked = locked.add_gate(y_locked_name, GateKind::Xor, &[y_stripped, restore]);
        locked.replace_output(target, y_locked);

        Ok(LockedCircuit {
            original: original.clone(),
            locked,
            key: Key::new(cube),
            scheme: self.name(),
            h: Some(self.h),
            protected_inputs: protected
                .iter()
                .map(|&id| original.node(id).name().to_string())
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;

    fn small_original() -> Netlist {
        generate(&RandomCircuitSpec::new("sfll_test", 8, 2, 40))
    }

    #[test]
    fn correct_key_restores_functionality_exhaustively() {
        let original = small_original();
        for h in [0usize, 1, 2] {
            let locked = SfllHd::new(6, h)
                .with_seed(13)
                .lock(&original)
                .expect("lock");
            for pattern in 0..256u64 {
                let bits = pattern_to_bits(pattern, 8);
                assert_eq!(
                    locked.locked.evaluate(&bits, locked.key.bits()),
                    original.evaluate(&bits, &[]),
                    "h={h} pattern={pattern:08b}"
                );
            }
        }
    }

    #[test]
    fn wrong_key_corrupts_some_output() {
        let original = small_original();
        let locked = SfllHd::new(6, 1)
            .with_seed(13)
            .lock(&original)
            .expect("lock");
        let wrong = locked.key.complement();
        let mut corrupted = false;
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            if locked.locked.evaluate(&bits, wrong.bits()) != original.evaluate(&bits, &[]) {
                corrupted = true;
                break;
            }
        }
        assert!(corrupted, "a wrong key must corrupt at least one pattern");
    }

    #[test]
    fn hd0_corrupts_exactly_one_protected_pattern() {
        // For TTLock / SFLL-HD0 the stripped circuit differs from the original
        // on exactly the protected cube (when all protected inputs feed the
        // target output cone).
        let original = small_original();
        let locked = SfllHd::new(8, 0)
            .with_seed(3)
            .lock(&original)
            .expect("lock");
        // Apply an all-zero (almost surely wrong) key and count corrupted patterns.
        let zero_key = Key::zeros(8);
        if zero_key == locked.key {
            return; // astronomically unlikely, but keep the test sound
        }
        let mut corrupted = 0usize;
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            if locked.locked.evaluate(&bits, zero_key.bits()) != original.evaluate(&bits, &[]) {
                corrupted += 1;
            }
        }
        // The wrong key corrupts the protected cube and the patterns matching
        // the wrong key itself: at most 2, at least 1.
        assert!(
            (1..=2).contains(&corrupted),
            "corrupted {corrupted} patterns"
        );
    }

    #[test]
    fn parameters_are_validated() {
        let original = small_original();
        assert!(SfllHd::new(4, 5).lock(&original).is_err());
        assert!(SfllHd::new(0, 0).lock(&original).is_err());
        assert!(SfllHd::new(64, 1).lock(&original).is_err());
        assert!(SfllHd::new(4, 1)
            .with_target_output(99)
            .lock(&original)
            .is_err());
    }

    #[test]
    fn locked_netlist_gains_gates_and_keys() {
        let original = small_original();
        let locked = SfllHd::new(6, 2)
            .with_seed(5)
            .lock(&original)
            .expect("lock");
        assert_eq!(locked.locked.num_key_inputs(), 6);
        assert!(locked.locked.num_gates() > original.num_gates());
        assert_eq!(locked.protected_inputs.len(), 6);
        assert_eq!(locked.scheme, "SFLL-HD2");
        assert!(locked.correct_key_is_functionally_correct(64, 0));
    }

    #[test]
    fn optimized_version_is_still_correct() {
        let original = small_original();
        let locked = SfllHd::new(5, 1)
            .with_seed(21)
            .lock(&original)
            .expect("lock");
        let optimized = locked.optimized();
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            assert_eq!(
                optimized.locked.evaluate(&bits, locked.key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }
}
