//! Locking keys.

use rand::Rng;
use std::fmt;

/// A locking key: an ordered vector of key-bit values.
///
/// Bit `i` of the key is the correct value of the key input `keyinput{i}` in
/// the corresponding locked netlist.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Key(Vec<bool>);

impl Key {
    /// Creates a key from its bit values.
    pub fn new(bits: Vec<bool>) -> Key {
        Key(bits)
    }

    /// Creates an all-zero key of the given width.
    pub fn zeros(width: usize) -> Key {
        Key(vec![false; width])
    }

    /// Creates a uniformly random key of the given width.
    pub fn random<R: Rng + ?Sized>(width: usize, rng: &mut R) -> Key {
        Key((0..width).map(|_| rng.gen()).collect())
    }

    /// Creates a key from the low `width` bits of `pattern` (bit `i` of the
    /// pattern becomes key bit `i`).
    pub fn from_pattern(pattern: u64, width: usize) -> Key {
        Key((0..width).map(|i| (pattern >> i) & 1 == 1).collect())
    }

    /// The key width in bits.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the empty key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The key bits in order.
    pub fn bits(&self) -> &[bool] {
        &self.0
    }

    /// Returns key bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> bool {
        self.0[i]
    }

    /// Returns the bitwise complement of this key.
    pub fn complement(&self) -> Key {
        Key(self.0.iter().map(|&b| !b).collect())
    }

    /// Hamming distance to another key.
    ///
    /// # Panics
    ///
    /// Panics if the keys have different widths.
    pub fn hamming_distance(&self, other: &Key) -> usize {
        assert_eq!(self.len(), other.len(), "key widths differ");
        self.0
            .iter()
            .zip(other.bits())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Flips bit `i`, returning a new key.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn with_flipped_bit(&self, i: usize) -> Key {
        let mut bits = self.0.clone();
        bits[i] = !bits[i];
        Key(bits)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &bit in &self.0 {
            write!(f, "{}", u8::from(bit))?;
        }
        Ok(())
    }
}

impl From<Vec<bool>> for Key {
    fn from(bits: Vec<bool>) -> Key {
        Key(bits)
    }
}

impl FromIterator<bool> for Key {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Key {
        Key(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pattern_round_trip() {
        let key = Key::from_pattern(0b1011, 4);
        assert_eq!(key.bits(), &[true, true, false, true]);
        assert_eq!(key.to_string(), "1101");
        assert_eq!(key.len(), 4);
    }

    #[test]
    fn hamming_and_complement() {
        let a = Key::from_pattern(0b1010, 4);
        let b = Key::from_pattern(0b0110, 4);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a.complement()), 4);
        assert_eq!(a.with_flipped_bit(0).hamming_distance(&a), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(Key::random(16, &mut r1), Key::random(16, &mut r2));
    }

    #[test]
    fn zeros_is_empty_only_for_width_zero() {
        assert!(Key::zeros(0).is_empty());
        assert!(!Key::zeros(3).is_empty());
        assert_eq!(Key::zeros(3).bits(), &[false, false, false]);
    }
}
