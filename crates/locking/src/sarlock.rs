//! SARLock (Yasin et al., HOST 2016): a SAT-attack-resilient point-function
//! scheme used as a baseline in the paper's related-work discussion.

use netlist::hamming::equality_comparator;
use netlist::{GateKind, Netlist, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::scheme::{choose_protected_inputs, choose_target_output};
use crate::{Key, LockError, LockedCircuit, LockingScheme};

/// The SARLock locking scheme.
///
/// The protected output is XORed with a flip signal that is high when the
/// input equals the key value but the key is not the correct one:
/// `flip = (X == K) AND NOT (K == Kc)`.  Each wrong key corrupts exactly one
/// input pattern, which starves the SAT attack of distinguishing power, but
/// the `K == Kc` masking comparator hard-codes the correct key in the netlist
/// — the removal/bypass weakness the literature points out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SarLock {
    key_bits: usize,
    seed: u64,
    target_output: Option<usize>,
}

impl SarLock {
    /// Creates a SARLock locker with the given key width.
    pub fn new(key_bits: usize) -> SarLock {
        SarLock {
            key_bits,
            seed: 0x5A51,
            target_output: None,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> SarLock {
        self.seed = seed;
        self
    }

    /// Protects a specific output instead of the widest one.
    pub fn with_target_output(mut self, index: usize) -> SarLock {
        self.target_output = Some(index);
        self
    }
}

impl LockingScheme for SarLock {
    fn name(&self) -> String {
        "SARLock".to_string()
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit, LockError> {
        if self.key_bits == 0 {
            return Err(LockError::BadParameters(
                "key width must be positive".into(),
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let target = match self.target_output {
            Some(index) if index < original.num_outputs() => index,
            Some(index) => {
                return Err(LockError::BadParameters(format!(
                    "target output {index} out of range"
                )))
            }
            None => choose_target_output(original)?,
        };
        let protected = choose_protected_inputs(original, target, self.key_bits, &mut rng)?;
        let correct: Vec<bool> = (0..self.key_bits).map(|_| rng.gen()).collect();

        let mut locked = original.clone();
        locked.set_name(format!("{}_sarlock", original.name()));

        let key_inputs: Vec<NodeId> = (0..self.key_bits)
            .map(|i| locked.add_key_input(format!("keyinput{i}")))
            .collect();

        // X == K comparator.
        let input_match = equality_comparator(&mut locked, &protected, &key_inputs);

        // K == Kc mask (correct key hard-coded as inverted/plain literals).
        let mask_literals: Vec<NodeId> = key_inputs
            .iter()
            .zip(&correct)
            .map(|(&k, &bit)| {
                if bit {
                    k
                } else {
                    let name = locked.fresh_name("_sar_inv_");
                    locked.add_gate(name, GateKind::Not, &[k])
                }
            })
            .collect();
        let mask_name = locked.fresh_name("_sar_mask_");
        let key_is_correct = if mask_literals.len() == 1 {
            mask_literals[0]
        } else {
            locked.add_gate(mask_name, GateKind::And, &mask_literals)
        };
        let not_correct_name = locked.fresh_name("_sar_nmask_");
        let key_is_wrong = locked.add_gate(not_correct_name, GateKind::Not, &[key_is_correct]);

        let flip_name = locked.fresh_name("_sar_flip_");
        let flip = locked.add_gate(flip_name, GateKind::And, &[input_match, key_is_wrong]);

        let y_original = locked.outputs()[target].1;
        let y_name = locked.fresh_name("_sar_out_");
        let y_locked = locked.add_gate(y_name, GateKind::Xor, &[y_original, flip]);
        locked.replace_output(target, y_locked);

        Ok(LockedCircuit {
            original: original.clone(),
            locked,
            key: Key::new(correct),
            scheme: self.name(),
            h: None,
            protected_inputs: protected
                .iter()
                .map(|&id| original.node(id).name().to_string())
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;

    #[test]
    fn correct_key_restores_functionality() {
        let original = generate(&RandomCircuitSpec::new("sar_test", 8, 2, 40));
        let locked = SarLock::new(6).with_seed(6).lock(&original).expect("lock");
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            assert_eq!(
                locked.locked.evaluate(&bits, locked.key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }

    #[test]
    fn each_wrong_key_corrupts_at_most_one_pattern() {
        let original = generate(&RandomCircuitSpec::new("sar_small", 6, 1, 25));
        let locked = SarLock::new(6).with_seed(9).lock(&original).expect("lock");
        for wrong_pattern in 0..8u64 {
            let wrong = Key::from_pattern(wrong_pattern, 6);
            if wrong == locked.key {
                continue;
            }
            let corrupted = (0..64u64)
                .filter(|&p| {
                    let bits = pattern_to_bits(p, 6);
                    locked.locked.evaluate(&bits, wrong.bits()) != original.evaluate(&bits, &[])
                })
                .count();
            assert!(
                corrupted <= 1,
                "wrong key {wrong} corrupted {corrupted} patterns"
            );
        }
    }

    #[test]
    fn metadata_is_populated() {
        let original = generate(&RandomCircuitSpec::new("sar_meta", 8, 2, 30));
        let locked = SarLock::new(5).with_seed(1).lock(&original).expect("lock");
        assert_eq!(locked.scheme, "SARLock");
        assert_eq!(locked.h, None);
        assert_eq!(locked.locked.num_key_inputs(), 5);
    }
}
