//! Output-corruption measurement.
//!
//! The defining property of SAT-resilient schemes (SARLock, Anti-SAT, TTLock,
//! SFLL-HD0) is their *low* output corruption: a wrong key corrupts only a
//! handful of input patterns, which is what starves the SAT attack of
//! distinguishing inputs.  These helpers quantify that, and are used by the
//! ablation benches.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Key, LockedCircuit};

/// Fraction of sampled input patterns on which the locked circuit (under
/// `key`) disagrees with the original circuit.
///
/// # Panics
///
/// Panics if `samples == 0` or the key width does not match the locked
/// circuit.
pub fn corruption_rate(locked: &LockedCircuit, key: &Key, samples: usize, seed: u64) -> f64 {
    assert!(samples > 0, "at least one sample is required");
    assert_eq!(
        key.len(),
        locked.locked.num_key_inputs(),
        "key width does not match circuit"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = locked.original.num_inputs();
    let mut corrupted = 0usize;
    for _ in 0..samples {
        let stimulus: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        if locked.locked.evaluate(&stimulus, key.bits()) != locked.original.evaluate(&stimulus, &[])
        {
            corrupted += 1;
        }
    }
    corrupted as f64 / samples as f64
}

/// Average corruption rate over `num_keys` random wrong keys.
///
/// Keys equal to the correct key are skipped (and re-drawn), so the result
/// reflects wrong-key behaviour only.
pub fn average_wrong_key_corruption(
    locked: &LockedCircuit,
    num_keys: usize,
    samples_per_key: usize,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let width = locked.locked.num_key_inputs();
    let mut total = 0.0;
    let mut counted = 0usize;
    while counted < num_keys {
        let key = Key::random(width, &mut rng);
        if key == locked.key {
            continue;
        }
        total += corruption_rate(locked, &key, samples_per_key, rng.gen());
        counted += 1;
    }
    total / num_keys as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LockingScheme, SfllHd, XorLock};
    use netlist::random::{generate, RandomCircuitSpec};

    #[test]
    fn correct_key_has_zero_corruption() {
        let original = generate(&RandomCircuitSpec::new("corr", 10, 2, 60));
        let locked = SfllHd::new(8, 1)
            .with_seed(2)
            .lock(&original)
            .expect("lock");
        assert_eq!(corruption_rate(&locked, &locked.key, 200, 1), 0.0);
    }

    #[test]
    fn sfll_has_much_lower_corruption_than_xor_locking() {
        let original = generate(&RandomCircuitSpec::new("corr2", 12, 3, 80));
        let sfll = SfllHd::new(10, 1)
            .with_seed(4)
            .lock(&original)
            .expect("lock");
        let xor = XorLock::new(10).with_seed(4).lock(&original).expect("lock");
        let sfll_corruption = average_wrong_key_corruption(&sfll, 5, 200, 7);
        let xor_corruption = average_wrong_key_corruption(&xor, 5, 200, 7);
        assert!(
            sfll_corruption < xor_corruption,
            "SFLL corruption {sfll_corruption} should be below XOR locking {xor_corruption}"
        );
        // SFLL-HD corrupts a vanishing fraction of the 2^12 input space.
        assert!(sfll_corruption < 0.05, "sfll corruption {sfll_corruption}");
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn mismatched_key_width_panics() {
        let original = generate(&RandomCircuitSpec::new("corr3", 8, 2, 30));
        let locked = SfllHd::new(6, 0)
            .with_seed(1)
            .lock(&original)
            .expect("lock");
        let _ = corruption_rate(&locked, &Key::zeros(3), 10, 0);
    }
}
