//! The [`LockingScheme`] trait and the [`LockedCircuit`] result type.

use netlist::analysis::support;
use netlist::strash::strash;
use netlist::{Netlist, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Key, LockError};

/// The result of locking a circuit: the locked netlist, the original it was
/// derived from, and the ground-truth key.
#[derive(Clone, Debug)]
pub struct LockedCircuit {
    /// The original (oracle) circuit.
    pub original: Netlist,
    /// The locked circuit with key inputs.
    pub locked: Netlist,
    /// The correct key (bit `i` is the value of `keyinput{i}`).
    pub key: Key,
    /// Human-readable scheme name, e.g. `"SFLL-HD2"`.
    pub scheme: String,
    /// The Hamming-distance parameter, for cube-stripping schemes.
    pub h: Option<usize>,
    /// Names of the protected primary inputs, in key-bit order (empty for
    /// schemes without a protected cube).
    pub protected_inputs: Vec<String>,
}

impl LockedCircuit {
    /// Returns a copy whose locked netlist has been structurally hashed
    /// (the ABC `strash` step the paper applies before attacking).
    pub fn optimized(&self) -> LockedCircuit {
        LockedCircuit {
            locked: strash(&self.locked),
            ..self.clone()
        }
    }

    /// Checks by random simulation that `key` makes the locked circuit agree
    /// with the original on `samples` random input patterns.
    pub fn key_is_functionally_correct(&self, key: &Key, samples: usize, seed: u64) -> bool {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = self.original.num_inputs();
        for _ in 0..samples {
            let stimulus: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let want = self.original.evaluate(&stimulus, &[]);
            let got = self.locked.evaluate(&stimulus, key.bits());
            if want != got {
                return false;
            }
        }
        true
    }

    /// Checks the ground-truth key with [`LockedCircuit::key_is_functionally_correct`].
    pub fn correct_key_is_functionally_correct(&self, samples: usize, seed: u64) -> bool {
        self.key_is_functionally_correct(&self.key, samples, seed)
    }
}

/// A logic-locking algorithm.
pub trait LockingScheme {
    /// Human-readable name including parameters (e.g. `"SFLL-HD4"`).
    fn name(&self) -> String;

    /// Locks a circuit, returning the locked netlist and ground-truth key.
    ///
    /// # Errors
    ///
    /// Returns a [`LockError`] when the circuit is too small for the
    /// requested key width or has no outputs.
    fn lock(&self, original: &Netlist) -> Result<LockedCircuit, LockError>;
}

/// Chooses `m` protected primary inputs, preferring the inputs in the support
/// of the target output so that stripping actually corrupts it.
pub(crate) fn choose_protected_inputs(
    netlist: &Netlist,
    target_output: usize,
    m: usize,
    rng: &mut ChaCha8Rng,
) -> Result<Vec<NodeId>, LockError> {
    if netlist.num_inputs() < m {
        return Err(LockError::NotEnoughInputs {
            needed: m,
            available: netlist.num_inputs(),
        });
    }
    let (_, driver) = &netlist.outputs()[target_output];
    let cone_inputs: Vec<NodeId> = support(netlist, *driver).primary.into_iter().collect();
    let mut chosen: Vec<NodeId> = cone_inputs;
    chosen.shuffle(rng);
    chosen.truncate(m);
    if chosen.len() < m {
        // Top up with inputs outside the cone (deterministically ordered).
        for &id in netlist.inputs() {
            if chosen.len() == m {
                break;
            }
            if !chosen.contains(&id) {
                chosen.push(id);
            }
        }
    }
    // Key-bit order follows input declaration order for reproducibility.
    chosen.sort_unstable();
    Ok(chosen)
}

/// Chooses the output whose support covers the most primary inputs.
pub(crate) fn choose_target_output(netlist: &Netlist) -> Result<usize, LockError> {
    if netlist.num_outputs() == 0 {
        return Err(LockError::NoOutputs);
    }
    let mut best = 0usize;
    let mut best_size = 0usize;
    for (i, (_, driver)) in netlist.outputs().iter().enumerate() {
        let size = support(netlist, *driver).primary.len();
        if size > best_size {
            best = i;
            best_size = size;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;

    fn two_output_circuit() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate("g1", GateKind::And, &[a, b]);
        let g2 = nl.add_gate("g2", GateKind::Or, &[g1, c]);
        nl.add_output("small", g1);
        nl.add_output("big", g2);
        nl
    }

    #[test]
    fn target_output_is_the_widest() {
        let nl = two_output_circuit();
        assert_eq!(choose_target_output(&nl).unwrap(), 1);
    }

    #[test]
    fn protected_inputs_prefer_the_cone() {
        let nl = two_output_circuit();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let chosen = choose_protected_inputs(&nl, 1, 2, &mut rng).unwrap();
        assert_eq!(chosen.len(), 2);
        for &id in &chosen {
            assert!(nl.is_primary_input(id));
        }
    }

    #[test]
    fn too_many_key_bits_is_an_error() {
        let nl = two_output_circuit();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(matches!(
            choose_protected_inputs(&nl, 1, 10, &mut rng),
            Err(LockError::NotEnoughInputs {
                needed: 10,
                available: 3
            })
        ));
    }

    #[test]
    fn no_outputs_is_an_error() {
        let nl = Netlist::new("empty");
        assert!(matches!(
            choose_target_output(&nl),
            Err(LockError::NoOutputs)
        ));
    }
}
