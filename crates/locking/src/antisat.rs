//! Anti-SAT (Xie & Srivastava, CHES 2016): a SAT-attack mitigation block used
//! as a baseline scheme.

use netlist::{GateKind, Netlist, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::scheme::{choose_protected_inputs, choose_target_output};
use crate::{Key, LockError, LockedCircuit, LockingScheme};

/// The Anti-SAT locking scheme (type-0 block).
///
/// Two key vectors `KA` and `KB` of `n` bits each (total key width `2n`) feed
/// the block `flip = AND_i(x_i XOR ka_i) AND NAND_i(x_i XOR kb_i)`, which is
/// XORed onto the protected output.  Whenever `KA == KB` the two halves are
/// complementary and `flip` is constantly 0, restoring the original
/// behaviour; the correct key generated here uses `KA = KB = alpha` for a
/// random `alpha`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AntiSat {
    half_key_bits: usize,
    seed: u64,
    target_output: Option<usize>,
}

impl AntiSat {
    /// Creates an Anti-SAT locker whose block spans `half_key_bits` inputs
    /// (the total key width is `2 * half_key_bits`).
    pub fn new(half_key_bits: usize) -> AntiSat {
        AntiSat {
            half_key_bits,
            seed: 0xA271,
            target_output: None,
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> AntiSat {
        self.seed = seed;
        self
    }

    /// Protects a specific output instead of the widest one.
    pub fn with_target_output(mut self, index: usize) -> AntiSat {
        self.target_output = Some(index);
        self
    }
}

impl LockingScheme for AntiSat {
    fn name(&self) -> String {
        "Anti-SAT".to_string()
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit, LockError> {
        if self.half_key_bits == 0 {
            return Err(LockError::BadParameters(
                "key width must be positive".into(),
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let target = match self.target_output {
            Some(index) if index < original.num_outputs() => index,
            Some(index) => {
                return Err(LockError::BadParameters(format!(
                    "target output {index} out of range"
                )))
            }
            None => choose_target_output(original)?,
        };
        let protected = choose_protected_inputs(original, target, self.half_key_bits, &mut rng)?;
        let alpha: Vec<bool> = (0..self.half_key_bits).map(|_| rng.gen()).collect();

        let mut locked = original.clone();
        locked.set_name(format!("{}_antisat", original.name()));

        let ka: Vec<NodeId> = (0..self.half_key_bits)
            .map(|i| locked.add_key_input(format!("keyinput{i}")))
            .collect();
        let kb: Vec<NodeId> = (0..self.half_key_bits)
            .map(|i| locked.add_key_input(format!("keyinput{}", i + self.half_key_bits)))
            .collect();

        let xor_block = |locked: &mut Netlist, keys: &[NodeId]| -> Vec<NodeId> {
            protected
                .iter()
                .zip(keys)
                .map(|(&x, &k)| {
                    let name = locked.fresh_name("_as_x_");
                    locked.add_gate(name, GateKind::Xor, &[x, k])
                })
                .collect()
        };
        let a_bits = xor_block(&mut locked, &ka);
        let b_bits = xor_block(&mut locked, &kb);

        let g_name = locked.fresh_name("_as_g_");
        let g = if a_bits.len() == 1 {
            a_bits[0]
        } else {
            locked.add_gate(g_name, GateKind::And, &a_bits)
        };
        let gbar_name = locked.fresh_name("_as_gbar_");
        let gbar = if b_bits.len() == 1 {
            let name = locked.fresh_name("_as_gbar1_");
            locked.add_gate(name, GateKind::Not, &[b_bits[0]])
        } else {
            locked.add_gate(gbar_name, GateKind::Nand, &b_bits)
        };
        let flip_name = locked.fresh_name("_as_flip_");
        let flip = locked.add_gate(flip_name, GateKind::And, &[g, gbar]);

        let y_original = locked.outputs()[target].1;
        let y_name = locked.fresh_name("_as_out_");
        let y_locked = locked.add_gate(y_name, GateKind::Xor, &[y_original, flip]);
        locked.replace_output(target, y_locked);

        // Correct key: KA = KB = alpha.
        let mut key_bits = alpha.clone();
        key_bits.extend(alpha.iter().copied());

        Ok(LockedCircuit {
            original: original.clone(),
            locked,
            key: Key::new(key_bits),
            scheme: self.name(),
            h: None,
            protected_inputs: protected
                .iter()
                .map(|&id| original.node(id).name().to_string())
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;

    #[test]
    fn correct_key_restores_functionality() {
        let original = generate(&RandomCircuitSpec::new("as_test", 8, 2, 40));
        let locked = AntiSat::new(4).with_seed(3).lock(&original).expect("lock");
        assert_eq!(locked.locked.num_key_inputs(), 8);
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            assert_eq!(
                locked.locked.evaluate(&bits, locked.key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }

    #[test]
    fn any_equal_halves_key_is_also_correct() {
        // Anti-SAT has many correct keys: any assignment with KA == KB works.
        let original = generate(&RandomCircuitSpec::new("as_alt", 6, 1, 30));
        let locked = AntiSat::new(3).with_seed(5).lock(&original).expect("lock");
        let alt = Key::new(vec![true, false, true, true, false, true]);
        for pattern in 0..64u64 {
            let bits = pattern_to_bits(pattern, 6);
            assert_eq!(
                locked.locked.evaluate(&bits, alt.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }

    #[test]
    fn mismatched_halves_corrupt_something() {
        let original = generate(&RandomCircuitSpec::new("as_bad", 6, 1, 30));
        let locked = AntiSat::new(3).with_seed(5).lock(&original).expect("lock");
        // KA = 000, KB = 111: g and gbar overlap on some input.
        let wrong = Key::new(vec![false, false, false, true, true, true]);
        let corrupted = (0..64u64).any(|p| {
            let bits = pattern_to_bits(p, 6);
            locked.locked.evaluate(&bits, wrong.bits()) != original.evaluate(&bits, &[])
        });
        assert!(corrupted);
    }
}
