//! Logic-locking schemes for the FALL attacks reproduction.
//!
//! The paper attacks *cube-stripping* schemes — TTLock and SFLL-HDh — and
//! compares against the classic SAT attack, which was designed for earlier
//! schemes.  This crate implements all of them on top of the [`netlist`]
//! substrate:
//!
//! * [`TtLock`] — TTLock: strips exactly the protected cube (§ II-B1).
//! * [`SfllHd`] — SFLL-HDh: strips every cube at Hamming distance `h` from
//!   the protected cube (§ II-B2).  `h = 0` reproduces TTLock behaviour.
//! * [`SarLock`] — SARLock baseline (SAT-resilient point-function flip).
//! * [`AntiSat`] — Anti-SAT baseline.
//! * [`XorLock`] — random XOR/XNOR key-gate insertion (EPIC/RLL style), the
//!   kind of scheme the original SAT attack breaks easily.
//!
//! All schemes implement the [`LockingScheme`] trait and produce a
//! [`LockedCircuit`] carrying the locked netlist together with the correct
//! key, so experiments can check attack results against ground truth.
//!
//! # Example
//!
//! ```
//! use locking::{LockingScheme, SfllHd};
//! use netlist::random::{generate, RandomCircuitSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let original = generate(&RandomCircuitSpec::new("demo", 12, 3, 80));
//! let scheme = SfllHd::new(8, 1).with_seed(7);
//! let locked = scheme.lock(&original)?;
//! assert_eq!(locked.locked.num_key_inputs(), 8);
//! // With the correct key the locked circuit matches the original.
//! let key = locked.key.bits().to_vec();
//! let stimulus = vec![false; 12];
//! assert_eq!(
//!     locked.locked.evaluate(&stimulus, &key),
//!     original.evaluate(&stimulus, &[]),
//! );
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod antisat;
pub mod corruption;
mod error;
mod key;
mod sarlock;
mod scheme;
mod sfll_hd;
mod ttlock;
mod xor_lock;

pub use antisat::AntiSat;
pub use error::LockError;
pub use key::Key;
pub use sarlock::SarLock;
pub use scheme::{LockedCircuit, LockingScheme};
pub use sfll_hd::SfllHd;
pub use ttlock::TtLock;
pub use xor_lock::XorLock;
