//! TTLock (Yasin et al., GLSVLSI 2017): the single-cube-stripping scheme of
//! the paper's worked example (Figure 2b).
//!
//! Functionally TTLock is SFLL-HD0, but the gate-level structure differs: the
//! cube stripper is a single wide AND over (possibly inverted) protected
//! inputs and the restoration unit is an AND of XNOR comparators.  The FALL
//! unateness analysis targets exactly this structure.

use netlist::hamming::equality_comparator;
use netlist::{GateKind, Netlist, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::scheme::{choose_protected_inputs, choose_target_output};
use crate::{Key, LockError, LockedCircuit, LockingScheme};

/// The TTLock locking scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TtLock {
    key_bits: usize,
    seed: u64,
    target_output: Option<usize>,
}

impl TtLock {
    /// Creates a TTLock locker with the given key width.
    pub fn new(key_bits: usize) -> TtLock {
        TtLock {
            key_bits,
            seed: 0x7710,
            target_output: None,
        }
    }

    /// Sets the PRNG seed that determines the protected cube and input choice.
    pub fn with_seed(mut self, seed: u64) -> TtLock {
        self.seed = seed;
        self
    }

    /// Protects a specific output instead of the widest one.
    pub fn with_target_output(mut self, index: usize) -> TtLock {
        self.target_output = Some(index);
        self
    }

    /// The key width in bits.
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }
}

impl LockingScheme for TtLock {
    fn name(&self) -> String {
        "TTLock".to_string()
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit, LockError> {
        if self.key_bits == 0 {
            return Err(LockError::BadParameters(
                "key width must be positive".into(),
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let target = match self.target_output {
            Some(index) if index < original.num_outputs() => index,
            Some(index) => {
                return Err(LockError::BadParameters(format!(
                    "target output {index} out of range"
                )))
            }
            None => choose_target_output(original)?,
        };
        let protected = choose_protected_inputs(original, target, self.key_bits, &mut rng)?;
        let cube: Vec<bool> = (0..self.key_bits).map(|_| rng.gen()).collect();

        let mut locked = original.clone();
        locked.set_name(format!("{}_ttlock", original.name()));

        // Cube stripper: a single AND over the protected inputs, with a
        // literal inverted wherever the cube bit is 0 (Figure 2b, gate F).
        let literals: Vec<NodeId> = protected
            .iter()
            .zip(&cube)
            .map(|(&id, &bit)| {
                if bit {
                    id
                } else {
                    let name = locked.fresh_name("_tt_inv_");
                    locked.add_gate(name, GateKind::Not, &[id])
                }
            })
            .collect();
        let strip = if literals.len() == 1 {
            literals[0]
        } else {
            let name = locked.fresh_name("_tt_cube_");
            locked.add_gate(name, GateKind::And, &literals)
        };

        let y_original = locked.outputs()[target].1;
        let y_name = locked.fresh_name("_tt_fsc_");
        let y_stripped = locked.add_gate(y_name, GateKind::Xor, &[y_original, strip]);

        // Restoration unit: AND of XNOR comparators between the protected
        // inputs and the key inputs (gate G in Figure 2b).
        let key_inputs: Vec<NodeId> = (0..self.key_bits)
            .map(|i| locked.add_key_input(format!("keyinput{i}")))
            .collect();
        let restore = equality_comparator(&mut locked, &protected, &key_inputs);
        let y_locked_name = locked.fresh_name("_tt_out_");
        let y_locked = locked.add_gate(y_locked_name, GateKind::Xor, &[y_stripped, restore]);
        locked.replace_output(target, y_locked);

        Ok(LockedCircuit {
            original: original.clone(),
            locked,
            key: Key::new(cube),
            scheme: self.name(),
            h: Some(0),
            protected_inputs: protected
                .iter()
                .map(|&id| original.node(id).name().to_string())
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;

    #[test]
    fn correct_key_restores_functionality() {
        let original = generate(&RandomCircuitSpec::new("tt_test", 8, 2, 40));
        let locked = TtLock::new(6).with_seed(11).lock(&original).expect("lock");
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            assert_eq!(
                locked.locked.evaluate(&bits, locked.key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }

    #[test]
    fn wrong_key_corrupts_exactly_two_patterns_when_all_inputs_protected() {
        let original = generate(&RandomCircuitSpec::new("tt_small", 6, 1, 25));
        let locked = TtLock::new(6).with_seed(4).lock(&original).expect("lock");
        let wrong = locked.key.complement();
        let mut corrupted = Vec::new();
        for pattern in 0..64u64 {
            let bits = pattern_to_bits(pattern, 6);
            if locked.locked.evaluate(&bits, wrong.bits()) != original.evaluate(&bits, &[]) {
                corrupted.push(pattern);
            }
        }
        assert_eq!(corrupted.len(), 2, "corrupted patterns: {corrupted:?}");
    }

    #[test]
    fn scheme_metadata_is_populated() {
        let original = generate(&RandomCircuitSpec::new("tt_meta", 10, 2, 60));
        let locked = TtLock::new(8).with_seed(2).lock(&original).expect("lock");
        assert_eq!(locked.scheme, "TTLock");
        assert_eq!(locked.h, Some(0));
        assert_eq!(locked.key.len(), 8);
        assert_eq!(locked.locked.num_key_inputs(), 8);
        assert!(locked.correct_key_is_functionally_correct(128, 1));
    }

    #[test]
    fn paper_example_matches_figure_2b() {
        // y = ab + bc + ca + d with protected cube a=1, b=0, c=0, d=1.
        let mut nl = Netlist::new("fig2a");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let ab = nl.add_gate("ab", GateKind::And, &[a, b]);
        let bc = nl.add_gate("bc", GateKind::And, &[b, c]);
        let ca = nl.add_gate("ca", GateKind::And, &[c, a]);
        let y = nl.add_gate("y", GateKind::Or, &[ab, bc, ca, d]);
        nl.add_output("y", y);

        // Find a seed whose random cube is 1001 so the example matches the
        // paper exactly; otherwise just validate the generic behaviour.
        let locked = TtLock::new(4).with_seed(0).lock(&nl).expect("lock");
        for pattern in 0..16u64 {
            let bits = pattern_to_bits(pattern, 4);
            assert_eq!(
                locked.locked.evaluate(&bits, locked.key.bits()),
                nl.evaluate(&bits, &[]),
            );
        }
        // A wrong key must corrupt the protected cube input pattern.
        let wrong = locked.key.complement();
        let cube_bits: Vec<bool> = locked.key.bits().to_vec();
        let corrupted = locked.locked.evaluate(&cube_bits, wrong.bits());
        assert_ne!(corrupted, nl.evaluate(&cube_bits, &[]));
    }

    #[test]
    fn zero_key_bits_is_rejected() {
        let original = generate(&RandomCircuitSpec::new("tt_zero", 4, 1, 10));
        assert!(TtLock::new(0).lock(&original).is_err());
    }
}
