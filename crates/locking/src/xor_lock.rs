//! Random XOR/XNOR key-gate insertion (EPIC / random logic locking).
//!
//! This is the family of early schemes the original SAT attack [22] breaks in
//! seconds; it is included as the baseline workload on which the SAT attack
//! *succeeds*, to contrast with its failure on SFLL.

use netlist::{GateKind, Netlist, NodeId, NodeKind};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Key, LockError, LockedCircuit, LockingScheme};

/// Random XOR/XNOR key-gate insertion.
///
/// `key_bits` wires are chosen at random; each is broken and re-driven
/// through an XOR (correct key bit 0) or XNOR (correct key bit 1) gate with a
/// fresh key input, so the circuit computes the original function exactly
/// when every key bit has its correct value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XorLock {
    key_bits: usize,
    seed: u64,
}

impl XorLock {
    /// Creates a random-XOR locker inserting `key_bits` key gates.
    pub fn new(key_bits: usize) -> XorLock {
        XorLock {
            key_bits,
            seed: 0xE81C,
        }
    }

    /// Sets the PRNG seed that determines gate placement and key values.
    pub fn with_seed(mut self, seed: u64) -> XorLock {
        self.seed = seed;
        self
    }
}

impl LockingScheme for XorLock {
    fn name(&self) -> String {
        "XOR-Lock".to_string()
    }

    fn lock(&self, original: &Netlist) -> Result<LockedCircuit, LockError> {
        if self.key_bits == 0 {
            return Err(LockError::BadParameters(
                "key width must be positive".into(),
            ));
        }
        if original.num_outputs() == 0 {
            return Err(LockError::NoOutputs);
        }
        let gate_ids: Vec<NodeId> = original.gate_ids().collect();
        if gate_ids.len() < self.key_bits {
            return Err(LockError::BadParameters(format!(
                "circuit has only {} gates but {} key gates were requested",
                gate_ids.len(),
                self.key_bits
            )));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut chosen = gate_ids;
        chosen.shuffle(&mut rng);
        chosen.truncate(self.key_bits);
        chosen.sort_unstable();
        let key_values: Vec<bool> = (0..self.key_bits).map(|_| rng.gen()).collect();

        // Rebuild the netlist, splicing a key gate after each chosen node.
        let mut locked = Netlist::new(format!("{}_xorlock", original.name()));
        let mut map: Vec<NodeId> = Vec::with_capacity(original.num_nodes());
        for (id, node) in original.iter() {
            let new_id = match node.kind() {
                NodeKind::Input => locked.add_input(node.name()),
                NodeKind::KeyInput => locked.add_key_input(node.name()),
                NodeKind::Gate { kind, fanins } => {
                    let mapped: Vec<NodeId> = fanins.iter().map(|f| map[f.index()]).collect();
                    locked.add_gate(node.name(), *kind, &mapped)
                }
            };
            let final_id = if let Ok(pos) = chosen.binary_search(&id) {
                let key = locked.add_key_input(format!("keyinput{pos}"));
                let kind = if key_values[pos] {
                    GateKind::Xnor
                } else {
                    GateKind::Xor
                };
                let name = locked.fresh_name("_kg_");
                locked.add_gate(name, kind, &[new_id, key])
            } else {
                new_id
            };
            map.push(final_id);
        }
        for (name, driver) in original.outputs() {
            locked.add_output(name.clone(), map[driver.index()]);
        }

        Ok(LockedCircuit {
            original: original.clone(),
            locked,
            key: Key::new(key_values),
            scheme: self.name(),
            h: None,
            protected_inputs: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::random::{generate, RandomCircuitSpec};
    use netlist::sim::pattern_to_bits;

    #[test]
    fn correct_key_restores_functionality() {
        let original = generate(&RandomCircuitSpec::new("xl_test", 8, 3, 50));
        let locked = XorLock::new(10)
            .with_seed(17)
            .lock(&original)
            .expect("lock");
        assert_eq!(locked.locked.num_key_inputs(), 10);
        for pattern in 0..256u64 {
            let bits = pattern_to_bits(pattern, 8);
            assert_eq!(
                locked.locked.evaluate(&bits, locked.key.bits()),
                original.evaluate(&bits, &[]),
            );
        }
    }

    #[test]
    fn wrong_key_corrupts_many_patterns() {
        let original = generate(&RandomCircuitSpec::new("xl_bad", 8, 3, 50));
        let locked = XorLock::new(10)
            .with_seed(17)
            .lock(&original)
            .expect("lock");
        let wrong = locked.key.complement();
        let corrupted = (0..256u64)
            .filter(|&p| {
                let bits = pattern_to_bits(p, 8);
                locked.locked.evaluate(&bits, wrong.bits()) != original.evaluate(&bits, &[])
            })
            .count();
        // Random XOR locking corrupts heavily under wrong keys (unlike SFLL).
        assert!(corrupted > 64, "only {corrupted} of 256 patterns corrupted");
    }

    #[test]
    fn requesting_more_gates_than_available_fails() {
        let original = generate(&RandomCircuitSpec::new("xl_small", 4, 1, 5));
        assert!(XorLock::new(50).lock(&original).is_err());
    }

    #[test]
    fn key_gate_count_matches_request() {
        let original = generate(&RandomCircuitSpec::new("xl_count", 8, 2, 40));
        let locked = XorLock::new(7).with_seed(3).lock(&original).expect("lock");
        let key_gates = locked
            .locked
            .iter()
            .filter(|(_, n)| {
                matches!(n.gate_kind(), Some(GateKind::Xor | GateKind::Xnor))
                    && n.fanins().iter().any(|&f| locked.locked.is_key_input(f))
            })
            .count();
        assert_eq!(key_gates, 7);
    }
}
