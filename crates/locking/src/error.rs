//! Errors produced by locking schemes.

use std::error::Error;
use std::fmt;

/// Errors produced while locking a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The circuit has fewer primary inputs than the requested key width.
    NotEnoughInputs {
        /// Inputs required by the scheme.
        needed: usize,
        /// Inputs available in the circuit.
        available: usize,
    },
    /// The circuit has no outputs to protect.
    NoOutputs,
    /// The scheme parameters are inconsistent (for example `h` larger than
    /// the key width).
    BadParameters(String),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::NotEnoughInputs { needed, available } => write!(
                f,
                "scheme needs {needed} primary inputs but the circuit has {available}"
            ),
            LockError::NoOutputs => write!(f, "circuit has no outputs to protect"),
            LockError::BadParameters(msg) => write!(f, "invalid locking parameters: {msg}"),
        }
    }
}

impl Error for LockError {}
