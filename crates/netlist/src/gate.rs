//! Gate kinds and their Boolean semantics.

use std::fmt;

/// The kind of a logic gate.
///
/// All gates except [`GateKind::Not`], [`GateKind::Buf`] and the constants
/// accept two or more fanins and apply the operation left to right.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// Constant false.
    Const0,
    /// Constant true.
    Const1,
    /// Identity of a single fanin.
    Buf,
    /// Negation of a single fanin.
    Not,
    /// Conjunction of all fanins.
    And,
    /// Negated conjunction.
    Nand,
    /// Disjunction of all fanins.
    Or,
    /// Negated disjunction.
    Nor,
    /// Exclusive-or (odd parity) of all fanins.
    Xor,
    /// Negated exclusive-or (even parity).
    Xnor,
}

impl GateKind {
    /// Evaluates the gate over concrete fanin values.
    ///
    /// # Panics
    ///
    /// Panics if the number of values is not valid for this gate kind (see
    /// [`GateKind::arity_ok`]).
    pub fn evaluate(self, values: &[bool]) -> bool {
        assert!(
            self.arity_ok(values.len()),
            "gate {self} cannot take {} fanins",
            values.len()
        );
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => values[0],
            GateKind::Not => !values[0],
            GateKind::And => values.iter().all(|&v| v),
            GateKind::Nand => !values.iter().all(|&v| v),
            GateKind::Or => values.iter().any(|&v| v),
            GateKind::Nor => !values.iter().any(|&v| v),
            GateKind::Xor => values.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Xnor => !values.iter().fold(false, |acc, &v| acc ^ v),
        }
    }

    /// Evaluates the gate over 64 input patterns at once (one per bit).
    pub fn evaluate_words(self, values: &[u64]) -> u64 {
        assert!(
            self.arity_ok(values.len()),
            "gate {self} cannot take {} fanins",
            values.len()
        );
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Buf => values[0],
            GateKind::Not => !values[0],
            GateKind::And => values.iter().fold(!0u64, |acc, &v| acc & v),
            GateKind::Nand => !values.iter().fold(!0u64, |acc, &v| acc & v),
            GateKind::Or => values.iter().fold(0u64, |acc, &v| acc | v),
            GateKind::Nor => !values.iter().fold(0u64, |acc, &v| acc | v),
            GateKind::Xor => values.iter().fold(0u64, |acc, &v| acc ^ v),
            GateKind::Xnor => !values.iter().fold(0u64, |acc, &v| acc ^ v),
        }
    }

    /// Returns `true` if a gate of this kind may have `n` fanins.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Const0 | GateKind::Const1 => n == 0,
            GateKind::Buf | GateKind::Not => n == 1,
            _ => n >= 2,
        }
    }

    /// Returns `true` if the gate output is inverted relative to its
    /// non-negated counterpart (`Nand`, `Nor`, `Xnor`, `Not`).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The `.bench` keyword for this gate kind.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench` gate keyword (case-insensitive).
    pub fn from_bench_name(name: &str) -> Option<GateKind> {
        match name.to_ascii_uppercase().as_str() {
            "CONST0" | "GND" => Some(GateKind::Const0),
            "CONST1" | "VDD" => Some(GateKind::Const1),
            "BUF" | "BUFF" => Some(GateKind::Buf),
            "NOT" | "INV" => Some(GateKind::Not),
            "AND" => Some(GateKind::And),
            "NAND" => Some(GateKind::Nand),
            "OR" => Some(GateKind::Or),
            "NOR" => Some(GateKind::Nor),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            _ => None,
        }
    }

    /// All gate kinds usable as multi-input combinational gates.
    pub fn combinational() -> &'static [GateKind] {
        &[
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ]
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_input_truth_tables() {
        let cases = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expected) in cases {
            for (i, &want) in expected.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.evaluate(&[a, b]), want, "{kind} on ({a},{b})");
            }
        }
    }

    #[test]
    fn word_evaluation_matches_scalar() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for pattern in 0u64..16 {
                let a = pattern & 0b0011;
                let b = pattern & 0b0101;
                let word = kind.evaluate_words(&[a, b]);
                for bit in 0..4 {
                    let scalar = kind.evaluate(&[(a >> bit) & 1 == 1, (b >> bit) & 1 == 1]);
                    assert_eq!((word >> bit) & 1 == 1, scalar);
                }
            }
        }
    }

    #[test]
    fn arity_checks() {
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::And.arity_ok(4));
        assert!(!GateKind::And.arity_ok(1));
        assert!(GateKind::Const1.arity_ok(0));
    }

    #[test]
    fn bench_name_round_trip() {
        for kind in [
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            assert_eq!(GateKind::from_bench_name(kind.bench_name()), Some(kind));
        }
        assert_eq!(GateKind::from_bench_name("DFF"), None);
    }

    #[test]
    fn multi_input_xor_is_parity() {
        assert!(GateKind::Xor.evaluate(&[true, true, true]));
        assert!(!GateKind::Xor.evaluate(&[true, true, true, true]));
        assert!(GateKind::Xnor.evaluate(&[true, true, false, false]));
    }
}
